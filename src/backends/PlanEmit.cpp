//===- backends/PlanEmit.cpp - Plan-to-CAST emitter -----------------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The emission half of the back end: lowering marshal plans (and the
/// recursive per-value paths below them) to CAST.  This file owns every
/// chunkAddr/putWire/getWire detail; strategy arrives precomputed in the
/// plan steps from Passes.cpp, and the shared predicates in MarshalPlan.h
/// keep the inline decisions here (bounded pre-ensure, buffer aliasing)
/// in lockstep with the plan annotations.
///
//===----------------------------------------------------------------------===//

#include "backends/Backend.h"
#include "presgen/PresGen.h"
#include "support/Stats.h"
#include "support/StringExtras.h"
#include <cassert>

using namespace flick;

std::string StubGen::freshVar(const std::string &Hint) {
  return Hint + std::to_string(++VarCounter);
}

void StubGen::checkCall(CastExpr *Call, const char *ErrId) {
  stmt(B.ifStmt(Call, B.ret(B.id(ErrId))));
}

void StubGen::checkAvail(CastExpr *N) {
  stmt(B.ifStmt(B.nt(B.call("flick_buf_check", {bufExpr(), N})),
                B.ret(B.id("FLICK_ERR_DECODE"))));
}

unsigned StubGen::chunkAlign() const { return chunkAlignFor(Layout); }

void StubGen::alignTo(unsigned Align) {
  if (Align <= 1)
    return;
  assert(!ChunkActive && "alignTo with open chunk");
  if (CurEncode)
    checkCall(B.call("flick_buf_align_write", {bufExpr(), B.unum(Align)}),
              "FLICK_ERR_ALLOC");
  else
    checkCall(B.call("flick_buf_align_read", {bufExpr(), B.unum(Align)}),
              "FLICK_ERR_DECODE");
}

std::string StubGen::markPosition() {
  LastMark = freshVar("_mark");
  stmt(B.varDecl(B.prim("size_t"), LastMark,
                 B.arrow(bufExpr(), "len")));
  return LastMark;
}

void StubGen::openChunk(uint64_t Bytes) {
  assert(!ChunkActive && "chunk already open");
  ChunkActive = true;
  ChunkEncode = CurEncode;
  ChunkOff = 0;
  ChunkCap = Bytes;
  ChunkVar = "_chk" + std::to_string(++ChunkCounter);
  if (ChunkEncode) {
    if (NoEnsure == 0)
      checkCall(B.call("flick_buf_ensure", {bufExpr(), B.unum(Bytes)}),
                "FLICK_ERR_ALLOC");
    stmt(B.varDecl(B.ptr(B.prim("uint8_t")), ChunkVar,
                   B.call("flick_buf_grab", {bufExpr(), B.unum(Bytes)})));
  } else {
    checkAvail(B.unum(Bytes));
    stmt(B.varDecl(B.constPtr(B.prim("uint8_t")), ChunkVar,
                   B.call("flick_buf_take", {bufExpr(), B.unum(Bytes)})));
  }
}

/// Chunk-relative address expression `_chk + Off` (or just `_chk`).
static CastExpr *chunkAddr(CastBuilder &B, const std::string &Var,
                           uint64_t Off) {
  if (Off == 0)
    return B.id(Var);
  return B.add(B.id(Var), B.unum(Off));
}

void StubGen::closeChunk() {
  assert(ChunkActive && "no chunk open");
  assert(ChunkOff <= ChunkCap && "chunk overflow");
  // Zero trailing chunk padding on the encode side so the wire is
  // deterministic (presentations of one interface must produce identical
  // messages -- paper §2).
  if (ChunkEncode && ChunkOff < ChunkCap)
    stmt(B.exprStmt(B.call("memset",
                           {chunkAddr(B, ChunkVar, ChunkOff), B.num(0),
                            B.unum(ChunkCap - ChunkOff)})));
  ChunkActive = false;
}

void StubGen::putWire(unsigned Size, CastExpr *WireVal) {
  assert(ChunkActive && ChunkEncode && "putWire outside encode chunk");
  unsigned Align = Layout.kind() == WireKind::Xdr ? 4 : Size;
  uint64_t Aligned = alignUpTo(ChunkOff, Align);
  if (Aligned != ChunkOff) // zero alignment gaps for determinism
    stmt(B.exprStmt(B.call("memset",
                           {chunkAddr(B, ChunkVar, ChunkOff), B.num(0),
                            B.unum(Aligned - ChunkOff)})));
  ChunkOff = Aligned;
  stmt(B.exprStmt(B.call(encFnFor(Layout, Size),
                         {chunkAddr(B, ChunkVar, ChunkOff), WireVal})));
  ChunkOff += Size;
}

CastExpr *StubGen::getWire(unsigned Size) {
  assert(ChunkActive && !ChunkEncode && "getWire outside decode chunk");
  unsigned Align = Layout.kind() == WireKind::Xdr ? 4 : Size;
  ChunkOff = alignUpTo(ChunkOff, Align);
  CastExpr *Load =
      B.call(decFnFor(Layout, Size), {chunkAddr(B, ChunkVar, ChunkOff)});
  ChunkOff += Size;
  return Load;
}

void StubGen::putU8(CastExpr *V) { putWire(1, V); }
void StubGen::putU16(CastExpr *V) { putWire(2, V); }
void StubGen::putU32(CastExpr *V) { putWire(4, V); }
void StubGen::putU64(CastExpr *V) { putWire(8, V); }
CastExpr *StubGen::getU8() { return getWire(1); }
CastExpr *StubGen::getU16() { return getWire(2); }
CastExpr *StubGen::getU32() { return getWire(4); }
CastExpr *StubGen::getU64() { return getWire(8); }

void StubGen::putBytes(const std::string &Bytes) {
  assert(ChunkActive && ChunkEncode && "putBytes outside encode chunk");
  stmt(B.exprStmt(B.call(
      "memcpy", {chunkAddr(B, ChunkVar, ChunkOff), B.str(Bytes),
                 B.unum(Bytes.size())})));
  ChunkOff += Bytes.size();
}

//===----------------------------------------------------------------------===//
// Atomic conversion helpers
//===----------------------------------------------------------------------===//

/// Converts the presented C value \p Val to its wire integer and stores it
/// at the current chunk offset.
void StubGen::putAtomicConv(const PresNode *P, CastExpr *Val) {
  const MintType *T = P->mint();
  unsigned Size = Layout.atomSize(T);
  CastExpr *Wire = Val;
  switch (T->kind()) {
  case MintType::Kind::Integer: {
    const char *U = Size == 8 ? "uint64_t"
                    : Size == 4 ? "uint32_t"
                    : Size == 2 ? "uint16_t"
                                : "uint8_t";
    Wire = B.castTo(B.prim(U), Val);
    break;
  }
  case MintType::Kind::Float:
    Wire = B.call(cast<MintFloat>(T)->bits() == 64 ? "flick_f64_bits"
                                                   : "flick_f32_bits",
                  {Val});
    break;
  case MintType::Kind::Char:
    Wire = Size == 4
               ? B.castTo(B.prim("uint32_t"),
                          B.castTo(B.prim("unsigned char"), Val))
               : B.castTo(B.prim("uint8_t"), Val);
    break;
  case MintType::Kind::Boolean:
    Wire = B.castTo(B.prim(Size == 4 ? "uint32_t" : "uint8_t"), Val);
    break;
  default:
    assert(false && "putAtomicConv on non-atomic");
  }
  putWire(Size, Wire);
}

/// Loads an atomic from the chunk and assigns the converted value to
/// \p Val.
void StubGen::getAtomicConv(const PresNode *P, CastExpr *Val) {
  const MintType *T = P->mint();
  unsigned Size = Layout.atomSize(T);
  CastExpr *Load = getWire(Size);
  CastExpr *Conv = Load;
  if (isa<PresEnum>(P)) {
    Conv = B.castTo(P->ctype(), Load);
  } else {
    switch (T->kind()) {
    case MintType::Kind::Integer: {
      const auto *I = cast<MintInteger>(T);
      unsigned HostBytes = I->bits() / 8;
      if (HostBytes != Size) // XDR widened small integers
        Conv = B.castTo(B.prim("uint" + std::to_string(I->bits()) + "_t"),
                        Load);
      if (I->isSigned())
        Conv = B.castTo(
            B.prim("int" + std::to_string(I->bits()) + "_t"), Conv);
      break;
    }
    case MintType::Kind::Float:
      Conv = B.call(cast<MintFloat>(T)->bits() == 64 ? "flick_bits_f64"
                                                     : "flick_bits_f32",
                    {Load});
      break;
    case MintType::Kind::Char:
      Conv = B.castTo(B.prim("char"), Load);
      break;
    case MintType::Kind::Boolean:
      Conv = B.castTo(B.prim("uint8_t"), B.bin("!=", Load, B.num(0)));
      break;
    default:
      assert(false && "getAtomicConv on non-atomic");
    }
  }
  stmt(B.exprStmt(B.assign(Val, Conv)));
}

void StubGen::emitAtomicValue(const PresNode *P, CastExpr *Val,
                              bool Encode) {
  if (options().PerDatumCalls) {
    emitNaiveAtomic(P, Val, Encode);
    return;
  }
  bool Single = !ChunkActive;
  if (Single) {
    unsigned Size = Layout.atomSize(P->mint());
    openChunk(Layout.padded(Size));
  }
  if (Encode)
    putAtomicConv(P, Val);
  else
    getAtomicConv(P, Val);
  if (Single)
    closeChunk();
}

/// Traditional per-datum marshaling: one out-of-line runtime call per
/// atomic value, with its own buffer check and cursor bump.
void StubGen::emitNaiveAtomic(const PresNode *P, CastExpr *Val,
                              bool Encode) {
  const MintType *T = P->mint();
  unsigned Size = Layout.atomSize(T);
  int BigEndian = endianSuffix(Layout.kind())[0] == 'b' ? 1 : 0;
  std::string Fn = std::string(Encode ? "flick_naive_put_u"
                                      : "flick_naive_get_u") +
                   std::to_string(Size * 8);
  if (Encode) {
    // Reuse the conversion logic: wire value expression.
    CastExpr *Wire = Val;
    switch (T->kind()) {
    case MintType::Kind::Float:
      Wire = B.call(cast<MintFloat>(T)->bits() == 64 ? "flick_f64_bits"
                                                     : "flick_f32_bits",
                    {Val});
      break;
    case MintType::Kind::Char:
      Wire = Size == 4 ? B.castTo(B.prim("uint32_t"),
                                  B.castTo(B.prim("unsigned char"), Val))
                       : B.castTo(B.prim("uint8_t"), Val);
      break;
    default: {
      const char *U = Size == 8 ? "uint64_t"
                      : Size == 4 ? "uint32_t"
                      : Size == 2 ? "uint16_t"
                                  : "uint8_t";
      Wire = B.castTo(B.prim(U), Val);
    }
    }
    std::vector<CastExpr *> Args = {bufExpr(), Wire};
    if (Size > 1)
      Args.push_back(B.num(BigEndian));
    checkCall(B.call(Fn, Args), "FLICK_ERR_ALLOC");
    return;
  }
  std::string Tmp = freshVar("_t");
  const char *U = Size == 8 ? "uint64_t"
                  : Size == 4 ? "uint32_t"
                  : Size == 2 ? "uint16_t"
                              : "uint8_t";
  stmt(B.varDecl(B.prim(U), Tmp));
  std::vector<CastExpr *> Args = {bufExpr(), B.addr(B.id(Tmp))};
  if (Size > 1)
    Args.push_back(B.num(BigEndian));
  checkCall(B.call(Fn, Args), "FLICK_ERR_DECODE");
  CastExpr *Conv = B.id(Tmp);
  if (isa<PresEnum>(P)) {
    Conv = B.castTo(P->ctype(), Conv);
  } else {
    switch (T->kind()) {
    case MintType::Kind::Integer: {
      const auto *I = cast<MintInteger>(T);
      if (I->bits() / 8 != Size)
        Conv = B.castTo(B.prim("uint" + std::to_string(I->bits()) + "_t"),
                        Conv);
      if (I->isSigned())
        Conv = B.castTo(B.prim("int" + std::to_string(I->bits()) + "_t"),
                        Conv);
      break;
    }
    case MintType::Kind::Float:
      Conv = B.call(cast<MintFloat>(T)->bits() == 64 ? "flick_bits_f64"
                                                     : "flick_bits_f32",
                    {Conv});
      break;
    case MintType::Kind::Char:
      Conv = B.castTo(B.prim("char"), Conv);
      break;
    case MintType::Kind::Boolean:
      Conv = B.castTo(B.prim("uint8_t"), B.bin("!=", Conv, B.num(0)));
      break;
    default:
      break;
    }
  }
  stmt(B.exprStmt(B.assign(Val, Conv)));
}

//===----------------------------------------------------------------------===//
// Allocation
//===----------------------------------------------------------------------===//

CastExpr *StubGen::allocExpr(const AllocSemantics &A, CastExpr *Bytes) {
  // Scratch storage is the default when the presentation allows it and the
  // option is on; the helper falls back to malloc when no arena is in
  // scope (client side passes a null arena).  Paper §3.1, "Parameter
  // Management".
  if (options().ScratchAlloc && A.AllowStackAlloc && ServerSide)
    return B.call("flick_arena_alloc", {B.id("_ar"), Bytes});
  return B.call("malloc", {Bytes});
}

//===----------------------------------------------------------------------===//
// emitValue: policy wrapper
//===----------------------------------------------------------------------===//

void StubGen::emitValue(const PresNode *P, CastExpr *Val, bool Encode) {
  CurEncode = Encode;
  PKind K = classifyPres(P);
  if (K == PKind::Void)
    return;

  // Recursive types and non-inlining mode go through out-of-line helpers
  // (paper §3.3: Flick inlines everything except recursive types).  The
  // helper-root check comes first: when generating a helper body, the node
  // is already on the emission stack and must inline exactly once.
  bool NonScalar = K != PKind::Scalar;
  const PresNode *SavedRoot = HelperRoot;
  if (P == HelperRoot) {
    HelperRoot = nullptr;
  } else if (Emitting.count(P) ||
             (!options().Inline && NonScalar)) {
    callHelper(P, Val, Encode);
    return;
  }
  bool Inserted = Emitting.insert(P).second;

  bool Handled = false;
  if (options().Chunk && !ChunkActive && !presContainsUnion(P)) {
    LayoutMeasurer M(Layout);
    FixedLayout FL = M.measure(P);
    if (FL.IsFixed) {
      // One buffer check for the whole fixed segment, then static-offset
      // chunk addressing (paper §3.1/§3.2).
      if (FL.Size > 0) {
        openChunk(alignUpTo(FL.Size, chunkAlign()));
        emitFixedInChunk(P, Val, Encode);
        closeChunk();
      }
      Handled = true;
    } else if (Encode && NoEnsure == 0) {
      // Variable but bounded below the threshold: ensure the maximum
      // once, then marshal with no further space checks.  Same predicate
      // the bounded pass uses to annotate the plan.
      uint64_t Pre = boundedPreEnsureBytes(P, Layout,
                                           options().BoundedThreshold);
      if (Pre) {
        checkCall(B.call("flick_buf_ensure", {bufExpr(), B.unum(Pre)}),
                  "FLICK_ERR_ALLOC");
        ++NoEnsure;
        emitValueInner(P, Val, Encode);
        --NoEnsure;
        Handled = true;
      }
    }
  }
  if (!Handled)
    emitValueInner(P, Val, Encode);

  if (Inserted)
    Emitting.erase(P);
  HelperRoot = SavedRoot;
}

void StubGen::emitValueInner(const PresNode *P, CastExpr *Val, bool Encode) {
  switch (P->kind()) {
  case PresNode::Kind::Void:
    return;
  case PresNode::Kind::Prim:
  case PresNode::Kind::Enum:
    emitAtomicValue(P, Val, Encode);
    return;
  case PresNode::Kind::Struct:
    emitStruct(cast<PresStruct>(P), Val, Encode);
    return;
  case PresNode::Kind::FixedArray: {
    const auto *A = cast<PresFixedArray>(P);
    emitArrayElems(A->elem(), Val, B.unum(A->count()), Encode);
    return;
  }
  case PresNode::Kind::Counted:
    emitCounted(cast<PresCounted>(P), Val, Encode);
    return;
  case PresNode::Kind::String:
    emitString(cast<PresString>(P), Val, Encode);
    return;
  case PresNode::Kind::OptPtr:
    emitOptPtr(cast<PresOptPtr>(P), Val, Encode);
    return;
  case PresNode::Kind::Union:
    emitUnion(cast<PresUnion>(P), Val, Encode);
    return;
  }
}

//===----------------------------------------------------------------------===//
// Fixed-chunk emission (mirrors LayoutMeasurer)
//===----------------------------------------------------------------------===//

uint64_t StubGen::elemStrideOf(const PresNode *Elem) const {
  LayoutMeasurer M(Layout);
  FixedLayout EL = M.measure(Elem);
  assert(EL.IsFixed && "stride of variable element");
  return Layout.padded(
      alignUpTo(EL.Size, std::max<uint64_t>(EL.MaxAlign, 1)));
}

void StubGen::emitFixedInChunk(const PresNode *P, CastExpr *Val,
                               bool Encode) {
  switch (P->kind()) {
  case PresNode::Kind::Void:
    return;
  case PresNode::Kind::Prim:
  case PresNode::Kind::Enum:
    if (Encode)
      putAtomicConv(P, Val);
    else
      getAtomicConv(P, Val);
    return;
  case PresNode::Kind::Struct:
    for (const PresField &F : cast<PresStruct>(P)->fields())
      emitFixedInChunk(F.Pres, B.mem(Val, F.CName), Encode);
    return;
  case PresNode::Kind::FixedArray: {
    const auto *A = cast<PresFixedArray>(P);
    const PresNode *Elem = A->elem();
    const MintType *EM = Elem->mint();
    uint64_t N = A->count();
    if (isByteElem(Layout, EM)) {
      // Packed byte array (XDR opaque semantics): one memcpy.
      ChunkOff = alignUpTo(ChunkOff, Layout.padUnit());
      CastExpr *Addr = chunkAddr(B, ChunkVar, ChunkOff);
      if (Encode) {
        stmt(B.exprStmt(B.call("memcpy", {Addr, Val, B.unum(N)})));
        uint64_t Pad = Layout.padded(N) - N;
        if (Pad)
          stmt(B.exprStmt(B.call(
              "memset",
              {chunkAddr(B, ChunkVar, ChunkOff + N), B.num(0),
               B.unum(Pad)})));
      } else {
        stmt(B.exprStmt(B.call(
            "memcpy", {Val, B.castTo(B.constPtr(B.voidTy()), Addr),
                       B.unum(N)})));
      }
      ChunkOff += Layout.padded(N);
      return;
    }
    if (isAtomicMint(EM)) {
      unsigned S = Layout.atomSize(EM);
      unsigned HostS = S; // hostIdentical implies sizes match
      ChunkOff = alignUpTo(ChunkOff, Layout.atomAlign(EM));
      CastExpr *Addr = chunkAddr(B, ChunkVar, ChunkOff);
      if (options().Memcpy && Layout.hostIdentical(EM)) {
        if (Encode)
          stmt(B.exprStmt(
              B.call("memcpy", {Addr, Val, B.unum(N * HostS)})));
        else
          stmt(B.exprStmt(B.call(
              "memcpy", {Val, B.castTo(B.constPtr(B.voidTy()), Addr),
                         B.unum(N * HostS)})));
        ChunkOff += N * S;
        return;
      }
      // Endian-mismatched arrays marshal through an element loop with
      // chunk-relative addressing; with the single coalesced space check
      // the compiler vectorizes it to a byte-swapping block copy (the
      // modern equivalent of the paper's USC-style swap copy).
      uint64_t Stride = S;
      std::string IV = freshVar("_i");
      uint64_t BaseOff = ChunkOff;
      std::vector<CastStmt *> Body;
      auto *SaveCur = Cur;
      uint64_t SaveOff = ChunkOff;
      std::string SaveVar = ChunkVar;
      uint64_t SaveCap = ChunkCap;
      std::string EP = freshVar("_ep");
      Cur = &Body;
      stmt(B.varDecl(Encode ? B.ptr(B.prim("uint8_t"))
                            : B.constPtr(B.prim("uint8_t")),
                     EP,
                     B.add(chunkAddr(B, SaveVar, BaseOff),
                           B.mul(B.id(IV), B.unum(Stride)))));
      ChunkVar = EP;
      ChunkOff = 0;
      ChunkCap = Stride;
      emitFixedInChunk(A->elem(), B.idx(Val, B.id(IV)), Encode);
      Cur = SaveCur;
      ChunkVar = SaveVar;
      ChunkCap = SaveCap;
      ChunkOff = SaveOff + N * Stride;
      stmt(B.forStmt(
          B.varDecl(B.prim("size_t"), IV, B.num(0)),
          B.lt(B.id(IV), B.unum(N)),
          B.bin("=", B.id(IV), B.add(B.id(IV), B.num(1))), B.block(Body)));
      return;
    }
    // Fixed array of fixed aggregates: loop with per-element chunk base.
    uint64_t Stride = elemStrideOf(Elem);
    LayoutMeasurer M(Layout);
    FixedLayout EL = M.measure(Elem);
    ChunkOff = alignUpTo(ChunkOff, std::max<unsigned>(EL.MaxAlign, 1));
    uint64_t BaseOff = ChunkOff;
    std::string IV = freshVar("_i");
    std::vector<CastStmt *> Body;
    auto *SaveCur = Cur;
    uint64_t SaveOff = ChunkOff;
    std::string SaveVar = ChunkVar;
    uint64_t SaveCap = ChunkCap;
    std::string EP = freshVar("_ep");
    Cur = &Body;
    stmt(B.varDecl(Encode ? B.ptr(B.prim("uint8_t"))
                          : B.constPtr(B.prim("uint8_t")),
                   EP,
                   B.add(chunkAddr(B, SaveVar, BaseOff),
                         B.mul(B.id(IV), B.unum(Stride)))));
    ChunkVar = EP;
    ChunkOff = 0;
    ChunkCap = Stride;
    emitFixedInChunk(Elem, B.idx(Val, B.id(IV)), Encode);
    Cur = SaveCur;
    ChunkVar = SaveVar;
    ChunkCap = SaveCap;
    ChunkOff = SaveOff + A->count() * Stride;
    stmt(B.forStmt(B.varDecl(B.prim("size_t"), IV, B.num(0)),
                   B.lt(B.id(IV), B.unum(A->count())),
                   B.bin("=", B.id(IV), B.add(B.id(IV), B.num(1))),
                   B.block(Body)));
    return;
  }
  default:
    assert(false && "variable-size node inside fixed chunk");
  }
}

//===----------------------------------------------------------------------===//
// Sequences (struct fields / parameter lists): plan, optimize, lower
//===----------------------------------------------------------------------===//

void StubGen::emitSequence(
    const std::vector<std::pair<const PresNode *, CastExpr *>> &Items,
    bool Encode) {
  // Consume the top-level plan context (all empty for struct interiors).
  std::string Label = std::move(NextPlanLabel);
  std::vector<std::string> Names = std::move(NextPlanNames);
  std::vector<HookKind> PreHooks = std::move(NextPreHooks);
  std::vector<HookKind> PostHooks = std::move(NextPostHooks);
  std::function<void(HookKind)> HookFn = std::move(PlanHookFn);
  NextPlanLabel.clear();
  NextPlanNames.clear();
  NextPreHooks.clear();
  NextPostHooks.clear();
  PlanHookFn = nullptr;

  std::vector<const PresNode *> Ps;
  std::vector<CastExpr *> Vals;
  for (const auto &[Pn, V] : Items) {
    Ps.push_back(Pn);
    Vals.push_back(V);
  }

  SeqPlan Plan =
      buildSeqPlan(Ps, Names, Layout, Encode, ServerSide, Emitting);
  Plan.Label = Label;

  // Framing hooks are plan steps: coalescing never crosses them, and the
  // dump shows the whole message in order.
  for (auto It = PreHooks.rbegin(); It != PreHooks.rend(); ++It) {
    MarshalStep St;
    St.Kind = StepKind::FramingHook;
    St.Hook = *It;
    Plan.Steps.insert(Plan.Steps.begin(), St);
  }
  for (HookKind H : PostHooks) {
    MarshalStep St;
    St.Kind = StepKind::FramingHook;
    St.Hook = H;
    Plan.Steps.push_back(St);
  }

  // --trace-hooks brackets the whole helper body (framing included) with
  // span steps.  Top-level plans only: struct interiors have no label and
  // would nest a span per aggregate.
  if (options().TraceHooks && !Plan.Label.empty()) {
    MarshalStep Begin;
    Begin.Kind = StepKind::TraceHook;
    Begin.TraceBegin = true;
    Begin.TraceKind = Encode ? "FLICK_SPAN_MARSHAL" : "FLICK_SPAN_UNMARSHAL";
    Begin.TraceLabel = Plan.Label;
    Plan.Steps.insert(Plan.Steps.begin(), Begin);
    MarshalStep End;
    End.Kind = StepKind::TraceHook;
    Plan.Steps.push_back(End);
  }

  bool Dump = options().DumpPlans && !Plan.Label.empty();
  SeqPlan Before;
  if (Dump)
    Before = Plan;
  Pipeline.run(Plan);
  if (Dump)
    PlanDump += dumpSeqPlan(Before, Plan);

  emitPlanSteps(Plan, Vals, HookFn);
}

void StubGen::emitPlanSteps(const SeqPlan &Plan,
                            const std::vector<CastExpr *> &Vals,
                            const std::function<void(HookKind)> &HookFn) {
  CurEncode = Plan.Encode;
  for (const MarshalStep &St : Plan.Steps) {
    switch (St.Kind) {
    case StepKind::FramingHook:
      assert(HookFn && "framing hook step without a hook callback");
      HookFn(St.Hook);
      break;
    case StepKind::TraceHook:
      stmt(B.rawStmt(St.TraceBegin ? "flick_span_begin(" + St.TraceKind +
                                         ", \"" + St.TraceLabel + "\");"
                                   : "flick_span_end();"));
      break;
    case StepKind::FixedChunk: {
      if (St.Size == 0)
        break;
      openChunk(alignUpTo(St.Size, chunkAlign()));
      for (const PlanMember &M : St.Members) {
        assert(ChunkOff == M.WireOff && "plan/emitter offset drift");
        const PlanItem &It = Plan.Items[M.Item];
        if (M.Memcpy)
          emitMemberMemcpy(It.Pres, Vals[M.Item], M, Plan.Encode);
        else
          emitFixedInChunk(It.Pres, Vals[M.Item], Plan.Encode);
      }
      closeChunk();
      break;
    }
    case StepKind::VariableSegment:
      // Bounded/alias/scratch annotations need no explicit lowering here:
      // emitValue consults the same shared predicates the passes used, so
      // the emitted strategy matches the annotated plan by construction.
      emitValue(Plan.Items[St.Item].Pres, Vals[St.Item], Plan.Encode);
      break;
    case StepKind::GatherRef: {
      // Same lowering as a VariableSegment, with the gather threshold
      // armed: the bulk-copy site inside (emitBulkEncode) branches to
      // flick_buf_ref for payloads at or above it.
      uint64_t Save = GatherMin;
      GatherMin = St.GatherMinBytes;
      emitValue(Plan.Items[St.Item].Pres, Vals[St.Item], Plan.Encode);
      GatherMin = Save;
      break;
    }
    }
  }
}

void StubGen::emitMemberMemcpy(const PresNode *P, CastExpr *Val,
                               const PlanMember &M, bool Encode) {
  // The memcpy pass only marks members whose host image equals the wire
  // image byte for byte; pin that ABI assumption in the generated code.
  stmt(B.rawStmt("static_assert(sizeof(" + printCastType(P->ctype(), "") +
                 ") == " + std::to_string(M.MemcpyBytes) +
                 ", \"wire/host layout assumption\");"));
  // Structs need their address taken; fixed arrays decay to a pointer.
  CastExpr *Host = isa<PresStruct>(P) ? B.addr(Val) : Val;
  CastExpr *Wire = chunkAddr(B, ChunkVar, ChunkOff);
  if (Encode)
    stmt(B.exprStmt(
        B.call("memcpy", {Wire, Host, B.unum(M.MemcpyBytes)})));
  else
    stmt(B.exprStmt(
        B.call("memcpy", {Host, Wire, B.unum(M.MemcpyBytes)})));
  ChunkOff += M.WireSize;
}

void StubGen::emitStruct(const PresStruct *P, CastExpr *Val, bool Encode) {
  std::vector<std::pair<const PresNode *, CastExpr *>> Items;
  for (const PresField &F : P->fields())
    Items.push_back({F.Pres, B.mem(Val, F.CName)});
  emitSequence(Items, Encode);
}

//===----------------------------------------------------------------------===//
// Arrays
//===----------------------------------------------------------------------===//

/// The encode-side bulk copy of NB bytes from BaseE.  Outside a GatherRef
/// step this is exactly the historical ensure+grab+memcpy.  Inside one,
/// the copy becomes the else-branch of a runtime size test: at or above
/// the gather threshold the bytes are *borrowed* via flick_buf_ref and the
/// transport gathers them at send time, so the payload is never copied
/// into the marshal buffer at all.
void StubGen::emitBulkEncode(const std::string &NB, CastExpr *BaseE) {
  auto PlainCopy = [&] {
    if (NoEnsure == 0)
      checkCall(B.call("flick_buf_ensure", {bufExpr(), B.id(NB)}),
                "FLICK_ERR_ALLOC");
    stmt(B.exprStmt(B.call(
        "memcpy",
        {B.call("flick_buf_grab", {bufExpr(), B.id(NB)}), BaseE, B.id(NB)})));
  };
  if (GatherMin == 0) {
    PlainCopy();
    return;
  }
  std::vector<CastStmt *> Then, Else;
  auto *SaveCur = Cur;
  Cur = &Then;
  checkCall(B.call("flick_buf_ref", {bufExpr(), BaseE, B.id(NB)}),
            "FLICK_ERR_ALLOC");
  Cur = &Else;
  PlainCopy();
  Cur = SaveCur;
  stmt(B.ifStmt(B.bin(">=", B.id(NB), B.unum(GatherMin)), B.block(Then),
                B.block(Else)));
}

/// Shared element path once a destination/source base pointer and runtime
/// count are known.  Handles memcpy/swap bulk copies and per-element loops.
void StubGen::emitArrayElems(const PresNode *Elem, CastExpr *BaseE,
                             CastExpr *CountE, bool Encode) {
  const MintType *EM = Elem->mint();
  unsigned CA = chunkAlign();

  // Bulk byte copy (strings use emitString, so this is opaque/char data).
  if (isByteElem(Layout, EM)) {
    std::string NB = freshVar("_nb");
    stmt(B.varDecl(B.prim("size_t"), NB,
                   B.castTo(B.prim("size_t"), CountE)));
    if (Encode) {
      emitBulkEncode(NB, BaseE);
    } else {
      checkAvail(B.id(NB));
      stmt(B.exprStmt(B.call(
          "memcpy",
          {BaseE,
           B.castTo(B.constPtr(B.voidTy()),
                    B.call("flick_buf_take", {bufExpr(), B.id(NB)})),
           B.id(NB)})));
    }
    alignTo(Layout.padUnit() > 1 ? Layout.padUnit() : CA);
    return;
  }

  if (isAtomicMint(EM)) {
    unsigned S = Layout.atomSize(EM);
    const auto *I = dyn_cast<MintInteger>(EM);
    bool SizeMatch = !I || I->bits() / 8 == S;
    std::string NB = freshVar("_nb");
    if (options().Memcpy && Layout.hostIdentical(EM)) {
      stmt(B.varDecl(B.prim("size_t"), NB,
                     B.mul(B.castTo(B.prim("size_t"), CountE), B.unum(S))));
      if (Encode) {
        emitBulkEncode(NB, BaseE);
      } else {
        checkAvail(B.id(NB));
        stmt(B.exprStmt(B.call(
            "memcpy",
            {BaseE,
             B.castTo(B.constPtr(B.voidTy()),
                      B.call("flick_buf_take", {bufExpr(), B.id(NB)})),
             B.id(NB)})));
      }
      alignTo(CA);
      return;
    }
    (void)S;
    (void)SizeMatch;
  }

  // USC-style aggregate block copy (the paper's §3.2 future work): when
  // the element's host layout is bit-identical to its wire layout, whole
  // arrays of aggregates move with one memcpy.  A static_assert in the
  // generated code pins the ABI assumption.
  uint64_t IdStride = 0;
  if (options().Memcpy && classifyPres(Elem) != PKind::Scalar &&
      Elem->ctype() && presBitIdentical(Elem, Layout, IdStride)) {
    stmt(B.rawStmt("static_assert(sizeof(" +
                   printCastType(Elem->ctype(), "") + ") == " +
                   std::to_string(IdStride) +
                   ", \"wire/host layout assumption\");"));
    std::string NB = freshVar("_nb");
    stmt(B.varDecl(
        B.prim("size_t"), NB,
        B.mul(B.castTo(B.prim("size_t"), CountE), B.unum(IdStride))));
    if (Encode) {
      emitBulkEncode(NB, BaseE);
    } else {
      checkAvail(B.id(NB));
      stmt(B.exprStmt(B.call(
          "memcpy",
          {BaseE,
           B.castTo(B.constPtr(B.voidTy()),
                    B.call("flick_buf_take", {bufExpr(), B.id(NB)})),
           B.id(NB)})));
    }
    alignTo(CA);
    return;
  }

  // Fixed-size elements: one space check for the whole array, then a loop
  // with chunk-relative addressing (this is how the paper's rectangle
  // arrays marshal).
  LayoutMeasurer M(Layout);
  FixedLayout EL = M.measure(Elem);
  if (options().Chunk && EL.IsFixed && !presContainsUnion(Elem) &&
      (options().Inline || classifyPres(Elem) == PKind::Scalar)) {
    uint64_t Stride = elemStrideOf(Elem);
    std::string NB = freshVar("_nb");
    stmt(B.varDecl(
        B.prim("size_t"), NB,
        B.mul(B.castTo(B.prim("size_t"), CountE), B.unum(Stride))));
    std::string Base = freshVar("_ab");
    if (Encode) {
      if (NoEnsure == 0)
        checkCall(B.call("flick_buf_ensure", {bufExpr(), B.id(NB)}),
                  "FLICK_ERR_ALLOC");
      stmt(B.varDecl(B.ptr(B.prim("uint8_t")), Base,
                     B.call("flick_buf_grab", {bufExpr(), B.id(NB)})));
    } else {
      checkAvail(B.id(NB));
      stmt(B.varDecl(B.constPtr(B.prim("uint8_t")), Base,
                     B.call("flick_buf_take", {bufExpr(), B.id(NB)})));
    }
    std::string IV = freshVar("_i");
    std::vector<CastStmt *> Body;
    auto *SaveCur = Cur;
    Cur = &Body;
    std::string EP = freshVar("_ep");
    stmt(B.varDecl(Encode ? B.ptr(B.prim("uint8_t"))
                          : B.constPtr(B.prim("uint8_t")),
                   EP,
                   B.add(B.id(Base), B.mul(B.id(IV), B.unum(Stride)))));
    bool SaveActive = ChunkActive;
    ChunkActive = true;
    ChunkEncode = Encode;
    std::string SaveVar = ChunkVar;
    uint64_t SaveOff = ChunkOff, SaveCap = ChunkCap;
    ChunkVar = EP;
    ChunkOff = 0;
    ChunkCap = Stride;
    emitFixedInChunk(Elem, B.idx(BaseE, B.id(IV)), Encode);
    ChunkActive = SaveActive;
    ChunkVar = SaveVar;
    ChunkOff = SaveOff;
    ChunkCap = SaveCap;
    Cur = SaveCur;
    stmt(B.forStmt(B.varDecl(B.prim("size_t"), IV, B.num(0)),
                   B.lt(B.id(IV), B.castTo(B.prim("size_t"), CountE)),
                   B.bin("=", B.id(IV), B.add(B.id(IV), B.num(1))),
                   B.block(Body)));
    alignTo(CA);
    return;
  }

  // General per-element path (variable-size or non-chunked elements).
  std::string IV = freshVar("_i");
  std::vector<CastStmt *> Body;
  auto *SaveCur = Cur;
  Cur = &Body;
  emitValue(Elem, B.idx(BaseE, B.id(IV)), Encode);
  Cur = SaveCur;
  stmt(B.forStmt(B.varDecl(B.prim("size_t"), IV, B.num(0)),
                 B.lt(B.id(IV), B.castTo(B.prim("size_t"), CountE)),
                 B.bin("=", B.id(IV), B.add(B.id(IV), B.num(1))),
                 B.block(Body)));
  alignTo(CA);
}

//===----------------------------------------------------------------------===//
// Counted arrays, strings, optional pointers, unions
//===----------------------------------------------------------------------===//

void StubGen::emitCounted(const PresCounted *P, CastExpr *Val, bool Encode) {
  const PresNode *Elem = P->elem();
  const auto *MA = cast<MintArray>(P->mint());
  const MintType *EM = Elem->mint();
  unsigned CA = chunkAlign();

  if (Encode) {
    std::string Len = freshVar("_len");
    stmt(B.varDecl(B.prim("uint32_t"), Len,
                   B.castTo(B.prim("uint32_t"), B.mem(Val, P->lenField()))));
    if (MA->isBounded())
      stmt(B.ifStmt(B.bin(">", B.id(Len), B.unum(MA->maxLen())),
                    B.ret(B.id("FLICK_ERR_DECODE"))));
    openChunk(alignUpTo(Layout.padded(4), CA));
    putU32(B.id(Len));
    closeChunk();
    emitArrayElems(Elem, B.mem(Val, P->bufField()), B.id(Len), true);
    return;
  }

  // Decode: length word, bound check, destination storage, elements.
  openChunk(alignUpTo(Layout.padded(4), CA));
  std::string Len = freshVar("_len");
  stmt(B.varDecl(B.prim("uint32_t"), Len, getU32()));
  closeChunk();
  if (MA->isBounded())
    stmt(B.ifStmt(B.bin(">", B.id(Len), B.unum(MA->maxLen())),
                  B.ret(B.id("FLICK_ERR_DECODE"))));
  stmt(B.exprStmt(B.assign(B.mem(Val, P->lenField()), B.id(Len))));
  if (!P->maxField().empty())
    stmt(B.exprStmt(B.assign(B.mem(Val, P->maxField()), B.id(Len))));

  CastType *ElemCT = Elem->ctype();
  bool AliasOk = options().BufferAlias && options().ScratchAlloc &&
                 ServerSide && P->alloc().AllowBufferAlias &&
                 aliasableCountedElem(P, Layout);
  if (AliasOk) {
    // Decode in place: the presented array aliases the request buffer
    // (paper §3.1); legal because the presentation forbids the servant
    // from keeping references.
    unsigned S = Layout.atomSize(EM);
    std::string NB = freshVar("_nb");
    stmt(B.varDecl(B.prim("size_t"), NB,
                   B.mul(B.castTo(B.prim("size_t"), B.id(Len)),
                         B.unum(S))));
    checkAvail(B.id(NB));
    stmt(B.exprStmt(B.assign(
        B.mem(Val, P->bufField()),
        B.castTo(B.ptr(ElemCT),
                 B.call("flick_buf_take_mut", {bufExpr(), B.id(NB)})))));
    alignTo(Layout.padUnit() > 1 ? Layout.padUnit() : CA);
    return;
  }

  // Every element is at least one wire byte, so a length beyond the
  // remaining buffer is malformed; reject before allocating (avoids
  // attacker-controlled allocation bombs).
  checkAvail(B.castTo(B.prim("size_t"), B.id(Len)));
  std::string Dst = freshVar("_dst");
  CastExpr *Bytes =
      B.mul(B.add(B.castTo(B.prim("size_t"), B.id(Len)), B.num(1)),
            B.sizeofTy(ElemCT));
  stmt(B.varDecl(B.ptr(ElemCT), Dst,
                 B.castTo(B.ptr(ElemCT), allocExpr(P->alloc(), Bytes))));
  stmt(B.ifStmt(B.nt(B.id(Dst)), B.ret(B.id("FLICK_ERR_ALLOC"))));
  emitArrayElems(Elem, B.id(Dst), B.id(Len), false);
  stmt(B.exprStmt(B.assign(B.mem(Val, P->bufField()), B.id(Dst))));
}

void StubGen::emitString(const PresString *P, CastExpr *Val, bool Encode) {
  const auto *MA = cast<MintArray>(P->mint());
  bool CountsNul = Layout.stringCountsNul();
  unsigned CA = chunkAlign();

  if (Encode) {
    std::string Sp = freshVar("_sp");
    stmt(B.varDecl(B.constPtr(B.prim("char")), Sp,
                   B.ternary(Val, Val, B.str(""))));
    std::string Sl = freshVar("_sl");
    auto KnownIt = KnownStrLenIn.find(P);
    if (KnownIt != KnownStrLenIn.end()) {
      // Explicit-length presentation (paper §2): the caller already knows
      // the length, so the stub never calls strlen.
      stmt(B.varDecl(B.prim("size_t"), Sl,
                     B.castTo(B.prim("size_t"), KnownIt->second)));
      KnownStrLenIn.erase(KnownIt);
    } else {
      stmt(B.varDecl(B.prim("size_t"), Sl, B.call("strlen", {B.id(Sp)})));
    }
    if (MA->isBounded())
      stmt(B.ifStmt(B.bin(">", B.id(Sl), B.unum(MA->maxLen())),
                    B.ret(B.id("FLICK_ERR_DECODE"))));
    std::string Wl = freshVar("_wl");
    stmt(B.varDecl(B.prim("size_t"), Wl,
                   CountsNul ? B.add(B.id(Sl), B.num(1))
                             : static_cast<CastExpr *>(B.id(Sl))));
    openChunk(alignUpTo(Layout.padded(4), CA));
    putU32(B.castTo(B.prim("uint32_t"), B.id(Wl)));
    closeChunk();
    if (options().Memcpy || options().PerDatumCalls) {
      // Strings copy in bulk (paper §3.2: 60-70% faster than
      // character-by-character processing).  rpcgen also bulk-copied
      // opaque data, so the naive baseline keeps this path.  Copy only
      // the Sl characters and store the wire NUL explicitly: with the
      // explicit-length presentation the source need not be terminated.
      if (NoEnsure == 0)
        checkCall(B.call("flick_buf_ensure", {bufExpr(), B.id(Wl)}),
                  "FLICK_ERR_ALLOC");
      std::string Sd = freshVar("_sd");
      stmt(B.varDecl(B.ptr(B.prim("uint8_t")), Sd,
                     B.call("flick_buf_grab", {bufExpr(), B.id(Wl)})));
      stmt(B.exprStmt(B.call("memcpy", {B.id(Sd), B.id(Sp), B.id(Sl)})));
      if (CountsNul)
        stmt(B.exprStmt(
            B.assign(B.idx(B.id(Sd), B.id(Sl)), B.num(0))));
    } else {
      // Ablation: component-by-component character processing.
      std::string IV = freshVar("_i");
      std::vector<CastStmt *> Body;
      auto *SaveCur = Cur;
      Cur = &Body;
      checkCall(B.call("flick_naive_put_u8",
                       {bufExpr(), B.castTo(B.prim("uint8_t"),
                                            B.idx(B.id(Sp), B.id(IV)))}),
                "FLICK_ERR_ALLOC");
      Cur = SaveCur;
      stmt(B.forStmt(B.varDecl(B.prim("size_t"), IV, B.num(0)),
                     B.lt(B.id(IV), B.id(Wl)),
                     B.bin("=", B.id(IV), B.add(B.id(IV), B.num(1))),
                     B.block(Body)));
    }
    alignTo(Layout.padUnit() > 1 ? Layout.padUnit() : CA);
    return;
  }

  openChunk(alignUpTo(Layout.padded(4), CA));
  std::string Wl = freshVar("_wl");
  stmt(B.varDecl(B.prim("uint32_t"), Wl, getU32()));
  closeChunk();
  if (CountsNul)
    stmt(B.ifStmt(B.bin("<", B.id(Wl), B.num(1)),
                  B.ret(B.id("FLICK_ERR_DECODE"))));
  if (MA->isBounded())
    stmt(B.ifStmt(B.bin(">", B.id(Wl),
                        B.unum(MA->maxLen() + (CountsNul ? 1 : 0))),
                  B.ret(B.id("FLICK_ERR_DECODE"))));
  checkAvail(B.id(Wl));

  bool AliasOk = options().BufferAlias && options().ScratchAlloc &&
                 ServerSide && P->alloc().AllowBufferAlias &&
                 aliasableString(P, Layout);
  if (AliasOk) {
    // CDR strings carry their NUL on the wire, so the presented char*
    // can point straight into the request buffer.
    std::string Sv = freshVar("_s");
    stmt(B.varDecl(B.ptr(B.prim("char")), Sv,
                   B.castTo(B.ptr(B.prim("char")),
                            B.call("flick_buf_take_mut",
                                   {bufExpr(), B.id(Wl)}))));
    stmt(B.ifStmt(B.ne(B.idx(B.id(Sv), B.sub(B.id(Wl), B.num(1))),
                       B.num(0)),
                  B.ret(B.id("FLICK_ERR_DECODE"))));
    stmt(B.exprStmt(B.assign(Val, B.id(Sv))));
    {
      auto It = KnownStrLenOut.find(P);
      if (It != KnownStrLenOut.end()) {
        stmt(B.exprStmt(B.assign(It->second,
                                 B.sub(B.id(Wl), B.num(1)))));
        KnownStrLenOut.erase(It);
      }
    }
    alignTo(Layout.padUnit() > 1 ? Layout.padUnit() : CA);
    return;
  }

  auto EmitLenOut = [&](CastExpr *WireLenE) {
    auto It = KnownStrLenOut.find(P);
    if (It == KnownStrLenOut.end())
      return;
    CastExpr *Logical = CountsNul ? B.sub(WireLenE, B.num(1)) : WireLenE;
    stmt(B.exprStmt(B.assign(It->second, Logical)));
    KnownStrLenOut.erase(It);
  };
  std::string Sv = freshVar("_s");
  CastExpr *Bytes = B.add(B.castTo(B.prim("size_t"), B.id(Wl)), B.num(1));
  stmt(B.varDecl(
      B.ptr(B.prim("char")), Sv,
      B.castTo(B.ptr(B.prim("char")), allocExpr(P->alloc(), Bytes))));
  stmt(B.ifStmt(B.nt(B.id(Sv)), B.ret(B.id("FLICK_ERR_ALLOC"))));
  stmt(B.exprStmt(B.call(
      "memcpy", {B.id(Sv),
                 B.castTo(B.constPtr(B.voidTy()),
                          B.call("flick_buf_take", {bufExpr(), B.id(Wl)})),
                 B.id(Wl)})));
  stmt(B.exprStmt(
      B.assign(B.idx(B.id(Sv), B.id(Wl)), B.num(0))));
  stmt(B.exprStmt(B.assign(Val, B.id(Sv))));
  EmitLenOut(B.id(Wl));
  alignTo(Layout.padUnit() > 1 ? Layout.padUnit() : CA);
}

void StubGen::emitOptPtr(const PresOptPtr *P, CastExpr *Val, bool Encode) {
  const PresNode *Elem = P->elem();
  CastType *ElemCT = Elem->ctype();
  unsigned CA = chunkAlign();

  if (Encode) {
    openChunk(alignUpTo(Layout.padded(4), CA));
    putU32(B.ternary(Val, B.num(1), B.num(0)));
    closeChunk();
    std::vector<CastStmt *> Then;
    auto *SaveCur = Cur;
    Cur = &Then;
    emitValue(Elem, B.deref(Val), true);
    Cur = SaveCur;
    stmt(B.ifStmt(Val, B.block(Then)));
    return;
  }

  openChunk(alignUpTo(Layout.padded(4), CA));
  std::string Tag = freshVar("_tag");
  stmt(B.varDecl(B.prim("uint32_t"), Tag, getU32()));
  closeChunk();
  stmt(B.ifStmt(B.bin(">", B.id(Tag), B.num(1)),
                B.ret(B.id("FLICK_ERR_DECODE"))));
  std::vector<CastStmt *> Then, Else;
  auto *SaveCur = Cur;
  Cur = &Then;
  std::string Pv = freshVar("_p");
  stmt(B.varDecl(
      B.ptr(ElemCT), Pv,
      B.castTo(B.ptr(ElemCT),
               allocExpr(P->alloc(), B.sizeofTy(ElemCT)))));
  stmt(B.ifStmt(B.nt(B.id(Pv)), B.ret(B.id("FLICK_ERR_ALLOC"))));
  emitValue(Elem, B.deref(B.id(Pv)), false);
  stmt(B.exprStmt(B.assign(Val, B.id(Pv))));
  Cur = &Else;
  stmt(B.exprStmt(B.assign(Val, B.num(0))));
  Cur = SaveCur;
  stmt(B.ifStmt(B.id(Tag), B.block(Then), B.block(Else)));
}

void StubGen::emitUnion(const PresUnion *P, CastExpr *Val, bool Encode) {
  CastExpr *DiscL = B.mem(Val, P->discField());
  emitAtomicValue(P->discPres(), DiscL, Encode);

  std::vector<CastSwitchCase> Cases;
  bool HasDefault = false;
  for (const PresUnionArm &Arm : P->arms()) {
    CastSwitchCase C;
    if (Arm.IsDefault) {
      HasDefault = true;
    } else {
      for (int64_t V : Arm.CaseValues)
        C.Values.push_back(B.num(V));
    }
    auto *SaveCur = Cur;
    Cur = &C.Stmts;
    if (Arm.Pres)
      emitValue(Arm.Pres,
                B.mem(B.mem(Val, P->unionField()), Arm.ArmField), Encode);
    else
      stmt(B.comment("void case"));
    Cur = SaveCur;
    Cases.push_back(std::move(C));
  }
  if (!HasDefault) {
    CastSwitchCase D;
    D.Stmts.push_back(B.ret(B.id("FLICK_ERR_DECODE")));
    D.FallsThrough = true;
    Cases.push_back(std::move(D));
  }
  CastExpr *Cond = B.castTo(B.prim("int64_t"), DiscL);
  stmt(B.switchStmt(Cond, std::move(Cases)));
  alignTo(chunkAlign());
}

//===----------------------------------------------------------------------===//
// Out-of-line helpers (recursive types; non-inlining mode)
//===----------------------------------------------------------------------===//

void StubGen::placeHelperFunc(CDFunc *Proto, CSBlock *Body, bool IntoClient,
                              bool IntoServer) {
  bool Inline = options().Inline;
  auto *Def = B.func(Proto->ret(), Proto->name(), Proto->params(), Body,
                     /*Static=*/Inline, /*Inline=*/Inline);
  auto *Decl = B.func(Proto->ret(), Proto->name(), Proto->params(), nullptr,
                      /*Static=*/Inline, /*Inline=*/Inline);
  HelperProtos.push_back(Decl);
  if (Inline) {
    HelperDefs.push_back(Def);
    return;
  }
  (void)IntoClient;
  (void)IntoServer;
  CommonDefs.push_back(Def);
}

void StubGen::callHelper(const PresNode *Pn, CastExpr *Val, bool Encode) {
  assert(!ChunkActive && "helper call with open chunk");
  PKind K = classifyPres(Pn);
  // Structural keying: two presentations that marshal identically share
  // one emitted helper (shrinking Table 2 object sizes).
  HelperKey Key{presStructureKey(Pn), Encode};
  auto It = Helpers.find(Key);
  std::string Name;
  if (It != Helpers.end()) {
    Name = It->second;
    FLICK_STAT_COUNT("plan.helper_reuse", 1);
  } else {
    Name = sanitizeIdentifier(BaseName) +
           (Encode ? "_enc_h" : "_dec_h") +
           std::to_string(++HelperCounter);
    Helpers.emplace(Key, Name);

    // Build the helper signature.
    CastType *VT = nullptr;
    switch (K) {
    case PKind::Agg:
      VT = Encode ? B.constPtr(Pn->ctype()) : B.ptr(Pn->ctype());
      break;
    case PKind::Str:
      VT = Encode ? B.constPtr(B.prim("char"))
                  : B.ptr(B.ptr(B.prim("char")));
      break;
    case PKind::FixArr: {
      CastType *E = cast<PresFixedArray>(Pn)->elem()->ctype();
      VT = Encode ? B.constPtr(E) : B.ptr(E);
      break;
    }
    case PKind::Opt: {
      CastType *E = B.ptr(cast<PresOptPtr>(Pn)->elem()->ctype());
      VT = Encode ? E : B.ptr(E);
      break;
    }
    default:
      assert(false && "helper for scalar");
    }
    std::vector<CastParam> Params;
    Params.push_back(CastParam{B.ptr(B.structTy("flick_buf")), "_buf"});
    if (!Encode)
      Params.push_back(
          CastParam{B.ptr(B.structTy("flick_arena")), "_ar"});
    Params.push_back(CastParam{VT, "_v"});

    // Generate the body with fresh chunk/recursion state.
    auto *SaveCur = Cur;
    bool SaveActive = ChunkActive;
    bool SaveServer = ServerSide;
    unsigned SaveNoEnsure = NoEnsure;
    uint64_t SaveGather = GatherMin;
    const PresNode *SaveRoot = HelperRoot;
    ChunkActive = false;
    ServerSide = false; // shared helpers must not buffer-alias
    NoEnsure = 0;
    GatherMin = 0; // shared helpers serve replies too: never borrow
    HelperRoot = Pn;
    std::vector<CastStmt *> Body;
    Cur = &Body;
    CastExpr *Inner = nullptr;
    switch (K) {
    case PKind::Agg:
      Inner = B.deref(B.id("_v"));
      break;
    case PKind::Str:
      Inner = Encode ? B.id("_v")
                     : static_cast<CastExpr *>(B.deref(B.id("_v")));
      break;
    case PKind::FixArr:
      Inner = B.id("_v");
      break;
    case PKind::Opt:
      Inner = Encode ? B.id("_v")
                     : static_cast<CastExpr *>(B.deref(B.id("_v")));
      break;
    default:
      break;
    }
    emitValue(Pn, Inner, Encode);
    stmt(B.ret(B.id("FLICK_OK")));
    Cur = SaveCur;
    ChunkActive = SaveActive;
    ServerSide = SaveServer;
    NoEnsure = SaveNoEnsure;
    GatherMin = SaveGather;
    HelperRoot = SaveRoot;

    auto *Proto = B.func(B.prim("int"), Name, Params, nullptr);
    placeHelperFunc(Proto, B.block(Body), true, true);
  }

  // Emit the call.
  CastExpr *Arg = nullptr;
  switch (K) {
  case PKind::Agg:
    Arg = B.addr(Val);
    break;
  case PKind::Str:
    Arg = Encode ? Val : static_cast<CastExpr *>(B.addr(Val));
    break;
  case PKind::FixArr:
    Arg = Val;
    break;
  case PKind::Opt:
    Arg = Encode ? Val : static_cast<CastExpr *>(B.addr(Val));
    break;
  default:
    break;
  }
  std::vector<CastExpr *> Args = {bufExpr()};
  if (!Encode)
    Args.push_back(B.id("_ar"));
  Args.push_back(Arg);
  std::string Rv = freshVar("_hr");
  stmt(B.varDecl(B.prim("int"), Rv, B.call(Name, Args)));
  stmt(B.ifStmt(B.id(Rv), B.ret(B.id(Rv))));
}

//===----------------------------------------------------------------------===//
// Deep-free helpers
//===----------------------------------------------------------------------===//

void StubGen::emitFree(const PresNode *Pn, CastExpr *Val) {
  if (!presIsVariable(Pn))
    return;
  switch (Pn->kind()) {
  case PresNode::Kind::String:
    stmt(B.exprStmt(B.call("free", {Val})));
    return;
  case PresNode::Kind::OptPtr: {
    const auto *O = cast<PresOptPtr>(Pn);
    std::vector<CastStmt *> Then;
    auto *SaveCur = Cur;
    Cur = &Then;
    emitFree(O->elem(), B.deref(Val));
    stmt(B.exprStmt(B.call("free", {Val})));
    Cur = SaveCur;
    stmt(B.ifStmt(Val, B.block(Then)));
    return;
  }
  case PresNode::Kind::FixedArray: {
    const auto *A = cast<PresFixedArray>(Pn);
    std::string IV = freshVar("_i");
    std::vector<CastStmt *> Body;
    auto *SaveCur = Cur;
    Cur = &Body;
    emitFree(A->elem(), B.idx(Val, B.id(IV)));
    Cur = SaveCur;
    stmt(B.forStmt(B.varDecl(B.prim("size_t"), IV, B.num(0)),
                   B.lt(B.id(IV), B.unum(A->count())),
                   B.bin("=", B.id(IV), B.add(B.id(IV), B.num(1))),
                   B.block(Body)));
    return;
  }
  case PresNode::Kind::Struct:
  case PresNode::Kind::Counted:
  case PresNode::Kind::Union: {
    std::string Fn = freeHelper(Pn);
    stmt(B.exprStmt(B.call(Fn, {B.addr(Val)})));
    return;
  }
  default:
    return;
  }
}

std::string StubGen::freeHelper(const PresNode *Pn) {
  // Keyed structurally like marshal helpers; this also fixes the latent
  // duplicate-definition hazard two same-named typedef'd CastPrims had
  // under pointer keying.
  std::string Key = presStructureKey(Pn);
  auto It = FreeHelpers.find(Key);
  if (It != FreeHelpers.end())
    return It->second;
  std::string Name;
  if (const auto *Prim = dyn_cast_or_null<CastPrim>(Pn->ctype()))
    Name = Prim->name() + "_flick_free";
  else
    Name = sanitizeIdentifier(BaseName) + "_free_h" +
           std::to_string(++HelperCounter);
  FreeHelpers.emplace(Key, Name);

  std::vector<CastParam> Params = {CastParam{B.ptr(Pn->ctype()), "_v"}};
  auto *SaveCur = Cur;
  std::vector<CastStmt *> Body;
  Cur = &Body;
  switch (Pn->kind()) {
  case PresNode::Kind::Struct:
    for (const PresField &F : cast<PresStruct>(Pn)->fields())
      emitFree(F.Pres, B.arrow(B.id("_v"), F.CName));
    break;
  case PresNode::Kind::Counted: {
    const auto *C = cast<PresCounted>(Pn);
    if (presIsVariable(C->elem())) {
      std::string IV = freshVar("_i");
      std::vector<CastStmt *> Loop;
      Cur = &Loop;
      emitFree(C->elem(),
               B.idx(B.arrow(B.id("_v"), C->bufField()), B.id(IV)));
      Cur = &Body;
      stmt(B.forStmt(
          B.varDecl(B.prim("size_t"), IV, B.num(0)),
          B.lt(B.id(IV), B.arrow(B.id("_v"), C->lenField())),
          B.bin("=", B.id(IV), B.add(B.id(IV), B.num(1))),
          B.block(Loop)));
    }
    stmt(B.exprStmt(
        B.call("free", {B.arrow(B.id("_v"), C->bufField())})));
    break;
  }
  case PresNode::Kind::Union: {
    const auto *U = cast<PresUnion>(Pn);
    std::vector<CastSwitchCase> Cases;
    for (const PresUnionArm &Arm : U->arms()) {
      if (!Arm.Pres || !presIsVariable(Arm.Pres))
        continue;
      CastSwitchCase C;
      if (!Arm.IsDefault)
        for (int64_t V : Arm.CaseValues)
          C.Values.push_back(B.num(V));
      Cur = &C.Stmts;
      emitFree(Arm.Pres, B.mem(B.arrow(B.id("_v"), U->unionField()),
                               Arm.ArmField));
      Cur = &Body;
      Cases.push_back(std::move(C));
    }
    if (!Cases.empty())
      stmt(B.switchStmt(B.castTo(B.prim("int64_t"),
                                 B.arrow(B.id("_v"), U->discField())),
                        std::move(Cases)));
    break;
  }
  default:
    break;
  }
  Cur = SaveCur;
  auto *Proto = B.func(B.voidTy(), Name, Params, nullptr);
  placeHelperFunc(Proto, B.block(Body), true, true);
  return Name;
}
