//===- backends/Passes.h - Marshal-plan pass pipeline -----------*- C++ -*-===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The optimization passes that rewrite a MarshalPlan before emission,
/// and the BackendOptions façade that selects which of them run.  Each
/// pass is one technique from paper §3; `flickc --passes=<list>` and the
/// legacy `--no-*` flags both resolve to this one switch set, so the
/// ablation bench and the CLI can never drift apart.
///
/// Pipeline order (fixed): inline -> chunk -> memcpy -> bounded ->
/// scratch -> alias.  Passes only read the analysis facts recorded in
/// PlanItems and write strategy into the steps; they never build CAST.
///
//===----------------------------------------------------------------------===//

#ifndef FLICK_BACKENDS_PASSES_H
#define FLICK_BACKENDS_PASSES_H

#include "backends/MarshalPlan.h"
#include <string>
#include <vector>

namespace flick {

/// Bounded→fixed promotion threshold restored by `--passes=all` /
/// `+bounded` when the pass was previously disabled (paper §3.1's 8KB).
inline constexpr uint64_t DefaultBoundedThreshold = 8192;

/// Gather threshold installed by `--passes=all` / `+gather` when no
/// explicit `--gather-min-bytes` was given: below this, flick_buf_ref
/// bookkeeping costs more than the memcpy it saves (tuned on
/// micro_primitives-class workloads; see DESIGN.md §11).
inline constexpr uint64_t DefaultGatherMinBytes = 4096;

/// Optimization switches; each maps to a technique from paper §3 and can be
/// disabled independently for the ablation benches.  This is the façade
/// over the pass pipeline: every field (except PerDatumCalls) enables one
/// named pass, and parsePassList edits it from a `--passes=` spec.
struct BackendOptions {
  /// "inline" pass: inline marshal code into the stubs; off =
  /// per-aggregate out-of-line marshal functions (traditional style).
  bool Inline = true;
  /// "memcpy" pass: memcpy arrays of atomic types whose wire and host
  /// formats agree, and block-copy dense bit-identical chunk members.
  bool Memcpy = true;
  /// "chunk" pass: coalesce buffer checks over fixed-size segments and
  /// address them through a chunk pointer; off = per-datum check +
  /// pointer bump.
  bool Chunk = true;
  /// "scratch" pass: unmarshal server parameters into per-request scratch
  /// storage instead of malloc.
  bool ScratchAlloc = true;
  /// "alias" pass: let unmarshaled arrays alias the request buffer when
  /// representations are bit-identical.
  bool BufferAlias = true;
  /// "bounded" pass: segments with a static bound at or below this are
  /// treated as fixed for buffer-check purposes (the paper's 8KB
  /// threshold).  0 disables the pass.
  uint64_t BoundedThreshold = DefaultBoundedThreshold;
  /// "gather" pass (`--gather-min-bytes=N`): rewrite encode-request bulk
  /// copies of at least N bytes into by-reference scatter-gather segments
  /// (flick_buf_ref / flick_iov).  0 disables the pass, which is the
  /// default: generated stubs are byte-identical without the flag.
  uint64_t GatherMinBytes = 0;
  /// Per-datum marshaling through out-of-line runtime calls; set by the
  /// naive back end.  Not a pass: it replaces the emitter's atom
  /// primitives and is selected only by `-b naive`.
  bool PerDatumCalls = false;
  /// Record before/after plans for --dump-marshal-plan.
  bool DumpPlans = false;
  /// `--trace-hooks`: bracket every generated marshal/unmarshal helper,
  /// client stub, and server work call with flick_span_begin/end pairs.
  /// Not a pass (it adds steps rather than rewriting them); off by
  /// default so generated code is byte-identical without the flag.
  bool TraceHooks = false;
};

/// One registered pass: its `--passes` name and a one-line summary.
struct PassInfo {
  const char *Name;
  const char *Summary;
  bool (*Enabled)(const BackendOptions &O);
};

/// The registry, in pipeline order.
const std::vector<PassInfo> &passRegistry();

/// Names of the passes enabled under \p O, in pipeline order.
std::vector<std::string> enabledPassNames(const BackendOptions &O);

/// Applies a `--passes=` spec to \p O: comma-separated tokens applied
/// left to right, each `all`, `none`, `<name>`, `+<name>`, or `-<name>`.
/// Returns false and fills \p Err (listing the valid names) on an unknown
/// token.
bool parsePassList(const std::string &Spec, BackendOptions &O,
                   std::string &Err);

/// Human-readable pass list for `flickc --print-passes`.
std::string passCatalog();

/// Runs the enabled passes, in order, over plans built by buildSeqPlan.
/// Each pass is timed into a "pass.<name>" Stats region and bumps plan.*
/// counters, so `flickc --stats` shows the pipeline the way it shows the
/// front-end phases.
class PassPipeline {
public:
  PassPipeline(const BackendOptions &O, const WireLayout &L) : O(O), L(L) {}

  void run(SeqPlan &Plan) const;

private:
  void passInline(SeqPlan &Plan) const;
  void passChunk(SeqPlan &Plan) const;
  void passMemcpy(SeqPlan &Plan) const;
  void passBounded(SeqPlan &Plan) const;
  void passScratch(SeqPlan &Plan) const;
  void passAlias(SeqPlan &Plan) const;
  void passGather(SeqPlan &Plan) const;

  const BackendOptions &O;
  const WireLayout &L;
};

} // namespace flick

#endif // FLICK_BACKENDS_PASSES_H
