//===- presgen/PresGen.cpp - Presentation generator base ------------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "presgen/PresGen.h"
#include "support/Diagnostics.h"
#include "support/Stats.h"
#include "support/StringExtras.h"
#include <cassert>
#include <functional>
#include <set>

using namespace flick;

PresGen::~PresGen() = default;

AllocSemantics PresGen::serverInAlloc() const {
  // Both the CORBA C mapping and rpcgen forbid servants from keeping
  // references to in-parameter storage after the work function returns, so
  // the back end may alias the request buffer or use request-lifetime
  // scratch storage (paper §3.1).
  AllocSemantics A;
  A.AllowBufferAlias = true;
  A.AllowStackAlloc = true;
  A.AllowHeap = true;
  return A;
}

//===----------------------------------------------------------------------===//
// Variable-size detection
//===----------------------------------------------------------------------===//

namespace {

bool presIsVariableImpl(const PresNode *P, std::set<const PresNode *> &Seen) {
  if (!P || !Seen.insert(P).second)
    return false;
  switch (P->kind()) {
  case PresNode::Kind::Void:
  case PresNode::Kind::Prim:
  case PresNode::Kind::Enum:
    return false;
  case PresNode::Kind::Counted:
  case PresNode::Kind::String:
  case PresNode::Kind::OptPtr:
    return true;
  case PresNode::Kind::Struct: {
    for (const PresField &F : cast<PresStruct>(P)->fields())
      if (presIsVariableImpl(F.Pres, Seen))
        return true;
    return false;
  }
  case PresNode::Kind::FixedArray:
    return presIsVariableImpl(cast<PresFixedArray>(P)->elem(), Seen);
  case PresNode::Kind::Union: {
    for (const PresUnionArm &A : cast<PresUnion>(P)->arms())
      if (presIsVariableImpl(A.Pres, Seen))
        return true;
    return false;
  }
  }
  return false;
}

} // namespace

namespace flick {
/// True when the presented C value contains pointers (variable-size in the
/// CORBA C mapping sense); decides T* vs T** out-parameter passing.
bool presIsVariable(const PresNode *P) {
  std::set<const PresNode *> Seen;
  return presIsVariableImpl(P, Seen);
}
} // namespace flick

//===----------------------------------------------------------------------===//
// Type mapping
//===----------------------------------------------------------------------===//

CastType *PresGen::primCType(AoiPrimKind K) {
  switch (K) {
  case AoiPrimKind::Void:
    return B->voidTy();
  case AoiPrimKind::Boolean:
    return B->prim("uint8_t");
  case AoiPrimKind::Char:
    return B->prim("char");
  case AoiPrimKind::Octet:
    return B->prim("uint8_t");
  case AoiPrimKind::Short:
    return B->prim("int16_t");
  case AoiPrimKind::UShort:
    return B->prim("uint16_t");
  case AoiPrimKind::Long:
    return B->prim("int32_t");
  case AoiPrimKind::ULong:
    return B->prim("uint32_t");
  case AoiPrimKind::LongLong:
    return B->prim("int64_t");
  case AoiPrimKind::ULongLong:
    return B->prim("uint64_t");
  case AoiPrimKind::Float:
    return B->prim("float");
  case AoiPrimKind::Double:
    return B->prim("double");
  }
  return B->voidTy();
}

PresGen::TypeMapping PresGen::mapType(AoiType *T) {
  auto It = Memo.find(T);
  if (It != Memo.end())
    return It->second;

  TypeMapping Map;
  switch (T->kind()) {
  case AoiType::Kind::Primitive: {
    AoiPrimKind K = cast<AoiPrimitive>(T)->prim();
    Map.CT = primCType(K);
    switch (K) {
    case AoiPrimKind::Void:
      Map.M = Out->Mint.voidType();
      Map.P = Out->make<PresVoid>(Map.M);
      break;
    case AoiPrimKind::Boolean:
      Map.M = Out->Mint.boolType();
      Map.P = Out->make<PresPrim>(Map.M, Map.CT);
      break;
    case AoiPrimKind::Char:
      Map.M = Out->Mint.charType();
      Map.P = Out->make<PresPrim>(Map.M, Map.CT);
      break;
    case AoiPrimKind::Octet:
      Map.M = Out->Mint.integer(8, false);
      Map.P = Out->make<PresPrim>(Map.M, Map.CT);
      break;
    case AoiPrimKind::Short:
    case AoiPrimKind::UShort:
    case AoiPrimKind::Long:
    case AoiPrimKind::ULong:
    case AoiPrimKind::LongLong:
    case AoiPrimKind::ULongLong: {
      unsigned Bits = (K == AoiPrimKind::Short || K == AoiPrimKind::UShort)
                          ? 16
                      : (K == AoiPrimKind::Long || K == AoiPrimKind::ULong)
                          ? 32
                          : 64;
      bool Signed = K == AoiPrimKind::Short || K == AoiPrimKind::Long ||
                    K == AoiPrimKind::LongLong;
      Map.M = Out->Mint.integer(Bits, Signed);
      Map.P = Out->make<PresPrim>(Map.M, Map.CT);
      break;
    }
    case AoiPrimKind::Float:
      Map.M = Out->Mint.floatType(32);
      Map.P = Out->make<PresPrim>(Map.M, Map.CT);
      break;
    case AoiPrimKind::Double:
      Map.M = Out->Mint.floatType(64);
      Map.P = Out->make<PresPrim>(Map.M, Map.CT);
      break;
    }
    break;
  }
  case AoiType::Kind::String: {
    uint64_t Bound = cast<AoiString>(T)->bound();
    Map.M = Out->Mint.make<MintArray>(Out->Mint.charType(), 0,
                                      Bound ? Bound : MintUnboundedLen);
    Map.CT = B->ptr(B->prim("char"));
    Map.P = Out->make<PresString>(Map.M, Map.CT, serverInAlloc());
    break;
  }
  case AoiType::Kind::Sequence:
    Map = mapSequence(cast<AoiSequence>(T), std::string());
    break;
  case AoiType::Kind::Array: {
    auto *A = cast<AoiArray>(T);
    TypeMapping Elem = mapType(A->elem());
    // Multi-dimensional arrays nest outermost-first.
    Map = Elem;
    for (size_t I = A->dims().size(); I-- > 0;) {
      uint64_t N = A->dims()[I];
      MintType *M = Out->Mint.make<MintArray>(Map.M, N, N);
      CastType *CT = B->arr(Map.CT, N);
      Map.P = Out->make<PresFixedArray>(M, CT, Map.P, N);
      Map.M = M;
      Map.CT = CT;
    }
    break;
  }
  case AoiType::Kind::Struct:
    return mapStruct(cast<AoiStruct>(T));
  case AoiType::Kind::Union:
    return mapUnion(cast<AoiUnion>(T));
  case AoiType::Kind::Enum:
    return mapEnum(cast<AoiEnum>(T));
  case AoiType::Kind::Typedef:
    return mapTypedef(cast<AoiTypedef>(T));
  case AoiType::Kind::Optional: {
    auto *O = cast<AoiOptional>(T);
    // Two-phase: optional pointers are how self-referential types close
    // their cycle, so publish the mapping before mapping the element.
    auto *M = Out->Mint.make<MintArray>(nullptr, 0, 1);
    auto *P = Out->make<PresOptPtr>(M, nullptr, nullptr, serverInAlloc());
    Map.M = M;
    Map.P = P;
    Memo.emplace(T, Map); // CT patched below; re-inserted after
    TypeMapping Elem = mapType(O->elem());
    M->setElem(Elem.M);
    P->setElem(Elem.P);
    Map.CT = B->ptr(Elem.CT);
    P->setCType(Map.CT);
    Memo[T] = Map;
    return Map;
  }
  }
  Memo.emplace(T, Map);
  return Map;
}

PresGen::TypeMapping PresGen::mapStruct(AoiStruct *S) {
  std::string Name = prefixed(S->name());
  TypeMapping Map;
  auto *M = Out->Mint.make<MintStruct>(std::vector<MintStructElem>{});
  Map.M = M;
  Map.CT = B->prim(Name);
  auto *P = Out->make<PresStruct>(M, Map.CT, std::vector<PresField>{});
  Map.P = P;
  Memo.emplace(S, Map);

  // `typedef struct N N;` first so self-references inside the definition
  // are legal.
  Out->TypeDecls.push_back(B->typedefDecl(B->structTy(Name), Name));

  std::vector<CastParam> CFields;
  for (const AoiField &F : S->fields()) {
    NameHint = F.Name;
    TypeMapping FM = mapType(F.Type);
    NameHint.clear();
    M->elems().push_back(MintStructElem{FM.M, F.Name});
    P->fieldsMut().push_back(PresField{F.Name, FM.P});
    CFields.push_back(CastParam{FM.CT, F.Name});
  }
  Out->TypeDecls.push_back(B->structDef(Name, std::move(CFields)));
  return Map;
}

PresGen::TypeMapping PresGen::mapUnion(AoiUnion *U) {
  std::string Name = prefixed(U->name());
  TypeMapping Disc = mapType(U->disc());

  // MINT side.
  std::vector<MintUnionCase> MCases;
  MintType *MDefault = nullptr;
  std::vector<PresUnionArm> Arms;
  std::vector<CastParam> UnionFields;
  for (const AoiUnionCase &C : U->cases()) {
    TypeMapping Arm;
    if (C.Type)
      Arm = mapType(C.Type);
    PresUnionArm PA;
    PA.ArmField = C.FieldName;
    PA.Pres = C.Type ? Arm.P : nullptr;
    bool IsDefault = false;
    for (const AoiCaseLabel &L : C.Labels) {
      if (L.IsDefault) {
        IsDefault = true;
        continue;
      }
      PA.CaseValues.push_back(L.Value);
      MCases.push_back(MintUnionCase{
          L.Value, C.Type ? Arm.M : Out->Mint.voidType(), C.FieldName});
    }
    PA.IsDefault = IsDefault;
    if (IsDefault)
      MDefault = C.Type ? Arm.M : Out->Mint.voidType();
    Arms.push_back(std::move(PA));
    if (C.Type)
      UnionFields.push_back(CastParam{Arm.CT, C.FieldName});
  }

  // The wire discriminator is the mapped integer/enum; MINT unions always
  // discriminate on an integer type.
  auto *MDisc = dyn_cast<MintInteger>(Disc.M);
  if (!MDisc)
    MDisc = Out->Mint.integer(32, true);
  auto *M = Out->Mint.make<MintUnion>(MDisc, std::move(MCases), MDefault);

  // C side: `typedef struct N N; union N_u {...}; struct N {D _d; union
  // N_u _u;};`
  std::string UName = Name + "_" + unionUnionField();
  Out->TypeDecls.push_back(B->typedefDecl(B->structTy(Name), Name));
  Out->TypeDecls.push_back(
      Out->Cast.make<CDAggregateDef>(CastTag::Union, UName, UnionFields));
  std::vector<CastParam> SFields;
  SFields.push_back(CastParam{Disc.CT, unionDiscField()});
  SFields.push_back(CastParam{B->unionTy(UName), unionUnionField()});
  Out->TypeDecls.push_back(B->structDef(Name, std::move(SFields)));

  TypeMapping Map;
  Map.M = M;
  Map.CT = B->prim(Name);
  Map.P = Out->make<PresUnion>(M, Map.CT, Disc.P, unionDiscField(),
                               unionUnionField(), std::move(Arms));
  Memo.emplace(U, Map);
  return Map;
}

PresGen::TypeMapping PresGen::mapEnum(AoiEnum *E) {
  std::string Name = prefixed(E->name());
  std::vector<CastEnumerator> Ens;
  for (const AoiEnumerator &En : E->enumerators())
    Ens.push_back(CastEnumerator{prefixed(En.Name), En.Value});
  Out->TypeDecls.push_back(B->enumDef(Name, std::move(Ens)));
  Out->TypeDecls.push_back(B->typedefDecl(B->enumTy(Name), Name));

  TypeMapping Map;
  Map.M = Out->Mint.integer(32, false);
  Map.CT = B->prim(Name);
  Map.P = Out->make<PresEnum>(Map.M, Map.CT);
  Memo.emplace(E, Map);
  return Map;
}

PresGen::TypeMapping PresGen::makeSeqStruct(const std::string &Name,
                                            TypeMapping Elem,
                                            uint64_t Bound,
                                            const std::string &MemberHint) {
  std::string Hint = MemberHint.empty() ? Name : MemberHint;
  // rpcgen derives member names from the declared name; strip the prefix so
  // `entries` yields `entries_len`, not `N_entries_len`.
  if (!options().NamePrefix.empty() &&
      startsWith(Hint, options().NamePrefix))
    Hint = Hint.substr(options().NamePrefix.size());

  Out->TypeDecls.push_back(B->typedefDecl(B->structTy(Name), Name));
  std::vector<CastParam> Fields;
  std::string MaxF = seqMaxField(Hint);
  if (!MaxF.empty())
    Fields.push_back(CastParam{B->prim("uint32_t"), MaxF});
  Fields.push_back(CastParam{B->prim("uint32_t"), seqLenField(Hint)});
  Fields.push_back(CastParam{B->ptr(Elem.CT), seqBufField(Hint)});
  Out->TypeDecls.push_back(B->structDef(Name, std::move(Fields)));

  TypeMapping Map;
  Map.M = Out->Mint.make<MintArray>(Elem.M, 0,
                                    Bound ? Bound : MintUnboundedLen);
  Map.CT = B->prim(Name);
  Map.P = Out->make<PresCounted>(Map.M, Map.CT, Elem.P, seqLenField(Hint),
                                 seqBufField(Hint), MaxF, serverInAlloc());
  return Map;
}

PresGen::TypeMapping PresGen::mapSequence(AoiSequence *S,
                                          const std::string &NameHintArg) {
  TypeMapping Elem = mapType(S->elem());
  std::string Name = NameHintArg;
  if (Name.empty() && !NameHint.empty())
    Name = prefixed(NameHint + "seq");
  if (Name.empty() || !UsedSeqNames.insert(Name).second)
    Name = prefixed("flick_seq_" + std::to_string(++AnonSeqCounter));
  TypeMapping Map = makeSeqStruct(Name, Elem, S->bound(), NameHint);
  Memo.emplace(S, Map);
  return Map;
}

PresGen::TypeMapping PresGen::mapTypedef(AoiTypedef *TD) {
  std::string Name = prefixed(TD->name());
  // A typedef of a sequence names the sequence struct itself (rpcgen
  // behavior for `typedef T name<>;`).
  if (auto *Seq = dyn_cast<AoiSequence>(TD->aliased())) {
    TypeMapping Elem = mapType(Seq->elem());
    TypeMapping Map = makeSeqStruct(Name, Elem, Seq->bound(), std::string());
    Memo.emplace(TD, Map);
    Memo.emplace(Seq, Map);
    return Map;
  }
  TypeMapping Under = mapType(TD->aliased());
  Out->TypeDecls.push_back(B->typedefDecl(Under.CT, Name));
  TypeMapping Map = Under;
  Map.CT = B->prim(Name);
  // The PRES node keeps the underlying conversion; only the spelling of the
  // C type changes.
  Memo.emplace(TD, Map);
  return Map;
}

//===----------------------------------------------------------------------===//
// Interfaces and operations
//===----------------------------------------------------------------------===//

namespace {

SigInfo paramSig(CastBuilder &B, const PresNode *P, AoiParamDir Dir,
                 bool Variable) {
  SigInfo S;
  switch (P->kind()) {
  case PresNode::Kind::Prim:
  case PresNode::Kind::Enum:
    if (Dir == AoiParamDir::In) {
      S.Type = P->ctype();
      S.Indirection = 0;
    } else {
      S.Type = B.ptr(P->ctype());
      S.Indirection = 1;
    }
    return S;
  case PresNode::Kind::String:
    if (Dir == AoiParamDir::In) {
      S.Type = B.constPtr(B.prim("char"));
      S.Indirection = 0; // the char* itself is the presented value
    } else {
      S.Type = B.ptr(B.ptr(B.prim("char")));
      S.Indirection = 1;
    }
    return S;
  case PresNode::Kind::OptPtr:
    if (Dir == AoiParamDir::In) {
      S.Type = P->ctype() ? P->ctype() : B.ptr(B.voidTy());
      S.Indirection = 0;
    } else {
      S.Type = B.ptr(P->ctype() ? P->ctype() : B.ptr(B.voidTy()));
      S.Indirection = 1;
    }
    return S;
  case PresNode::Kind::FixedArray:
    // Arrays decay: the name is a pointer to the first element; the PRES
    // node carries the count.
    S.Type = Dir == AoiParamDir::In
                 ? B.constPtr(cast<PresFixedArray>(P)->elem()->ctype())
                 : B.ptr(cast<PresFixedArray>(P)->elem()->ctype());
    S.Indirection = 0;
    return S;
  case PresNode::Kind::Struct:
  case PresNode::Kind::Union:
  case PresNode::Kind::Counted:
    if (Dir == AoiParamDir::In) {
      S.Type = B.constPtr(P->ctype());
      S.Indirection = 1;
    } else if (Dir == AoiParamDir::InOut || !Variable) {
      S.Type = B.ptr(P->ctype());
      S.Indirection = 1;
    } else {
      // Variable-size pure-out parameters are allocated by the stub
      // (CORBA C mapping): pass T **.
      S.Type = B.ptr(B.ptr(P->ctype()));
      S.Indirection = 2;
    }
    return S;
  case PresNode::Kind::Void:
    S.Type = B.voidTy();
    return S;
  }
  return S;
}

} // namespace

namespace flick {
/// Exposed for the back ends (Backend.cpp) to recompute signature shapes.
SigInfo presgenParamSig(CastBuilder &B, const PresNode *P, AoiParamDir Dir,
                        bool Variable) {
  return paramSig(B, P, Dir, Variable);
}
} // namespace flick

void PresGen::generateExceptions(const AoiModule &M) {
  for (const auto &Ex : M.exceptions()) {
    std::string Name = prefixed(Ex->Name);
    auto *MS = Out->Mint.make<MintStruct>(std::vector<MintStructElem>{});
    auto *PS = Out->make<PresStruct>(MS, B->prim(Name),
                                     std::vector<PresField>{});
    Out->TypeDecls.push_back(B->typedefDecl(B->structTy(Name), Name));
    std::vector<CastParam> CFields;
    for (const AoiField &F : Ex->Members) {
      TypeMapping FM = mapType(F.Type);
      MS->elems().push_back(MintStructElem{FM.M, F.Name});
      PS->fieldsMut().push_back(PresField{F.Name, FM.P});
      CFields.push_back(CastParam{FM.CT, F.Name});
    }
    Out->TypeDecls.push_back(B->structDef(Name, std::move(CFields)));
    Out->TypeDecls.push_back(B->rawDecl(
        "#define " + Name + "_CODE " + std::to_string(Ex->ExceptionCode)));
    Out->Exceptions.push_back(
        PresCException{Name, Ex->Name, Ex->ExceptionCode, PS});
  }
}

void PresGen::generateTypes(const AoiModule &M) {
  for (const AoiConst &C : M.consts()) {
    std::string Val = C.Value.K == AoiConstValue::Kind::Int
                          ? std::to_string(C.Value.IntValue)
                          : "\"" + escapeCString(C.Value.StrValue) + "\"";
    Out->TypeDecls.push_back(
        B->rawDecl("#define " + prefixed(C.Name) + " " + Val));
  }
  for (AoiType *T : M.namedTypes())
    mapType(T);
}

void PresGen::generateOperation(const AoiInterface &If,
                                const AoiOperation &Op,
                                PresCInterface &PIf) {
  PresCOperation P;
  P.IdlName = Op.Name;
  P.CName = prefixed(stubName(If, Op));
  P.ServerImplName = prefixed(serverImplName(If, Op));
  P.RequestCode = Op.RequestCode;
  P.Oneway = Op.Oneway;

  // Return value.
  TypeMapping RetMap = mapType(Op.ReturnType);
  P.Return.Name = "_retval";
  P.Return.Dir = AoiParamDir::Out;
  if (!isa<PresVoid>(RetMap.P)) {
    P.Return.Pres = RetMap.P;
    SigInfo S =
        paramSig(*B, RetMap.P, AoiParamDir::Out, presIsVariable(RetMap.P));
    P.Return.SigType = S.Type;
    P.Return.ByPointer = S.Indirection > 0;
  }

  std::vector<MintStructElem> ReqElems, RepElems;
  if (P.Return.Pres)
    RepElems.push_back(MintStructElem{RetMap.M, "_retval"});

  for (const AoiParam &Param : Op.Params) {
    NameHint = Param.Name;
    TypeMapping PM = mapType(Param.Type);
    NameHint.clear();
    PresCParam PP;
    PP.Name = Param.Name;
    PP.Dir = Param.Dir;
    PP.Pres = PM.P;
    if (options().StringLenParams && Param.Dir == AoiParamDir::In &&
        isa<PresString>(PM.P))
      PP.LenParamName = Param.Name + "_len";
    SigInfo S = paramSig(*B, PM.P, Param.Dir, presIsVariable(PM.P));
    PP.SigType = S.Type;
    PP.ByPointer = S.Indirection > 0;
    P.Params.push_back(PP);

    if (Param.Dir != AoiParamDir::Out)
      ReqElems.push_back(MintStructElem{PM.M, Param.Name});
    if (Param.Dir != AoiParamDir::In)
      RepElems.push_back(MintStructElem{PM.M, Param.Name});
  }

  P.RequestMint = Out->Mint.make<MintStruct>(std::move(ReqElems));
  if (!Op.Oneway)
    P.ReplyMint = Out->Mint.make<MintStruct>(std::move(RepElems));

  if (usesEnvironment()) {
    for (const AoiExceptionDecl *Ex : Op.Raises) {
      for (uint32_t I = 0; I != Out->Exceptions.size(); ++I)
        if (Out->Exceptions[I].IdlName == Ex->Name)
          P.RaisesIdx.push_back(I);
    }
  }

  PIf.Ops.push_back(std::move(P));
}

void PresGen::generateInterface(const AoiInterface &If) {
  PresCInterface PIf;
  PIf.Name = prefixed(If.Name);
  PIf.ScopedName = If.ScopedName;
  PIf.ProgramNumber = If.ProgramNumber;
  PIf.VersionNumber = If.VersionNumber;

  // CORBA object references: `typedef flick_obj *<If>;`
  if (usesEnvironment())
    Out->TypeDecls.push_back(
        B->typedefDecl(B->ptr(B->structTy("flick_obj")), PIf.Name));

  // Effective operation list: inherited ops (in base order), own ops, then
  // attribute accessors.  Request codes are re-sequenced for interfaces
  // with inheritance or attributes so they stay unique.
  std::vector<const AoiOperation *> Ops;
  std::vector<AoiOperation> Synthesized;
  std::set<const AoiInterface *> SeenBases;
  std::function<void(const AoiInterface &)> Collect =
      [&](const AoiInterface &I) {
        if (!SeenBases.insert(&I).second)
          return;
        for (const AoiInterface *Base : I.Bases)
          Collect(*Base);
        for (const AoiOperation &Op : I.Operations)
          Ops.push_back(&Op);
        for (const AoiAttribute &A : I.Attributes) {
          AoiOperation Get;
          Get.Name = "_get_" + A.Name;
          Get.ReturnType = A.Type;
          Synthesized.push_back(Get);
          if (!A.ReadOnly) {
            AoiOperation Set;
            Set.Name = "_set_" + A.Name;
            Set.ReturnType = nullptr; // patched to void below
            AoiParam P;
            P.Dir = AoiParamDir::In;
            P.Name = "value";
            P.Type = A.Type;
            Set.Params.push_back(P);
            Synthesized.push_back(Set);
          }
        }
      };
  Collect(If);

  bool Resequence =
      !If.Bases.empty() || !Synthesized.empty() || usesEnvironment();
  // Synthesized accessor ops need a void return type node; reuse one.
  AoiPrimitive VoidPrim(AoiPrimKind::Void);
  for (AoiOperation &Op : Synthesized) {
    if (!Op.ReturnType)
      Op.ReturnType = &VoidPrim;
    Ops.push_back(&Op);
  }
  uint32_t NextCode = 1;
  for (const AoiOperation *Op : Ops) {
    AoiOperation Copy = *Op;
    if (Resequence)
      Copy.RequestCode = NextCode++;
    generateOperation(If, Copy, PIf);
  }
  Out->Interfaces.push_back(std::move(PIf));
}

std::unique_ptr<PresC> PresGen::generate(const AoiModule &M,
                                         DiagnosticEngine &Diags) {
  auto P = std::make_unique<PresC>();
  P->Style = styleName();
  P->NamePrefix = Opts.NamePrefix;
  Out = P.get();
  CastBuilder Builder(P->Cast);
  B = &Builder;
  this->Diags = &Diags;
  Memo.clear();
  AnonSeqCounter = 0;
  UsedSeqNames.clear();

  {
    // The AOI -> MINT/CAST mapping of the named types is the paper's MINT
    // build step; surfaced as its own top-level --stats phase.
    FLICK_STAT_PHASE("mint");
    generateExceptions(M);
    generateTypes(M);
    FLICK_STAT_COUNT("mint.nodes", P->Mint.numNodes());
  }
  {
    FLICK_STAT_PHASE("presgen");
    for (const auto &If : M.interfaces())
      generateInterface(*If);
    FLICK_STAT_COUNT("pres.style." + P->Style, 1);
    FLICK_STAT_COUNT("pres.interfaces", P->Interfaces.size());
    FLICK_STAT_COUNT("pres.nodes", P->numNodes());
    FLICK_STAT_COUNT("mint.nodes.total", P->Mint.numNodes());
    FLICK_STAT_COUNT("cast.type_decls", P->TypeDecls.size());
    FLICK_STAT_COUNT("cast.nodes", P->Cast.numNodes());
  }

  Out = nullptr;
  B = nullptr;
  this->Diags = nullptr;
  if (Diags.hasErrors())
    return nullptr;
  return P;
}
