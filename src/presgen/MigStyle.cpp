//===- presgen/MigStyle.cpp - the conjoined MIG presentation --------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MIG presentation policy, conjoined with the MIG front end exactly
/// as the paper describes (§2.1): MIG stub names are `subsystem_routine`,
/// stubs return a kern_return_t-style status instead of carrying a CORBA
/// environment, and servants are `<name>_server` functions -- MIG's
/// C-and-Mach-specific idioms expressed as one more small specialization
/// of the shared presentation library.
///
//===----------------------------------------------------------------------===//

#include "presgen/PresGen.h"
#include "support/StringExtras.h"

using namespace flick;

std::string MigPresGen::stubName(const AoiInterface &If,
                                 const AoiOperation &Op) const {
  return If.Name + "_" + Op.Name;
}

std::string MigPresGen::serverImplName(const AoiInterface &If,
                                       const AoiOperation &Op) const {
  return If.Name + "_" + Op.Name + "_server";
}
