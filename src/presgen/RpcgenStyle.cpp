//===- presgen/RpcgenStyle.cpp - the rpcgen presentation policy ---------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Everything unique to the rpcgen presentation: Sun-style lowercased
/// `proc_vers` stub names and `_svc` work-function names.
///
//===----------------------------------------------------------------------===//

#include "presgen/PresGen.h"
#include "support/StringExtras.h"

using namespace flick;

std::string RpcgenPresGen::stubName(const AoiInterface &If,
                                    const AoiOperation &Op) const {
  // rpcgen: `procname_version`, lowercased.
  return toLower(Op.Name) + "_" + std::to_string(If.VersionNumber);
}

std::string RpcgenPresGen::serverImplName(const AoiInterface &If,
                                          const AoiOperation &Op) const {
  return toLower(Op.Name) + "_" + std::to_string(If.VersionNumber) + "_svc";
}
