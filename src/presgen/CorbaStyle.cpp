//===- presgen/CorbaStyle.cpp - the CORBA C presentation policy ---------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Everything unique to the CORBA C language mapping: stub/servant naming.
/// The member-name and environment policies live inline in PresGen.h --
/// together a few dozen lines against the shared presentation library,
/// the reuse structure the paper's Table 1 reports.
///
//===----------------------------------------------------------------------===//

#include "presgen/PresGen.h"
#include "support/StringExtras.h"

using namespace flick;

std::string CorbaPresGen::stubName(const AoiInterface &If,
                                   const AoiOperation &Op) const {
  // CORBA C mapping: `Interface_operation`.
  return If.Name + "_" + Op.Name;
}

std::string CorbaPresGen::serverImplName(const AoiInterface &If,
                                         const AoiOperation &Op) const {
  return If.Name + "_" + Op.Name + "_server";
}
