//===- presgen/PresGen.h - Presentation generator base ----------*- C++ -*-===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Presentation generation (paper §2.2): mapping an AOI interface onto the
/// constructs of a target language, producing PRES_C.  PresGen is the large
/// shared base library; concrete generators (CORBA C mapping, rpcgen
/// mapping, Fluke mapping) override small policy hooks -- naming, member
/// conventions, parameter passing -- exactly the specialization structure
/// the paper's Table 1 measures.
///
//===----------------------------------------------------------------------===//

#ifndef FLICK_PRESGEN_PRESGEN_H
#define FLICK_PRESGEN_PRESGEN_H

#include "aoi/Aoi.h"
#include "cast/Builder.h"
#include "pres/Pres.h"
#include <map>
#include <memory>
#include <set>
#include <string>

namespace flick {

class DiagnosticEngine;

/// The signature shape of one stub parameter: its declared type and how
/// many pointer dereferences reach the presented value.
struct SigInfo {
  CastType *Type = nullptr;
  unsigned Indirection = 0;
};

/// Computes signature type and indirection for a presented parameter; the
/// back ends use this to address parameter values uniformly.
SigInfo presgenParamSig(CastBuilder &B, const PresNode *P, AoiParamDir Dir,
                        bool Variable);

/// True when the presented C value contains pointers (variable-size in the
/// CORBA C mapping sense).
bool presIsVariable(const PresNode *P);

/// Options common to all presentation generators.
struct PresGenOptions {
  /// Prefix applied to every generated global identifier; lets two
  /// presentations of one interface link into a single binary.
  std::string NamePrefix;
  /// The paper's §2 presentation-flexibility example: pass `in` strings
  /// with an explicit `<name>_len` parameter so stubs never call strlen.
  /// Changes only the programmer's contract; the messages are unchanged.
  bool StringLenParams = false;
};

/// Base presentation generator: owns the AOI -> (MINT, CAST, PRES) type
/// mapping and the per-operation message construction.  Subclasses supply
/// the style-specific naming and signature policy.
class PresGen {
public:
  explicit PresGen(PresGenOptions Opts) : Opts(std::move(Opts)) {}
  virtual ~PresGen();

  /// Maps \p M onto a complete C presentation.  Reports problems to
  /// \p Diags; returns null on error.
  std::unique_ptr<PresC> generate(const AoiModule &M,
                                  DiagnosticEngine &Diags);

protected:
  /// Style tag recorded in the PresC ("corba", "rpcgen", ...).
  virtual std::string styleName() const = 0;

  /// Client stub function name for \p Op of \p If.
  virtual std::string stubName(const AoiInterface &If,
                               const AoiOperation &Op) const = 0;

  /// Server work function name the dispatcher calls.
  virtual std::string serverImplName(const AoiInterface &If,
                                     const AoiOperation &Op) const = 0;

  /// Member names of presented counted sequences (CORBA `_length` /
  /// `_buffer` / `_maximum`; rpcgen `<f>_len` / `<f>_val`).
  virtual std::string seqLenField(const std::string &Hint) const = 0;
  virtual std::string seqBufField(const std::string &Hint) const = 0;
  virtual std::string seqMaxField(const std::string &Hint) const = 0;

  /// Member names of presented unions.
  virtual std::string unionDiscField() const = 0;
  virtual std::string unionUnionField() const = 0;

  /// True when stubs carry a CORBA_Environment parameter and exceptions.
  virtual bool usesEnvironment() const = 0;

  /// Whether server in-parameters may alias the request buffer (the CORBA
  /// C mapping forbids servants keeping references, so Flick may alias;
  /// paper §3.1).
  virtual AllocSemantics serverInAlloc() const;

  const PresGenOptions &options() const { return Opts; }

  /// Applies the global name prefix.
  std::string prefixed(const std::string &Name) const {
    return Opts.NamePrefix + Name;
  }

  //===--------------------------------------------------------------------===//
  // Shared machinery available to subclasses during generate()
  //===--------------------------------------------------------------------===//

  /// One mapped type: the MINT message type, the presented C type, and the
  /// PRES conversion connecting them.
  struct TypeMapping {
    MintType *M = nullptr;
    CastType *CT = nullptr;
    PresNode *P = nullptr;
  };

  /// Maps \p T (memoized; handles self-referential types).
  TypeMapping mapType(AoiType *T);

  /// Returns the C scalar type for an AOI primitive.
  CastType *primCType(AoiPrimKind K);

  PresC *Out = nullptr;          ///< the presentation being built
  CastBuilder *B = nullptr;      ///< builder over Out->Cast
  DiagnosticEngine *Diags = nullptr;

private:
  void generateTypes(const AoiModule &M);
  void generateExceptions(const AoiModule &M);
  void generateInterface(const AoiInterface &If);
  void generateOperation(const AoiInterface &If, const AoiOperation &Op,
                         PresCInterface &PIf);

  TypeMapping mapStruct(AoiStruct *S);
  TypeMapping mapUnion(AoiUnion *U);
  TypeMapping mapEnum(AoiEnum *E);
  TypeMapping mapSequence(AoiSequence *S, const std::string &NameHint);
  TypeMapping mapTypedef(AoiTypedef *TD);

  /// Declares the sequence struct for element mapping \p Elem under
  /// \p Name and returns its mapping; \p MemberHint seeds the style's
  /// member names (rpcgen `<hint>_len`, MIG `<hint>Cnt`).
  TypeMapping makeSeqStruct(const std::string &Name, TypeMapping Elem,
                            uint64_t Bound, const std::string &MemberHint);

  PresGenOptions Opts;
  std::map<const AoiType *, TypeMapping> Memo;
  unsigned AnonSeqCounter = 0;
  /// Name of the field/parameter currently being mapped; anonymous
  /// sequences derive their struct name from it (`<name>seq`).
  std::string NameHint;
  std::set<std::string> UsedSeqNames;
};

/// The CORBA C language mapping (paper's `Mail_send(Mail obj, ...)` form).
class CorbaPresGen : public PresGen {
public:
  explicit CorbaPresGen(PresGenOptions Opts) : PresGen(std::move(Opts)) {}

protected:
  std::string styleName() const override { return "corba"; }
  std::string stubName(const AoiInterface &If,
                       const AoiOperation &Op) const override;
  std::string serverImplName(const AoiInterface &If,
                             const AoiOperation &Op) const override;
  std::string seqLenField(const std::string &) const override {
    return "_length";
  }
  std::string seqBufField(const std::string &) const override {
    return "_buffer";
  }
  std::string seqMaxField(const std::string &) const override {
    return "_maximum";
  }
  std::string unionDiscField() const override { return "_d"; }
  std::string unionUnionField() const override { return "_u"; }
  bool usesEnvironment() const override { return true; }
};

/// The rpcgen-compatible mapping for ONC RPC interfaces
/// (`mail_send_1(argp, clnt)` naming, `x_len`/`x_val` members).
class RpcgenPresGen : public PresGen {
public:
  explicit RpcgenPresGen(PresGenOptions Opts) : PresGen(std::move(Opts)) {}

protected:
  std::string styleName() const override { return "rpcgen"; }
  std::string stubName(const AoiInterface &If,
                       const AoiOperation &Op) const override;
  std::string serverImplName(const AoiInterface &If,
                             const AoiOperation &Op) const override;
  std::string seqLenField(const std::string &Hint) const override {
    return Hint + "_len";
  }
  std::string seqBufField(const std::string &Hint) const override {
    return Hint + "_val";
  }
  std::string seqMaxField(const std::string &) const override {
    return std::string(); // rpcgen sequences have no capacity member
  }
  std::string unionDiscField() const override { return "disc"; }
  std::string unionUnionField() const override { return "u"; }
  bool usesEnvironment() const override { return false; }
};

/// The MIG presentation, conjoined with the MIG front end (paper §2.1):
/// `subsystem_routine` naming, status-returning stubs with no CORBA
/// environment (MIG returns kern_return_t), rpcgen-like member names.
class MigPresGen : public PresGen {
public:
  explicit MigPresGen(PresGenOptions Opts) : PresGen(std::move(Opts)) {}

protected:
  std::string styleName() const override { return "mig"; }
  std::string stubName(const AoiInterface &If,
                       const AoiOperation &Op) const override;
  std::string serverImplName(const AoiInterface &If,
                             const AoiOperation &Op) const override;
  std::string seqLenField(const std::string &Hint) const override {
    return Hint + "Cnt";
  }
  std::string seqBufField(const std::string &Hint) const override {
    return Hint;
  }
  std::string seqMaxField(const std::string &) const override {
    return std::string();
  }
  std::string unionDiscField() const override { return "disc"; }
  std::string unionUnionField() const override { return "u"; }
  bool usesEnvironment() const override { return false; }
};

/// The Fluke kernel-IPC presentation: CORBA-style naming, but scalar
/// parameters are ordered first so they land in the register window of the
/// Fluke IPC path (paper §3.2, "Specialized Transports").
class FlukePresGen : public CorbaPresGen {
public:
  explicit FlukePresGen(PresGenOptions Opts)
      : CorbaPresGen(std::move(Opts)) {}

protected:
  std::string styleName() const override { return "fluke"; }
};

} // namespace flick

#endif // FLICK_PRESGEN_PRESGEN_H
