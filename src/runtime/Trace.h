//===- runtime/Trace.h - Per-RPC distributed tracing ------------*- C++ -*-===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-call span recording for generated stubs and the runtime: one RPC
/// becomes a tree of timed spans (marshal / send / simulated-wire / demux
/// / server-work / unmarshal / reply) written into a caller-supplied,
/// fixed-size ring buffer with monotonic timestamps.  Like flick_metrics,
/// collection is OFF by default -- `flick_trace_active` is null and every
/// hook below costs one predictable pointer test -- so stubs compiled
/// against this header lose nothing when tracing is disabled.
///
/// Trace context crosses the "wire" out of band: LocalLink and
/// ThreadedLink carry the sender's (trace id, span id) beside the message
/// bytes, never inside them, so enabling tracing cannot perturb the wire
/// format.  The recording path never allocates; the exporters (Chrome
/// trace-event JSON and collapsed flamegraph stacks) may.
///
/// The installed tracer pointer is thread-local, so the hot path stays
/// store-only with no shared atomics: a single-threaded run installs one
/// tracer and behaves exactly as before, while the threaded runtime gives
/// every worker its own ring (flick_trace_enable_thread salts the id
/// spaces so ids never collide) and merges them into one exportable ring
/// after the workers quiesce (flick_trace_absorb).
///
//===----------------------------------------------------------------------===//

#ifndef FLICK_RUNTIME_TRACE_H
#define FLICK_RUNTIME_TRACE_H

#include <chrono>
#include <cstdint>
#include <string>

//===----------------------------------------------------------------------===//
// Log-bucketed latency histogram
//===----------------------------------------------------------------------===//

/// Power-of-two microsecond buckets: bucket i counts durations in
/// [2^(i-1), 2^i) us, with bucket 0 taking everything below 1 us.  64
/// buckets cover any double that can plausibly be a latency.
enum { FLICK_HIST_BUCKETS = 64 };

struct flick_latency_hist {
  uint64_t count = 0;
  uint64_t buckets[FLICK_HIST_BUCKETS] = {};
  double sum_us = 0;
  double max_us = 0;
};

/// Records one duration (negative values clamp to 0).
void flick_hist_record(flick_latency_hist *h, double us);

/// Merges \p src into \p dst: counts and buckets add, max takes the max.
/// Percentiles over the merged histogram are exact with respect to the
/// merged buckets, so per-thread histograms lose nothing by being kept
/// separate until dump time.
void flick_hist_merge(flick_latency_hist *dst, const flick_latency_hist *src);

/// Percentile estimate from the bucket upper bounds: the smallest bucket
/// boundary at or above the \p p quantile (0 < p <= 1), clamped to the
/// observed maximum so p99 can never exceed max.  Returns 0 on an empty
/// histogram.
double flick_hist_percentile(const flick_latency_hist *h, double p);

/// Renders {"count": ..., "p50_us": ..., ..., "buckets": [[le_us, n], ...]}.
/// \p indent prefixes each line of the body.
std::string flick_hist_to_json(const flick_latency_hist *h,
                               const char *indent = "  ");

//===----------------------------------------------------------------------===//
// Spans
//===----------------------------------------------------------------------===//

/// What phase of an RPC a span covers.  Kept as plain enum constants so
/// generated (C-flavored) stub code can name them.
enum {
  FLICK_SPAN_RPC = 0,   ///< client root: one whole invocation
  FLICK_SPAN_MARSHAL,   ///< generated encode helper (--trace-hooks)
  FLICK_SPAN_SEND,      ///< channel send of the request
  FLICK_SPAN_WIRE,      ///< simulated wire time (NetworkModel)
  FLICK_SPAN_DEMUX,     ///< server root: receive + dispatch of one request
  FLICK_SPAN_WORK,      ///< server work function (--trace-hooks)
  FLICK_SPAN_UNMARSHAL, ///< generated decode helper (--trace-hooks)
  FLICK_SPAN_REPLY,     ///< channel send of the reply
  FLICK_SPAN_KIND_COUNT
};

/// Printable name of a span kind ("rpc", "marshal", ...).
const char *flick_span_kind_name(int kind);

/// One completed span.  `name` must be a string literal (or otherwise
/// outlive the tracer): the recording path stores the pointer only.
struct flick_span {
  uint64_t trace_id = 0;  ///< groups the spans of one RPC tree
  uint64_t span_id = 0;   ///< unique within the tracer
  uint64_t parent_id = 0; ///< 0 for roots
  const char *name = nullptr;
  double begin_us = 0; ///< monotonic, relative to flick_trace_enable
  double dur_us = 0;
  uint8_t kind = FLICK_SPAN_RPC;
};

/// Deepest span nesting the tracer tracks; begins past this depth are
/// counted in `truncated` and dropped.
enum { FLICK_TRACE_MAX_DEPTH = 32 };

/// Span recorder: completed spans go into the caller-supplied ring
/// `spans[cap]` (oldest overwritten first), open spans live on a fixed
/// stack.  All counters are plain fields so tests and exporters can read
/// them directly.  One tracer records one thread's conversation: the
/// installed pointer is thread-local, so the deterministic LocalLink path
/// keeps its single tracer while threaded runs give each worker its own
/// ring (flick_trace_enable_thread) and absorb the rings into one after
/// joining (flick_trace_absorb).
struct flick_tracer {
  flick_span *spans = nullptr; ///< caller-owned ring storage
  uint32_t cap = 0;
  uint64_t head = 0;    ///< spans recorded ever; ring slot = head % cap
  uint64_t dropped = 0; ///< completed spans that overwrote older ones
  /// Open-span stack (the innermost is open[depth-1]).
  flick_span open[FLICK_TRACE_MAX_DEPTH];
  uint32_t depth = 0;
  uint64_t truncated = 0; ///< begins dropped for exceeding MAX_DEPTH
  uint64_t next_trace_id = 0;
  uint64_t next_span_id = 0;
  /// Remote context deposited by a channel receive, consumed by the next
  /// root begin on this side (out-of-band propagation).
  uint64_t pending_trace_id = 0;
  uint64_t pending_parent_id = 0;
  int pending_valid = 0;
  std::chrono::steady_clock::time_point epoch;
};

/// The calling thread's installed tracer, or null when tracing is
/// disabled on this thread.
extern thread_local flick_tracer *flick_trace_active;

/// Resets \p t, points it at \p storage (capacity \p cap spans), and
/// installs it on the calling thread.  Storage stays caller-owned;
/// recording never allocates.
void flick_trace_enable(flick_tracer *t, flick_span *storage, uint32_t cap);

/// Stops collection on the calling thread (the tracer keeps its recorded
/// spans for export).
void flick_trace_disable();

/// Like flick_trace_enable, but offsets the tracer's trace/span id spaces
/// by a process-unique salt, so ids minted by concurrently recording
/// per-thread tracers stay distinct when the rings are later absorbed
/// into one (flick_trace_absorb).
void flick_trace_enable_thread(flick_tracer *t, flick_span *storage,
                               uint32_t cap);

/// Copies \p src's completed spans into \p dst's ring (oldest first),
/// rebasing timestamps onto \p dst's epoch, and accumulates the
/// dropped/truncated counters.  Call only after the thread that recorded
/// into \p src has quiesced (e.g. after joining a worker).
void flick_trace_absorb(flick_tracer *dst, const flick_tracer *src);

// Out-of-line slow paths (only reached when a tracer is installed).
void flick_trace_begin_impl(int kind, const char *name);
void flick_trace_end_impl();

/// Opens a span, consuming a pending remote context (if any) as the
/// parent: the receive side of out-of-band propagation.
void flick_trace_begin_remote_impl(int kind, const char *name);

/// Ends every span deeper than \p depth (crediting them "now").  The
/// runtime closes its root spans with this so early error returns inside
/// generated helpers cannot leak open spans.
void flick_trace_close_to(uint32_t depth);

/// Records an already-measured span (e.g. simulated wire time) as a
/// completed child of the innermost open span.
void flick_trace_record_complete(int kind, const char *name, double dur_us);

/// Current (trace id, innermost open span id) for stamping outgoing
/// messages; both 0 when no span is open.
void flick_trace_stamp(uint64_t *trace_id, uint64_t *parent_id);

/// Deposits a received message's context for the next remote begin.
/// (0, 0) clears instead.
void flick_trace_deposit(uint64_t trace_id, uint64_t parent_id);

//===----------------------------------------------------------------------===//
// Inline hooks (the only calls on stub hot paths)
//===----------------------------------------------------------------------===//

inline void flick_span_begin(int kind, const char *name) {
  if (flick_trace_active)
    flick_trace_begin_impl(kind, name);
}

inline void flick_span_end(void) {
  if (flick_trace_active)
    flick_trace_end_impl();
}

inline uint32_t flick_trace_depth(void) {
  return flick_trace_active ? flick_trace_active->depth : 0;
}

//===----------------------------------------------------------------------===//
// Reading and exporting
//===----------------------------------------------------------------------===//

/// Completed spans currently held in the ring.
size_t flick_trace_span_count(const flick_tracer *t);

/// The \p i-th held span, oldest first (0 <= i < span_count).
const flick_span *flick_trace_span(const flick_tracer *t, size_t i);

/// Chrome trace-event JSON (chrome://tracing, Perfetto): one B/E event
/// pair per span, tid = trace id so each RPC gets its own track.  Extra
/// top-level keys record drop counters and the build info; Chrome ignores
/// them.  \p extra_events, when non-empty, is a pre-rendered fragment of
/// additional events (e.g. the flight recorder's "ph":"C" counters from
/// flick_sampler_chrome_counters) spliced into the traceEvents array.
std::string
flick_trace_to_chrome_json(const flick_tracer *t,
                           const std::string &extra_events = std::string());

/// Flamegraph-friendly collapsed stacks: "root;child;leaf <self_us>" per
/// line, aggregated over all spans, durations in integer microseconds.
std::string flick_trace_to_collapsed(const flick_tracer *t);

/// Escapes \p s for inclusion in a JSON string literal (quotes,
/// backslashes, control characters).  Shared by every runtime/bench JSON
/// emitter so no exporter writes raw strings.
std::string flick_json_escape(const std::string &s);

#endif // FLICK_RUNTIME_TRACE_H
