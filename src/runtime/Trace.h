//===- runtime/Trace.h - Per-RPC distributed tracing ------------*- C++ -*-===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-call span recording for generated stubs and the runtime: one RPC
/// becomes a tree of timed spans (marshal / send / simulated-wire / demux
/// / server-work / unmarshal / reply) written into a caller-supplied,
/// fixed-size ring buffer with monotonic timestamps.  Like flick_metrics,
/// collection is OFF by default -- `flick_trace_active` is null and every
/// hook below costs one predictable pointer test -- so stubs compiled
/// against this header lose nothing when tracing is disabled.
///
/// Trace context crosses the "wire" out of band: LocalLink and
/// ThreadedLink carry the sender's (trace id, span id) beside the message
/// bytes, never inside them, so enabling tracing cannot perturb the wire
/// format.  The recording path never allocates; the exporters (Chrome
/// trace-event JSON and collapsed flamegraph stacks) may.
///
/// The installed tracer pointer is thread-local, so the hot path stays
/// store-only with no shared atomics: a single-threaded run installs one
/// tracer and behaves exactly as before, while the threaded runtime gives
/// every worker its own ring (flick_trace_enable_thread salts the id
/// spaces so ids never collide) and merges them into one exportable ring
/// after the workers quiesce (flick_trace_absorb).
///
//===----------------------------------------------------------------------===//

#ifndef FLICK_RUNTIME_TRACE_H
#define FLICK_RUNTIME_TRACE_H

#include <chrono>
#include <cstdint>
#include <string>

//===----------------------------------------------------------------------===//
// Log-bucketed latency histogram
//===----------------------------------------------------------------------===//

/// Power-of-two microsecond buckets: bucket i counts durations in
/// [2^(i-1), 2^i) us, with bucket 0 taking everything below 1 us.  64
/// buckets cover any double that can plausibly be a latency.
enum { FLICK_HIST_BUCKETS = 64 };

struct flick_latency_hist {
  uint64_t count = 0;
  uint64_t buckets[FLICK_HIST_BUCKETS] = {};
  double sum_us = 0;
  double max_us = 0;
};

/// Records one duration (negative values clamp to 0).
void flick_hist_record(flick_latency_hist *h, double us);

/// Merges \p src into \p dst: counts and buckets add, max takes the max.
/// Percentiles over the merged histogram are exact with respect to the
/// merged buckets, so per-thread histograms lose nothing by being kept
/// separate until dump time.
void flick_hist_merge(flick_latency_hist *dst, const flick_latency_hist *src);

/// Percentile estimate from the bucket upper bounds: the smallest bucket
/// boundary at or above the \p p quantile (0 < p <= 1), clamped to the
/// observed maximum so p99 can never exceed max.  Returns 0 on an empty
/// histogram.
double flick_hist_percentile(const flick_latency_hist *h, double p);

/// Renders {"count": ..., "p50_us": ..., ..., "buckets": [[le_us, n], ...]}.
/// \p indent prefixes each line of the body.
std::string flick_hist_to_json(const flick_latency_hist *h,
                               const char *indent = "  ");

//===----------------------------------------------------------------------===//
// Spans
//===----------------------------------------------------------------------===//

/// What phase of an RPC a span covers.  Kept as plain enum constants so
/// generated (C-flavored) stub code can name them.  New kinds append
/// before KIND_COUNT so recorded traces keep their numeric meaning.
enum {
  FLICK_SPAN_RPC = 0,   ///< client root: one whole invocation
  FLICK_SPAN_MARSHAL,   ///< generated encode helper (--trace-hooks)
  FLICK_SPAN_SEND,      ///< channel send of the request
  FLICK_SPAN_WIRE,      ///< simulated wire time (NetworkModel)
  FLICK_SPAN_DEMUX,     ///< server root: receive + dispatch of one request
  FLICK_SPAN_WORK,      ///< server work function (--trace-hooks)
  FLICK_SPAN_UNMARSHAL, ///< generated decode helper (--trace-hooks)
  FLICK_SPAN_REPLY,     ///< channel send of the reply
  FLICK_SPAN_QUEUE,     ///< transport queue wait (enqueue -> worker dequeue)
  FLICK_SPAN_KIND_COUNT
};

/// Printable name of a span kind ("rpc", "marshal", ...).
const char *flick_span_kind_name(int kind);

//===----------------------------------------------------------------------===//
// Endpoints
//===----------------------------------------------------------------------===//

/// Bound on distinct endpoint ids.  Endpoint 0 is the implicit default;
/// interning past the bound falls back to it, so attribution degrades to
/// "default" rather than failing.
enum { FLICK_MAX_ENDPOINTS = 8 };

/// Interns \p name into the process-wide endpoint registry and returns
/// its small id (same name, same id).  Returns 0 (the default endpoint)
/// for null/empty names or when the registry is full.  Thread-safe; the
/// cold path takes a mutex, so intern once per client, not per call.
uint32_t flick_endpoint_intern(const char *name);

/// Printable name of an endpoint id ("default" for 0 and out-of-range).
const char *flick_endpoint_name(uint32_t id);

/// Endpoint ids minted so far (including the implicit default).
uint32_t flick_endpoint_count();

/// Test hook: empties the registry and every parsed SLO.  Not
/// thread-safe; call only while nothing records.
void flick_endpoint_reset_for_tests();

/// One endpoint's latency objective, parsed from the environment:
/// FLICK_SLO_<NAME> (endpoint name uppercased, non-alphanumerics as '_')
/// or FLICK_SLO_DEFAULT, with the grammar `p<digits><<number><us|ms|s>`
/// -- e.g. `p99<2ms` reads "99% of calls complete within 2 ms".
struct flick_slo {
  int set = 0;             ///< 0: no objective configured
  double target = 0;       ///< quantile that must meet the bound (0.99)
  double threshold_us = 0; ///< the latency bound
  char objective[24] = {}; ///< the source text, for reports
};

/// The objective for \p id (never null; .set == 0 when unconfigured).
/// Parsed lazily at intern time; flick_slo_reload() re-reads the
/// environment for every registered endpoint (tests use this).
const flick_slo *flick_slo_for(uint32_t id);
void flick_slo_reload();

/// The tightest allowed-violation fraction (1 - target) across all
/// configured objectives, for burn-rate math; 0 when none are set.
double flick_slo_strictest_allowed();

/// One endpoint's latency anatomy: a log2 histogram per span kind,
/// populated allocation-free at span close (flick_trace_end_impl) when a
/// metrics block is active, plus the SLO error-budget counters bumped at
/// RPC-root close.  Lives as a fixed table inside flick_metrics so
/// per-thread blocks merge exactly (flick_metrics_merge).
struct flick_endpoint_stats {
  uint64_t used = 0; ///< any phase recorded (merge fast-path gate)
  uint64_t slo_met = 0;      ///< RPCs within the configured threshold
  uint64_t slo_violated = 0; ///< RPCs over it (error-budget spend)
  flick_latency_hist phase[FLICK_SPAN_KIND_COUNT];
};

/// One completed span.  `name` must be a string literal (or otherwise
/// outlive the tracer): the recording path stores the pointer only.
struct flick_span {
  uint64_t trace_id = 0;  ///< groups the spans of one RPC tree
  uint64_t span_id = 0;   ///< unique within the tracer
  uint64_t parent_id = 0; ///< 0 for roots
  const char *name = nullptr;
  double begin_us = 0; ///< monotonic, relative to flick_trace_enable
  double dur_us = 0;
  uint8_t kind = FLICK_SPAN_RPC;
  uint8_t endpoint = 0; ///< interned endpoint id (inherited from parent)
};

/// Deepest span nesting the tracer tracks; begins past this depth are
/// counted in `truncated` and dropped.
enum { FLICK_TRACE_MAX_DEPTH = 32 };

//===----------------------------------------------------------------------===//
// Tail exemplars
//===----------------------------------------------------------------------===//

/// Reservoir bounds: the slowest FLICK_EXEMPLAR_SLOTS RPCs per endpoint
/// are retained, each with up to FLICK_EXEMPLAR_SPANS spans of its tree.
enum { FLICK_EXEMPLAR_SLOTS = 4, FLICK_EXEMPLAR_SPANS = 16 };

/// One retained slow RPC: the root's duration (the selection key) plus a
/// bounded copy of its span tree, taken at root close -- before the span
/// ring can overwrite it.  The copy holds the spans recorded on the
/// capturing thread (client side: rpc/send/wire; the deterministic
/// LocalLink pump captures the server's spans too since they share the
/// tracer).  Cross-thread segments with the same trace_id can be joined
/// from the merged ring at export when they are still held.
struct flick_exemplar {
  double dur_us = 0;
  uint64_t trace_id = 0;
  uint32_t endpoint = 0;
  uint32_t n_spans = 0; ///< 0: slot empty
  flick_span spans[FLICK_EXEMPLAR_SPANS];
};

/// The per-tracer reservoir: slowest-N slots per endpoint.  Merged across
/// tracers by flick_trace_absorb (the slots compete on dur_us), so pool
/// workers and bench driver threads contribute like the span rings do.
struct flick_exemplar_set {
  flick_exemplar slots[FLICK_MAX_ENDPOINTS][FLICK_EXEMPLAR_SLOTS];
};

/// Span recorder: completed spans go into the caller-supplied ring
/// `spans[cap]` (oldest overwritten first), open spans live on a fixed
/// stack.  All counters are plain fields so tests and exporters can read
/// them directly.  One tracer records one thread's conversation: the
/// installed pointer is thread-local, so the deterministic LocalLink path
/// keeps its single tracer while threaded runs give each worker its own
/// ring (flick_trace_enable_thread) and absorb the rings into one after
/// joining (flick_trace_absorb).
struct flick_tracer {
  flick_span *spans = nullptr; ///< caller-owned ring storage
  uint32_t cap = 0;
  uint64_t head = 0;    ///< spans recorded ever; ring slot = head % cap
  uint64_t dropped = 0; ///< completed spans that overwrote older ones
  /// Open-span stack (the innermost is open[depth-1]).
  flick_span open[FLICK_TRACE_MAX_DEPTH];
  uint32_t depth = 0;
  uint64_t truncated = 0; ///< begins dropped for exceeding MAX_DEPTH
  uint64_t next_trace_id = 0;
  uint64_t next_span_id = 0;
  /// Remote context deposited by a channel receive, consumed by the next
  /// root begin on this side (out-of-band propagation).
  uint64_t pending_trace_id = 0;
  uint64_t pending_parent_id = 0;
  uint32_t pending_endpoint = 0;
  int pending_valid = 0;
  /// Transport queue wait deposited at dequeue, recorded as a completed
  /// QUEUE span by the next remote root begin.
  double pending_wait_us = 0;
  /// Slowest-RPC reservoir (see flick_exemplar); written at RPC-root
  /// close, merged by flick_trace_absorb.
  flick_exemplar_set exemplars;
  std::chrono::steady_clock::time_point epoch;
};

/// The calling thread's installed tracer, or null when tracing is
/// disabled on this thread.
extern thread_local flick_tracer *flick_trace_active;

/// Resets \p t, points it at \p storage (capacity \p cap spans), and
/// installs it on the calling thread.  Storage stays caller-owned;
/// recording never allocates.
void flick_trace_enable(flick_tracer *t, flick_span *storage, uint32_t cap);

/// Stops collection on the calling thread (the tracer keeps its recorded
/// spans for export).
void flick_trace_disable();

/// Like flick_trace_enable, but offsets the tracer's trace/span id spaces
/// by a process-unique salt, so ids minted by concurrently recording
/// per-thread tracers stay distinct when the rings are later absorbed
/// into one (flick_trace_absorb).
void flick_trace_enable_thread(flick_tracer *t, flick_span *storage,
                               uint32_t cap);

/// Copies \p src's completed spans into \p dst's ring (oldest first),
/// rebasing timestamps onto \p dst's epoch, and accumulates the
/// dropped/truncated counters.  Call only after the thread that recorded
/// into \p src has quiesced (e.g. after joining a worker).
void flick_trace_absorb(flick_tracer *dst, const flick_tracer *src);

// Out-of-line slow paths (only reached when a tracer is installed).
void flick_trace_begin_impl(int kind, const char *name);
void flick_trace_end_impl();

/// Opens a span, consuming a pending remote context (if any) as the
/// parent: the receive side of out-of-band propagation.
void flick_trace_begin_remote_impl(int kind, const char *name);

/// Ends every span deeper than \p depth (crediting them "now").  The
/// runtime closes its root spans with this so early error returns inside
/// generated helpers cannot leak open spans.
void flick_trace_close_to(uint32_t depth);

/// Records an already-measured span (e.g. simulated wire time) as a
/// completed child of the innermost open span.
void flick_trace_record_complete(int kind, const char *name, double dur_us);

/// Tags the innermost open span with \p endpoint; spans opened under it
/// inherit the tag, and every close attributes its duration to that
/// endpoint's per-phase histograms in the active metrics block.  The
/// runtime calls this on the RPC root from flick_client.endpoint.
void flick_trace_tag_endpoint(uint32_t endpoint);

/// Current (trace id, innermost open span id, endpoint) for stamping
/// outgoing messages; zeros when no span is open.  \p endpoint may be
/// null when the caller has nowhere to carry it.
void flick_trace_stamp(uint64_t *trace_id, uint64_t *parent_id,
                       uint32_t *endpoint = nullptr);

/// Deposits a received message's context for the next remote begin.
/// (0, 0) clears instead.
void flick_trace_deposit(uint64_t trace_id, uint64_t parent_id,
                         uint32_t endpoint = 0);

/// Deposits a measured transport queue wait (enqueue to dequeue, in
/// nanoseconds) for the next remote root begin, which records it as a
/// completed QUEUE child ending where the root begins.  Transports call
/// this at dequeue so all of them attribute queue time identically.
void flick_trace_deposit_wait(uint64_t wait_ns);

//===----------------------------------------------------------------------===//
// Inline hooks (the only calls on stub hot paths)
//===----------------------------------------------------------------------===//

inline void flick_span_begin(int kind, const char *name) {
  if (flick_trace_active)
    flick_trace_begin_impl(kind, name);
}

inline void flick_span_end(void) {
  if (flick_trace_active)
    flick_trace_end_impl();
}

inline uint32_t flick_trace_depth(void) {
  return flick_trace_active ? flick_trace_active->depth : 0;
}

//===----------------------------------------------------------------------===//
// Reading and exporting
//===----------------------------------------------------------------------===//

/// Completed spans currently held in the ring.
size_t flick_trace_span_count(const flick_tracer *t);

/// The \p i-th held span, oldest first (0 <= i < span_count).
const flick_span *flick_trace_span(const flick_tracer *t, size_t i);

/// Chrome trace-event JSON (chrome://tracing, Perfetto): one B/E event
/// pair per span, tid = trace id so each RPC gets its own track.  Extra
/// top-level keys record drop counters and the build info; Chrome ignores
/// them.  \p extra_events, when non-empty, is a pre-rendered fragment of
/// additional events (e.g. the flight recorder's "ph":"C" counters from
/// flick_sampler_chrome_counters) spliced into the traceEvents array.
std::string
flick_trace_to_chrome_json(const flick_tracer *t,
                           const std::string &extra_events = std::string());

/// Flamegraph-friendly collapsed stacks: "root;child;leaf <self_us>" per
/// line, aggregated over all spans, durations in integer microseconds.
std::string flick_trace_to_collapsed(const flick_tracer *t);

/// Post-mortem JSON of \p t's exemplar reservoir: per endpoint, the
/// retained slowest RPCs (slowest first), each with its span tree
/// rendered with human-readable kind names.  Spans still in the ring
/// that share a retained trace_id (e.g. server-side segments absorbed
/// from worker tracers) are joined into the tree.
std::string flick_exemplars_to_json(const flick_tracer *t,
                                    const char *indent = "  ");

/// The exemplar reservoir as a standalone Chrome trace-event document:
/// one track per retained RPC, so the slowest calls open directly in
/// chrome://tracing even after the main ring overwrote them.
std::string flick_exemplars_to_chrome_json(const flick_tracer *t);

/// Escapes \p s for inclusion in a JSON string literal (quotes,
/// backslashes, control characters).  Shared by every runtime/bench JSON
/// emitter so no exporter writes raw strings.
std::string flick_json_escape(const std::string &s);

#endif // FLICK_RUNTIME_TRACE_H
