//===- runtime/transport/ThreadedLink.cpp - Mutex MPSC transport ----------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "runtime/transport/ThreadedLink.h"
#include "runtime/Sampler.h"
#include "runtime/flick_runtime.h"
#include <chrono>
#include <thread>

using namespace flick;

ThreadedLink::ThreadedLink(size_t QueueCap)
    : QueueCap(QueueCap ? QueueCap : 1) {}

ThreadedLink::~ThreadedLink() {
  shutdown();
  // Requests still queued were never handed to any endpoint; per-connection
  // reply queues are freed by the Conn destructors (owned by Conns below).
  for (Req &R : ReqQ)
    std::free(R.M.Data);
}

void ThreadedLink::setModel(NetworkModel Model) {
  this->Model = std::move(Model);
  Modeled = true;
}

Channel &ThreadedLink::connect() {
  std::lock_guard<std::mutex> L(EndsMu);
  Conns.push_back(std::unique_ptr<Conn>(new Conn(*this)));
  return *Conns.back();
}

Channel &ThreadedLink::workerEnd() {
  std::lock_guard<std::mutex> L(EndsMu);
  Workers.push_back(std::unique_ptr<WorkerChan>(new WorkerChan(*this)));
  return *Workers.back();
}

void ThreadedLink::shutdown() {
  {
    std::lock_guard<std::mutex> L(QMu);
    if (Down.exchange(true, std::memory_order_relaxed))
      return;
  }
  QNotEmpty.notify_all();
  QNotFull.notify_all();
  // Wake every connection blocked on a reply.  Taking (and dropping) each
  // RMu before notifying closes the window where a waiter has checked the
  // predicate but not yet parked: it either sees Down under its lock or is
  // already waiting when the notify lands.
  std::lock_guard<std::mutex> E(EndsMu);
  for (auto &C : Conns) {
    { std::lock_guard<std::mutex> L(C->RMu); }
    C->RCv.notify_all();
  }
}

size_t ThreadedLink::pendingRequests() const {
  std::lock_guard<std::mutex> L(QMu);
  return ReqQ.size();
}

void ThreadedLink::wireDelay(size_t Len) {
  if (!Modeled)
    return;
  double Us = Model.wireTimeUs(Len);
  if (flick_metrics_active)
    flick_metrics_active->wire_time_us += Us;
  if (flick_trace_active)
    flick_trace_record_complete(FLICK_SPAN_WIRE, "wire", Us);
  // Realized as real blocking time on the sending thread (no lock held),
  // so worker-pool concurrency genuinely overlaps it -- see Transport.h.
  std::this_thread::sleep_for(std::chrono::duration<double, std::micro>(Us));
}

int ThreadedLink::pushRequest(Conn *From, Msg M) {
  // The QMu acquisition is the known ~400K RPC/s ceiling: time it under
  // the flight recorder so the saturation is a measured curve, not an
  // inference from throughput flattening.
  uint64_t LockT0 = flick_gauge_lock_begin();
  std::unique_lock<std::mutex> L(QMu);
  flick_gauge_lock_end(LockT0);
  if (ReqQ.size() >= QueueCap) {
    // Count the backpressure event once (the send did meet a full queue,
    // whatever happens next), then wait for a worker to drain or for
    // shutdown.
    flick_metric_add(&flick_metrics::queue_full, 1);
    flick_gauge_add(&flick_gauges::queue_full_waits, 1);
    QNotFull.wait(L, [&] {
      return ReqQ.size() < QueueCap || Down.load(std::memory_order_relaxed);
    });
  }
  if (Down.load(std::memory_order_relaxed)) {
    L.unlock();
    From->Pool.release(M.Data, M.Cap);
    return FLICK_ERR_TRANSPORT;
  }
  if (flick_gauges_on()) {
    M.EnqNs = flick_gauge_now_ns();
    flick_gauges_global.queue_enqueues.fetch_add(1, std::memory_order_relaxed);
    flick_gauges_global.queue_depth.fetch_add(1, std::memory_order_relaxed);
  } else if (M.TraceId) {
    // A traced request still wants its queue wait attributed (the QUEUE
    // span) even with the flight recorder off.
    M.EnqNs = flick_gauge_now_ns();
  }
  ReqQ.push_back(Req{From, M});
  L.unlock();
  QNotEmpty.notify_one();
  return FLICK_OK;
}

int ThreadedLink::popRequest(Conn **From, Msg *M) {
  uint64_t LockT0 = flick_gauge_lock_begin();
  std::unique_lock<std::mutex> L(QMu);
  flick_gauge_lock_end(LockT0);
  QNotEmpty.wait(
      L, [&] { return !ReqQ.empty() || Down.load(std::memory_order_relaxed); });
  // Drain-then-stop: requests accepted before shutdown are still handed
  // out; the queue only fails once it is empty after shutdown.
  if (ReqQ.empty())
    return FLICK_ERR_TRANSPORT;
  Req R = ReqQ.front();
  ReqQ.pop_front();
  L.unlock();
  QNotFull.notify_one();
  if (flick_gauges_on()) {
    flick_gauge_sub(&flick_gauges::queue_depth, 1);
    flick_gauges_global.queue_dequeues.fetch_add(1, std::memory_order_relaxed);
    if (R.M.EnqNs) {
      uint64_t Now = flick_gauge_now_ns();
      flick_gauges_global.queue_wait_ns.fetch_add(
          Now > R.M.EnqNs ? Now - R.M.EnqNs : 0, std::memory_order_relaxed);
    }
  }
  if (R.M.EnqNs && flick_trace_active) {
    uint64_t Now = flick_gauge_now_ns();
    flick_trace_deposit_wait(Now > R.M.EnqNs ? Now - R.M.EnqNs : 0);
  }
  *From = R.From;
  *M = R.M;
  return FLICK_OK;
}

ThreadedLink::Conn::~Conn() {
  for (Msg &M : RepQ)
    std::free(M.Data);
}

int ThreadedLink::Conn::awaitReply(Msg *M) {
  std::unique_lock<std::mutex> L(RMu);
  RCv.wait(L, [&] {
    return !RepQ.empty() || Link.Down.load(std::memory_order_relaxed);
  });
  if (RepQ.empty())
    return FLICK_ERR_TRANSPORT;
  *M = RepQ.front();
  RepQ.pop_front();
  return FLICK_OK;
}

int ThreadedLink::Conn::send(const uint8_t *Data, size_t Len) {
  Msg M;
  M.Data = Pool.acquire(Len, &M.Cap);
  if (!M.Data) {
    flick_metric_add(&flick_metrics::alloc_errors, 1);
    return FLICK_ERR_TRANSPORT;
  }
  std::memcpy(M.Data, Data, Len);
  M.Len = Len;
  if (flick_metrics_active) {
    flick_metrics_active->bytes_copied += Len;
    ++flick_metrics_active->copy_ops;
  }
  if (flick_trace_active)
    flick_trace_stamp(&M.TraceId, &M.ParentSpan, &M.Endpoint);
  M.Corr = CorrOut;
  Link.wireDelay(Len);
  return Link.pushRequest(this, M);
}

int ThreadedLink::Conn::sendv(const flick_iov *Segs, size_t Count) {
  size_t Total = 0;
  for (size_t i = 0; i != Count; ++i)
    Total += Segs[i].len;
  Msg M;
  M.Data = Pool.acquire(Total, &M.Cap);
  if (!M.Data) {
    flick_metric_add(&flick_metrics::alloc_errors, 1);
    return FLICK_ERR_TRANSPORT;
  }
  size_t Off = 0;
  for (size_t i = 0; i != Count; ++i) {
    std::memcpy(M.Data + Off, Segs[i].base, Segs[i].len);
    Off += Segs[i].len;
  }
  M.Len = Total;
  if (flick_metrics_active) {
    flick_metrics_active->bytes_copied += Total;
    ++flick_metrics_active->copy_ops;
  }
  if (flick_trace_active)
    flick_trace_stamp(&M.TraceId, &M.ParentSpan, &M.Endpoint);
  M.Corr = CorrOut;
  Link.wireDelay(Total);
  return Link.pushRequest(this, M);
}

int ThreadedLink::Conn::recv(std::vector<uint8_t> &Out) {
  Msg M;
  if (int Err = awaitReply(&M))
    return Err;
  CorrIn = M.Corr;
  if (flick_trace_active)
    flick_trace_deposit(M.TraceId, M.ParentSpan, M.Endpoint);
  Out.assign(M.Data, M.Data + M.Len);
  if (flick_metrics_active) {
    flick_metrics_active->bytes_copied += M.Len;
    ++flick_metrics_active->copy_ops;
  }
  Pool.release(M.Data, M.Cap);
  return FLICK_OK;
}

int ThreadedLink::Conn::recvInto(flick_buf *Into) {
  Msg M;
  if (int Err = awaitReply(&M))
    return Err;
  CorrIn = M.Corr;
  if (flick_trace_active)
    flick_trace_deposit(M.TraceId, M.ParentSpan, M.Endpoint);
  // Adopt the wire allocation whole, as in LocalLink; the buffer migrates
  // from the worker's pool to this connection's (both plain malloc).
  flick_buf_reset(Into);
  Pool.release(Into->data, Into->cap);
  Into->data = M.Data;
  Into->cap = M.Cap;
  Into->len = M.Len;
  Into->pos = 0;
  return FLICK_OK;
}

void ThreadedLink::Conn::release(flick_buf *Buf) {
  Pool.release(Buf->data, Buf->cap);
  Buf->data = nullptr;
  Buf->cap = 0;
  Buf->len = 0;
  Buf->pos = 0;
}

int ThreadedLink::WorkerChan::sendReply(Msg M) {
  Conn *To = CurConn;
  if (!To) {
    Pool.release(M.Data, M.Cap);
    return FLICK_ERR_TRANSPORT;
  }
  Link.wireDelay(M.Len);
  {
    std::lock_guard<std::mutex> L(To->RMu);
    To->RepQ.push_back(M);
  }
  To->RCv.notify_one();
  return FLICK_OK;
}

int ThreadedLink::WorkerChan::send(const uint8_t *Data, size_t Len) {
  Msg M;
  M.Data = Pool.acquire(Len, &M.Cap);
  if (!M.Data) {
    flick_metric_add(&flick_metrics::alloc_errors, 1);
    return FLICK_ERR_TRANSPORT;
  }
  std::memcpy(M.Data, Data, Len);
  M.Len = Len;
  if (flick_metrics_active) {
    flick_metrics_active->bytes_copied += Len;
    ++flick_metrics_active->copy_ops;
  }
  if (flick_trace_active)
    flick_trace_stamp(&M.TraceId, &M.ParentSpan, &M.Endpoint);
  M.Corr = CorrOut;
  return sendReply(M);
}

int ThreadedLink::WorkerChan::sendv(const flick_iov *Segs, size_t Count) {
  size_t Total = 0;
  for (size_t i = 0; i != Count; ++i)
    Total += Segs[i].len;
  Msg M;
  M.Data = Pool.acquire(Total, &M.Cap);
  if (!M.Data) {
    flick_metric_add(&flick_metrics::alloc_errors, 1);
    return FLICK_ERR_TRANSPORT;
  }
  size_t Off = 0;
  for (size_t i = 0; i != Count; ++i) {
    std::memcpy(M.Data + Off, Segs[i].base, Segs[i].len);
    Off += Segs[i].len;
  }
  M.Len = Total;
  if (flick_metrics_active) {
    flick_metrics_active->bytes_copied += Total;
    ++flick_metrics_active->copy_ops;
  }
  if (flick_trace_active)
    flick_trace_stamp(&M.TraceId, &M.ParentSpan, &M.Endpoint);
  M.Corr = CorrOut;
  return sendReply(M);
}

int ThreadedLink::WorkerChan::recv(std::vector<uint8_t> &Out) {
  Conn *From = nullptr;
  Msg M;
  if (int Err = Link.popRequest(&From, &M))
    return Err;
  CurConn = From;
  // Auto-echo: the reply this worker sends next carries the request's
  // correlation id, so servers stay untouched by pipelining.
  CorrIn = M.Corr;
  CorrOut = M.Corr;
  if (flick_trace_active)
    flick_trace_deposit(M.TraceId, M.ParentSpan, M.Endpoint);
  Out.assign(M.Data, M.Data + M.Len);
  if (flick_metrics_active) {
    flick_metrics_active->bytes_copied += M.Len;
    ++flick_metrics_active->copy_ops;
  }
  Pool.release(M.Data, M.Cap);
  return FLICK_OK;
}

int ThreadedLink::WorkerChan::recvInto(flick_buf *Into) {
  Conn *From = nullptr;
  Msg M;
  if (int Err = Link.popRequest(&From, &M))
    return Err;
  CurConn = From;
  CorrIn = M.Corr;
  CorrOut = M.Corr;
  if (flick_trace_active)
    flick_trace_deposit(M.TraceId, M.ParentSpan, M.Endpoint);
  flick_buf_reset(Into);
  Pool.release(Into->data, Into->cap);
  Into->data = M.Data;
  Into->cap = M.Cap;
  Into->len = M.Len;
  Into->pos = 0;
  return FLICK_OK;
}

void ThreadedLink::WorkerChan::release(flick_buf *Buf) {
  Pool.release(Buf->data, Buf->cap);
  Buf->data = nullptr;
  Buf->cap = 0;
  Buf->len = 0;
  Buf->pos = 0;
}
