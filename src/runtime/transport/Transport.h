//===- runtime/transport/Transport.h - Transport seam -----------*- C++ -*-===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pluggable transport seam for the concurrent runtime: a Transport
/// manufactures Channel endpoints (client connections and worker-side
/// channels) over some message-moving substrate and owns their shared
/// lifecycle.  Three implementations live beside this header:
///
///  - ThreadedLink:  the original mutex/condvar bounded MPSC queue
///                   (kept as the contention-study baseline).
///  - ShardedLink:   per-worker bounded lock-free rings with work
///                   stealing; no queue mutex on the hot path.
///  - SocketLink:    Unix-domain socketpairs behind a shared epoll loop;
///                   sendv lowers to sendmsg scatter-gather and recvInto
///                   reads into pooled wire buffers.
///
/// Shared semantics every implementation must honor (and that the
/// TransportConformance suite checks):
///
///  - connect() returns a channel used by one client thread at a time;
///    workerEnd() returns a channel used by one worker thread at a time.
///    Endpoints live until the transport is destroyed.
///  - A worker recv takes the next request from any connection and binds
///    that worker's subsequent send to the requesting connection (reply
///    routing).
///  - Backpressure: a send that meets a full queue/socket counts one
///    `queue_full` metric event, then blocks until space frees or
///    shutdown.
///  - Shutdown is drain-then-stop: shutdown() wakes every waiter; workers
///    still drain requests accepted before shutdown, then their recv
///    fails with FLICK_ERR_TRANSPORT.  Blocked senders and reply-waiters
///    fail immediately.  shutdown() is idempotent and must be called
///    before the destructor while other threads may still touch the
///    transport; join them before destroying.
///  - setModel() attaches a wire-time model realized as *real* blocking
///    time on the sender, so worker pools genuinely overlap it.
///
/// LocalLink (the deterministic single-threaded pump link) is NOT a
/// Transport: it has no worker side and its recv runs the registered
/// server inline.  It lives in transport/LocalLink.h.
///
//===----------------------------------------------------------------------===//

#ifndef FLICK_RUNTIME_TRANSPORT_TRANSPORT_H
#define FLICK_RUNTIME_TRANSPORT_TRANSPORT_H

#include "runtime/Channel.h"
#include "runtime/NetworkModel.h"
#include <cstddef>
#include <memory>

namespace flick {

/// Abstract factory + lifecycle for concurrent channel pairs.  See the
/// file comment for the semantics implementations must honor.
class Transport {
public:
  virtual ~Transport();

  /// Creates a new client connection; one thread at a time may use it.
  virtual Channel &connect() = 0;

  /// Creates a new worker-side channel; one per worker thread.
  virtual Channel &workerEnd() = 0;

  /// Wakes every blocked sender/receiver and begins drain-then-stop.
  /// Idempotent.
  virtual void shutdown() = 0;

  /// Requests accepted and not yet picked up by a worker.  Queue
  /// transports count messages; SocketLink reports buffered wire bytes
  /// (tests only rely on zero / nonzero there).
  virtual size_t pendingRequests() const = 0;

  /// Attaches a wire-time model; senders sleep the modeled transit.
  virtual void setModel(NetworkModel Model) = 0;
};

/// Creates a transport by name: "threaded" (mutex MPSC queue), "sharded"
/// (lock-free rings + work stealing), or "socket" (Unix sockets + epoll).
/// \p QueueCap bounds the request backlog: queued messages for the queue
/// transports (per shard for "sharded"), and roughly QueueCap KiB of
/// socket send buffer for "socket".  A null name means "sharded" (the
/// default transport); an unknown name returns null.
std::unique_ptr<Transport> makeTransport(const char *Name,
                                         size_t QueueCap = 256);

} // namespace flick

#endif // FLICK_RUNTIME_TRANSPORT_TRANSPORT_H
