//===- runtime/transport/LocalLink.cpp - In-process pump link -------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "runtime/transport/LocalLink.h"
#include "runtime/flick_runtime.h"

using namespace flick;

LocalLink::LocalLink() : AEnd(*this, true), BEnd(*this, false) {}

LocalLink::~LocalLink() {
  for (std::deque<Msg> *Q : {&ToA, &ToB})
    for (Msg &M : *Q)
      std::free(M.Data);
}

void LocalLink::setModel(NetworkModel Model, SimClock *Clock) {
  this->Model = std::move(Model);
  this->Clock = Clock;
}

void LocalLink::account(size_t Len) {
  if (!Clock)
    return;
  double Us = Model.wireTimeUs(Len);
  Clock->advance(Us);
  if (flick_metrics_active)
    flick_metrics_active->wire_time_us += Us;
  // The modeled transit time is already known, so it is recorded as a
  // completed child span of whatever send is in flight.
  if (flick_trace_active)
    flick_trace_record_complete(FLICK_SPAN_WIRE, "wire", Us);
}

int LocalLink::End::send(const uint8_t *Data, size_t Len) {
  Msg M;
  M.Data = Link.Pool.acquire(Len, &M.Cap);
  if (!M.Data) {
    flick_metric_add(&flick_metrics::alloc_errors, 1);
    return FLICK_ERR_TRANSPORT;
  }
  std::memcpy(M.Data, Data, Len);
  M.Len = Len;
  if (flick_metrics_active) {
    flick_metrics_active->bytes_copied += Len;
    ++flick_metrics_active->copy_ops;
  }
  if (flick_trace_active)
    flick_trace_stamp(&M.TraceId, &M.ParentSpan, &M.Endpoint);
  M.Corr = CorrOut;
  Link.account(Len);
  (IsClient ? Link.ToB : Link.ToA).push_back(M);
  return FLICK_OK;
}

int LocalLink::End::sendv(const flick_iov *Segs, size_t Count) {
  size_t Total = 0;
  for (size_t i = 0; i != Count; ++i)
    Total += Segs[i].len;
  Msg M;
  M.Data = Link.Pool.acquire(Total, &M.Cap);
  if (!M.Data) {
    flick_metric_add(&flick_metrics::alloc_errors, 1);
    return FLICK_ERR_TRANSPORT;
  }
  size_t Off = 0;
  for (size_t i = 0; i != Count; ++i) {
    std::memcpy(M.Data + Off, Segs[i].base, Segs[i].len);
    Off += Segs[i].len;
  }
  M.Len = Total;
  if (flick_metrics_active) {
    flick_metrics_active->bytes_copied += Total;
    ++flick_metrics_active->copy_ops;
  }
  if (flick_trace_active)
    flick_trace_stamp(&M.TraceId, &M.ParentSpan, &M.Endpoint);
  M.Corr = CorrOut;
  Link.account(Total);
  (IsClient ? Link.ToB : Link.ToA).push_back(M);
  return FLICK_OK;
}

int LocalLink::End::recv(std::vector<uint8_t> &Out) {
  auto &Queue = IsClient ? Link.ToA : Link.ToB;
  // The client side synchronously pumps the server until a reply shows up;
  // the server side simply fails when no request is pending.
  while (Queue.empty()) {
    if (!IsClient || !Link.Pump || !Link.Pump())
      return FLICK_ERR_TRANSPORT;
  }
  Msg M = Queue.front();
  Queue.pop_front();
  CorrIn = M.Corr;
  if (!IsClient)
    CorrOut = M.Corr; // echo the request's id onto the reply
  if (flick_trace_active)
    flick_trace_deposit(M.TraceId, M.ParentSpan, M.Endpoint);
  Out.assign(M.Data, M.Data + M.Len);
  if (flick_metrics_active) {
    flick_metrics_active->bytes_copied += M.Len;
    ++flick_metrics_active->copy_ops;
  }
  Link.Pool.release(M.Data, M.Cap);
  return FLICK_OK;
}

int LocalLink::End::recvInto(flick_buf *Into) {
  auto &Queue = IsClient ? Link.ToA : Link.ToB;
  while (Queue.empty()) {
    if (!IsClient || !Link.Pump || !Link.Pump())
      return FLICK_ERR_TRANSPORT;
  }
  Msg M = Queue.front();
  Queue.pop_front();
  CorrIn = M.Corr;
  if (!IsClient)
    CorrOut = M.Corr; // echo the request's id onto the reply
  if (flick_trace_active)
    flick_trace_deposit(M.TraceId, M.ParentSpan, M.Endpoint);
  // Hand the pooled wire buffer to the caller whole and park the caller's
  // old allocation for the next send: the receive itself copies nothing.
  // Legal because flick_buf manages data with realloc/free and the pool
  // allocates with malloc.
  flick_buf_reset(Into);
  Link.Pool.release(Into->data, Into->cap);
  Into->data = M.Data;
  Into->cap = M.Cap;
  Into->len = M.Len;
  Into->pos = 0;
  return FLICK_OK;
}

void LocalLink::End::release(flick_buf *Buf) {
  // Reclaim the adopted wire storage the moment its reader is done with
  // it: the next send then refills this same (cache-hot) allocation.
  // Without the early release two buffers alternate -- one adopted, one
  // filling -- doubling the transport's cache footprint per direction.
  Link.Pool.release(Buf->data, Buf->cap);
  Buf->data = nullptr;
  Buf->cap = 0;
  Buf->len = 0;
  Buf->pos = 0;
}
