//===- runtime/transport/ShardedLink.cpp - Lock-free rings ----------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "runtime/transport/ShardedLink.h"
#include "runtime/Sampler.h"
#include "runtime/flick_runtime.h"
#include <chrono>
#include <thread>

using namespace flick;

// Shards beyond the worker count just add steal sweeps, so the default
// stays small; fig8 tops out at 4 workers.
static const size_t DefaultShards = 4;

//===----------------------------------------------------------------------===//
// Ring
//===----------------------------------------------------------------------===//

void ShardedLink::Ring::init(size_t Cap) {
  // Minimum 2: with one cell, "pushed, awaiting pop" (Seq = T+1) and
  // "popped, free for the next lap" (Seq = T+Cap = T+1) are the same
  // state, so a 1-cell ring could never report full.
  size_t C = 2;
  while (C < Cap)
    C <<= 1;
  Cells.reset(new Cell[C]);
  for (size_t I = 0; I != C; ++I)
    Cells[I].Seq.store(I, std::memory_order_relaxed);
  Mask = C - 1;
}

bool ShardedLink::Ring::push(Conn *From, const Msg &M) {
  uint64_t Ticket = Head.load(std::memory_order_relaxed);
  for (;;) {
    Cell &C = Cells[Ticket & Mask];
    uint64_t Seq = C.Seq.load(std::memory_order_acquire);
    if (Seq == Ticket) {
      // Cell is free for this ticket; claim it.
      if (Head.compare_exchange_weak(Ticket, Ticket + 1,
                                     std::memory_order_relaxed))
        break;
      // Lost the claim race; Ticket was reloaded by the CAS.
    } else if (Seq < Ticket) {
      // The consumer of (Ticket - Cap) has not freed this cell: full.
      return false;
    } else {
      // Another producer advanced Head past us; chase it.
      Ticket = Head.load(std::memory_order_relaxed);
    }
  }
  Cell &C = Cells[Ticket & Mask];
  C.From = From;
  C.M = M;
  // Publish: pop's acquire load of Seq sees the payload stores above.
  C.Seq.store(Ticket + 1, std::memory_order_release);
  return true;
}

bool ShardedLink::Ring::pop(Conn **From, Msg *M) {
  uint64_t Ticket = Tail.load(std::memory_order_relaxed);
  for (;;) {
    Cell &C = Cells[Ticket & Mask];
    uint64_t Seq = C.Seq.load(std::memory_order_acquire);
    if (Seq == Ticket + 1) {
      if (Tail.compare_exchange_weak(Ticket, Ticket + 1,
                                     std::memory_order_relaxed))
        break;
    } else if (Seq < Ticket + 1) {
      // The producer for this ticket has not published yet: empty.
      return false;
    } else {
      Ticket = Tail.load(std::memory_order_relaxed);
    }
  }
  Cell &C = Cells[Ticket & Mask];
  *From = C.From;
  *M = C.M;
  // Free the cell for the producer one lap ahead.
  C.Seq.store(Ticket + Mask + 1, std::memory_order_release);
  return true;
}

size_t ShardedLink::Ring::size() const {
  uint64_t H = Head.load(std::memory_order_relaxed);
  uint64_t T = Tail.load(std::memory_order_relaxed);
  return H > T ? H - T : 0;
}

//===----------------------------------------------------------------------===//
// Link lifecycle
//===----------------------------------------------------------------------===//

ShardedLink::ShardedLink(size_t ShardCap, size_t Shards)
    : NShards(Shards ? Shards : DefaultShards) {
  Rings.reset(new Ring[NShards]);
  for (size_t I = 0; I != NShards; ++I)
    Rings[I].init(ShardCap ? ShardCap : 1);
}

ShardedLink::~ShardedLink() {
  shutdown();
  // Requests never handed to a worker: reclaim their wire bytes.
  Conn *From;
  Msg M;
  for (size_t I = 0; I != NShards; ++I)
    while (Rings[I].pop(&From, &M))
      std::free(M.Data);
}

void ShardedLink::setModel(NetworkModel Model) {
  this->Model = std::move(Model);
  Modeled = true;
}

Channel &ShardedLink::connect() {
  std::lock_guard<std::mutex> L(EndsMu);
  size_t Shard =
      NextConnShard.fetch_add(1, std::memory_order_relaxed) % NShards;
  Conns.push_back(std::unique_ptr<Conn>(new Conn(*this, Shard)));
  return *Conns.back();
}

Channel &ShardedLink::workerEnd() {
  std::lock_guard<std::mutex> L(EndsMu);
  size_t Shard =
      NextWorkerShard.fetch_add(1, std::memory_order_relaxed) % NShards;
  Workers.push_back(std::unique_ptr<WorkerChan>(new WorkerChan(*this, Shard)));
  return *Workers.back();
}

void ShardedLink::shutdown() {
  if (Down.exchange(true, std::memory_order_seq_cst))
    return;
  // Lock-then-notify on both park mutexes closes the checked-predicate-
  // but-not-yet-parked window (the bounded waits below it are only the
  // backstop); same idiom as ThreadedLink::shutdown.
  {
    std::lock_guard<std::mutex> L(ParkMu);
  }
  WorkCv.notify_all();
  {
    std::lock_guard<std::mutex> L(FullMu);
  }
  SpaceCv.notify_all();
  std::lock_guard<std::mutex> E(EndsMu);
  for (auto &C : Conns) {
    { std::lock_guard<std::mutex> L(C->RMu); }
    C->RCv.notify_all();
  }
}

size_t ShardedLink::pendingRequests() const {
  size_t N = 0;
  for (size_t I = 0; I != NShards; ++I)
    N += Rings[I].size();
  return N;
}

size_t ShardedLink::shardDepth(size_t I) const {
  return I < NShards ? Rings[I].size() : 0;
}

void ShardedLink::wireDelay(size_t Len) {
  if (!Modeled)
    return;
  double Us = Model.wireTimeUs(Len);
  if (flick_metrics_active)
    flick_metrics_active->wire_time_us += Us;
  if (flick_trace_active)
    flick_trace_record_complete(FLICK_SPAN_WIRE, "wire", Us);
  std::this_thread::sleep_for(std::chrono::duration<double, std::micro>(Us));
}

bool ShardedLink::anyReady() const {
  for (size_t I = 0; I != NShards; ++I)
    if (Rings[I].size())
      return true;
  return false;
}

void ShardedLink::wakeWorker() {
  // seq_cst pairs with the worker's seq_cst Sleepers increment: either we
  // see the sleeper (and notify), or the sleeper's post-increment ring
  // recheck sees our push.  The worker's bounded wait covers the rest.
  if (Sleepers.load(std::memory_order_seq_cst) > 0) {
    std::lock_guard<std::mutex> L(ParkMu);
    WorkCv.notify_one();
  }
}

void ShardedLink::notifySpace() {
  if (FullWaiters.load(std::memory_order_seq_cst) > 0) {
    std::lock_guard<std::mutex> L(FullMu);
    SpaceCv.notify_all();
  }
}

//===----------------------------------------------------------------------===//
// Request path
//===----------------------------------------------------------------------===//

int ShardedLink::pushRequest(Conn *From, Msg M) {
  if (Down.load(std::memory_order_acquire)) {
    From->Pool.release(M.Data, M.Cap);
    return FLICK_ERR_TRANSPORT;
  }
  Ring &R = Rings[From->Shard];
  // Account the enqueue *before* the push: a worker can pop the message
  // the instant push publishes it, and its depth decrement must find our
  // increment already there (the saturating sub would otherwise floor at
  // zero and leave the gauge drifted +1).  The abort path below undoes
  // these.
  if (flick_gauges_on()) {
    M.EnqNs = flick_gauge_now_ns();
    flick_gauges_global.queue_enqueues.fetch_add(1, std::memory_order_relaxed);
    flick_gauges_global.queue_depth.fetch_add(1, std::memory_order_relaxed);
    flick_gauge_shard_add(From->Shard, 1);
    // Tell the sampler how many shard slots actually exist, so JSONL
    // depth statistics average over live shards, not all 8 slots.
    flick_gauges_global.shard_slots_live.store(
        NShards < FLICK_GAUGE_SHARD_SLOTS ? NShards
                                          : FLICK_GAUGE_SHARD_SLOTS,
        std::memory_order_relaxed);
  } else if (M.TraceId) {
    // A traced request still wants its queue wait attributed (the QUEUE
    // span) even with the flight recorder off.
    M.EnqNs = flick_gauge_now_ns();
  }
  if (!R.push(From, M)) {
    // Backpressure: count the event once, then wait for a worker to free
    // a cell.  ring_wait_ns is the sharded analogue of lock_wait_ns --
    // the only blocking this transport's senders ever do.
    flick_metric_add(&flick_metrics::queue_full, 1);
    flick_gauge_add(&flick_gauges::queue_full_waits, 1);
    uint64_t T0 = flick_gauges_on() ? flick_gauge_now_ns() : 0;
    FullWaiters.fetch_add(1, std::memory_order_seq_cst);
    {
      std::unique_lock<std::mutex> L(FullMu);
      for (;;) {
        if (Down.load(std::memory_order_relaxed)) {
          FullWaiters.fetch_sub(1, std::memory_order_relaxed);
          if (T0)
            flick_gauge_add(&flick_gauges::ring_wait_ns,
                            flick_gauge_now_ns() - T0);
          // Undo the optimistic enqueue accounting: nothing was queued.
          flick_gauge_sub(&flick_gauges::queue_depth, 1);
          flick_gauge_shard_sub(From->Shard, 1);
          flick_gauge_sub(&flick_gauges::queue_enqueues, 1);
          L.unlock();
          From->Pool.release(M.Data, M.Cap);
          return FLICK_ERR_TRANSPORT;
        }
        if (flick_gauges_on() || M.TraceId)
          M.EnqNs = flick_gauge_now_ns();
        if (R.push(From, M))
          break;
        // Bounded: a consumer's notify can race our park; 1ms caps the
        // damage of the lost wakeup.
        SpaceCv.wait_for(L, std::chrono::milliseconds(1));
      }
    }
    FullWaiters.fetch_sub(1, std::memory_order_relaxed);
    if (T0)
      flick_gauge_add(&flick_gauges::ring_wait_ns, flick_gauge_now_ns() - T0);
  }
  wakeWorker();
  return FLICK_OK;
}

bool ShardedLink::tryPopAny(size_t Pref, Conn **From, Msg *M) {
  for (size_t I = 0; I != NShards; ++I) {
    size_t S = (Pref + I) % NShards;
    if (!Rings[S].pop(From, M))
      continue;
    if (flick_gauges_on()) {
      flick_gauge_sub(&flick_gauges::queue_depth, 1);
      flick_gauge_shard_sub(S, 1);
      flick_gauges_global.queue_dequeues.fetch_add(1,
                                                   std::memory_order_relaxed);
      if (I)
        flick_gauges_global.steals.fetch_add(1, std::memory_order_relaxed);
      if (M->EnqNs) {
        uint64_t Now = flick_gauge_now_ns();
        flick_gauges_global.queue_wait_ns.fetch_add(
            Now > M->EnqNs ? Now - M->EnqNs : 0, std::memory_order_relaxed);
      }
    }
    if (M->EnqNs && flick_trace_active) {
      uint64_t Now = flick_gauge_now_ns();
      flick_trace_deposit_wait(Now > M->EnqNs ? Now - M->EnqNs : 0);
    }
    notifySpace();
    return true;
  }
  return false;
}

int ShardedLink::popRequest(WorkerChan *W, Conn **From, Msg *M) {
  for (;;) {
    // Spin a bounded number of sweeps (own shard first, then steal)
    // before parking; each empty sweep is NShards acquire loads.
    for (int Spin = 0; Spin != 64; ++Spin) {
      if (tryPopAny(W->Shard, From, M))
        return FLICK_OK;
      if (Down.load(std::memory_order_acquire)) {
        // Drain-then-stop: one final sweep so every request published
        // before shutdown is still handed out.
        if (tryPopAny(W->Shard, From, M))
          return FLICK_OK;
        return FLICK_ERR_TRANSPORT;
      }
    }
    // Park.  The seq_cst increment-then-recheck pairs with wakeWorker's
    // push-then-load; the bounded wait backstops the residual race.
    Sleepers.fetch_add(1, std::memory_order_seq_cst);
    if (!anyReady() && !Down.load(std::memory_order_relaxed)) {
      std::unique_lock<std::mutex> L(ParkMu);
      WorkCv.wait_for(L, std::chrono::milliseconds(10), [&] {
        return anyReady() || Down.load(std::memory_order_relaxed);
      });
    }
    Sleepers.fetch_sub(1, std::memory_order_relaxed);
  }
}

//===----------------------------------------------------------------------===//
// Channel endpoints (identical copy/trace/pool discipline to ThreadedLink)
//===----------------------------------------------------------------------===//

ShardedLink::Conn::~Conn() {
  for (Msg &M : RepQ)
    std::free(M.Data);
}

int ShardedLink::Conn::awaitReply(Msg *M) {
  std::unique_lock<std::mutex> L(RMu);
  RCv.wait(L, [&] {
    return !RepQ.empty() || Link.Down.load(std::memory_order_relaxed);
  });
  if (RepQ.empty())
    return FLICK_ERR_TRANSPORT;
  *M = RepQ.front();
  RepQ.pop_front();
  return FLICK_OK;
}

int ShardedLink::Conn::send(const uint8_t *Data, size_t Len) {
  Msg M;
  M.Data = Pool.acquire(Len, &M.Cap);
  if (!M.Data) {
    flick_metric_add(&flick_metrics::alloc_errors, 1);
    return FLICK_ERR_TRANSPORT;
  }
  std::memcpy(M.Data, Data, Len);
  M.Len = Len;
  if (flick_metrics_active) {
    flick_metrics_active->bytes_copied += Len;
    ++flick_metrics_active->copy_ops;
  }
  if (flick_trace_active)
    flick_trace_stamp(&M.TraceId, &M.ParentSpan, &M.Endpoint);
  M.Corr = CorrOut;
  Link.wireDelay(Len);
  return Link.pushRequest(this, M);
}

int ShardedLink::Conn::sendv(const flick_iov *Segs, size_t Count) {
  size_t Total = 0;
  for (size_t i = 0; i != Count; ++i)
    Total += Segs[i].len;
  Msg M;
  M.Data = Pool.acquire(Total, &M.Cap);
  if (!M.Data) {
    flick_metric_add(&flick_metrics::alloc_errors, 1);
    return FLICK_ERR_TRANSPORT;
  }
  size_t Off = 0;
  for (size_t i = 0; i != Count; ++i) {
    std::memcpy(M.Data + Off, Segs[i].base, Segs[i].len);
    Off += Segs[i].len;
  }
  M.Len = Total;
  if (flick_metrics_active) {
    flick_metrics_active->bytes_copied += Total;
    ++flick_metrics_active->copy_ops;
  }
  if (flick_trace_active)
    flick_trace_stamp(&M.TraceId, &M.ParentSpan, &M.Endpoint);
  M.Corr = CorrOut;
  Link.wireDelay(Total);
  return Link.pushRequest(this, M);
}

int ShardedLink::Conn::recv(std::vector<uint8_t> &Out) {
  Msg M;
  if (int Err = awaitReply(&M))
    return Err;
  CorrIn = M.Corr;
  if (flick_trace_active)
    flick_trace_deposit(M.TraceId, M.ParentSpan, M.Endpoint);
  Out.assign(M.Data, M.Data + M.Len);
  if (flick_metrics_active) {
    flick_metrics_active->bytes_copied += M.Len;
    ++flick_metrics_active->copy_ops;
  }
  Pool.release(M.Data, M.Cap);
  return FLICK_OK;
}

int ShardedLink::Conn::recvInto(flick_buf *Into) {
  Msg M;
  if (int Err = awaitReply(&M))
    return Err;
  CorrIn = M.Corr;
  if (flick_trace_active)
    flick_trace_deposit(M.TraceId, M.ParentSpan, M.Endpoint);
  flick_buf_reset(Into);
  Pool.release(Into->data, Into->cap);
  Into->data = M.Data;
  Into->cap = M.Cap;
  Into->len = M.Len;
  Into->pos = 0;
  return FLICK_OK;
}

void ShardedLink::Conn::release(flick_buf *Buf) {
  Pool.release(Buf->data, Buf->cap);
  Buf->data = nullptr;
  Buf->cap = 0;
  Buf->len = 0;
  Buf->pos = 0;
}

int ShardedLink::WorkerChan::sendReply(Msg M) {
  Conn *To = CurConn;
  if (!To) {
    Pool.release(M.Data, M.Cap);
    return FLICK_ERR_TRANSPORT;
  }
  Link.wireDelay(M.Len);
  {
    std::lock_guard<std::mutex> L(To->RMu);
    To->RepQ.push_back(M);
  }
  To->RCv.notify_one();
  return FLICK_OK;
}

int ShardedLink::WorkerChan::send(const uint8_t *Data, size_t Len) {
  Msg M;
  M.Data = Pool.acquire(Len, &M.Cap);
  if (!M.Data) {
    flick_metric_add(&flick_metrics::alloc_errors, 1);
    return FLICK_ERR_TRANSPORT;
  }
  std::memcpy(M.Data, Data, Len);
  M.Len = Len;
  if (flick_metrics_active) {
    flick_metrics_active->bytes_copied += Len;
    ++flick_metrics_active->copy_ops;
  }
  if (flick_trace_active)
    flick_trace_stamp(&M.TraceId, &M.ParentSpan, &M.Endpoint);
  M.Corr = CorrOut;
  return sendReply(M);
}

int ShardedLink::WorkerChan::sendv(const flick_iov *Segs, size_t Count) {
  size_t Total = 0;
  for (size_t i = 0; i != Count; ++i)
    Total += Segs[i].len;
  Msg M;
  M.Data = Pool.acquire(Total, &M.Cap);
  if (!M.Data) {
    flick_metric_add(&flick_metrics::alloc_errors, 1);
    return FLICK_ERR_TRANSPORT;
  }
  size_t Off = 0;
  for (size_t i = 0; i != Count; ++i) {
    std::memcpy(M.Data + Off, Segs[i].base, Segs[i].len);
    Off += Segs[i].len;
  }
  M.Len = Total;
  if (flick_metrics_active) {
    flick_metrics_active->bytes_copied += Total;
    ++flick_metrics_active->copy_ops;
  }
  if (flick_trace_active)
    flick_trace_stamp(&M.TraceId, &M.ParentSpan, &M.Endpoint);
  M.Corr = CorrOut;
  return sendReply(M);
}

int ShardedLink::WorkerChan::recv(std::vector<uint8_t> &Out) {
  Conn *From = nullptr;
  Msg M;
  if (int Err = Link.popRequest(this, &From, &M))
    return Err;
  CurConn = From;
  // Auto-echo: the reply this worker sends next carries the request's
  // correlation id, so servers stay untouched by pipelining.
  CorrIn = M.Corr;
  CorrOut = M.Corr;
  if (flick_trace_active)
    flick_trace_deposit(M.TraceId, M.ParentSpan, M.Endpoint);
  Out.assign(M.Data, M.Data + M.Len);
  if (flick_metrics_active) {
    flick_metrics_active->bytes_copied += M.Len;
    ++flick_metrics_active->copy_ops;
  }
  Pool.release(M.Data, M.Cap);
  return FLICK_OK;
}

int ShardedLink::WorkerChan::recvInto(flick_buf *Into) {
  Conn *From = nullptr;
  Msg M;
  if (int Err = Link.popRequest(this, &From, &M))
    return Err;
  CurConn = From;
  CorrIn = M.Corr;
  CorrOut = M.Corr;
  if (flick_trace_active)
    flick_trace_deposit(M.TraceId, M.ParentSpan, M.Endpoint);
  flick_buf_reset(Into);
  Pool.release(Into->data, Into->cap);
  Into->data = M.Data;
  Into->cap = M.Cap;
  Into->len = M.Len;
  Into->pos = 0;
  return FLICK_OK;
}

void ShardedLink::WorkerChan::release(flick_buf *Buf) {
  Pool.release(Buf->data, Buf->cap);
  Buf->data = nullptr;
  Buf->cap = 0;
  Buf->len = 0;
  Buf->pos = 0;
}
