//===- runtime/transport/SocketLink.cpp - Unix sockets + epoll ------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "runtime/transport/SocketLink.h"
#include "runtime/Sampler.h"
#include "runtime/flick_runtime.h"
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/ioctl.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

using namespace flick;

// A frame length beyond this is a corrupt header, not a message.
static const uint64_t MaxFrameLen = uint64_t(1) << 30;

static inline void countSyscall() {
  flick_gauge_add(&flick_gauges::sock_syscalls, 1);
}

/// Consumes \p N written bytes from the front of \p MH's iovec array.
static void advanceIov(msghdr &MH, size_t N) {
  while (N && MH.msg_iovlen) {
    iovec &V = MH.msg_iov[0];
    if (N >= V.iov_len) {
      N -= V.iov_len;
      ++MH.msg_iov;
      --MH.msg_iovlen;
    } else {
      V.iov_base = static_cast<char *>(V.iov_base) + N;
      V.iov_len -= N;
      N = 0;
    }
  }
}

//===----------------------------------------------------------------------===//
// Link lifecycle
//===----------------------------------------------------------------------===//

SocketLink::SocketLink(size_t SndBufKiB) : SndBufBytes(SndBufKiB * 1024) {
  EpollFd = ::epoll_create1(0);
  WakeFd = ::eventfd(0, EFD_NONBLOCK);
  if (EpollFd >= 0 && WakeFd >= 0) {
    // data.ptr == null marks the shutdown eventfd in the worker loop.
    epoll_event Ev{};
    Ev.events = EPOLLIN;
    Ev.data.ptr = nullptr;
    ::epoll_ctl(EpollFd, EPOLL_CTL_ADD, WakeFd, &Ev);
  }
}

SocketLink::~SocketLink() {
  shutdown();
  std::lock_guard<std::mutex> L(EndsMu);
  for (auto &S : SConns)
    if (S->Fd >= 0)
      ::close(S->Fd);
  if (WakeFd >= 0)
    ::close(WakeFd);
  if (EpollFd >= 0)
    ::close(EpollFd);
  // Client fds close in the Conn destructors.
}

void SocketLink::setModel(NetworkModel Model) {
  this->Model = std::move(Model);
  Modeled = true;
}

Channel &SocketLink::connect() {
  std::lock_guard<std::mutex> L(EndsMu);
  int Fds[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds) != 0) {
    flick_metric_add(&flick_metrics::alloc_errors, 1);
    // A dead connection: every operation fails with FLICK_ERR_TRANSPORT.
    Conns.push_back(
        std::unique_ptr<Conn>(new Conn(*this, -1, nullptr)));
    return *Conns.back();
  }
  if (SndBufBytes) {
    int Buf = static_cast<int>(SndBufBytes);
    ::setsockopt(Fds[0], SOL_SOCKET, SO_SNDBUF, &Buf, sizeof Buf);
    ::setsockopt(Fds[1], SOL_SOCKET, SO_SNDBUF, &Buf, sizeof Buf);
  }
  ::fcntl(Fds[0], F_SETFL, ::fcntl(Fds[0], F_GETFL, 0) | O_NONBLOCK);

  SConns.push_back(std::unique_ptr<SConn>(new SConn()));
  SConn *S = SConns.back().get();
  S->Fd = Fds[1];
  epoll_event Ev{};
  Ev.events = EPOLLIN | EPOLLONESHOT;
  Ev.data.ptr = S;
  ::epoll_ctl(EpollFd, EPOLL_CTL_ADD, S->Fd, &Ev);
  LiveConns.fetch_add(1, std::memory_order_relaxed);

  Conns.push_back(std::unique_ptr<Conn>(new Conn(*this, Fds[0], S)));
  return *Conns.back();
}

Channel &SocketLink::workerEnd() {
  std::lock_guard<std::mutex> L(EndsMu);
  Workers.push_back(std::unique_ptr<WorkerChan>(new WorkerChan(*this)));
  return *Workers.back();
}

void SocketLink::shutdown() {
  if (Down.exchange(true, std::memory_order_seq_cst))
    return;
  // Wake every worker: the eventfd is level-triggered and never read, so
  // from here on epoll_wait always returns immediately.
  uint64_t One = 1;
  ssize_t W = ::write(WakeFd, &One, sizeof One);
  (void)W;
  // Half-close every client socket.  The FIN makes blocked client reads
  // fail now, while request frames already buffered stay readable on the
  // server side -- the drain-then-stop contract.
  std::lock_guard<std::mutex> L(EndsMu);
  for (auto &C : Conns)
    if (C->Fd >= 0)
      ::shutdown(C->Fd, SHUT_RDWR);
}

size_t SocketLink::pendingRequests() const {
  std::lock_guard<std::mutex> L(EndsMu);
  size_t N = 0;
  for (auto &S : SConns) {
    if (S->Fd < 0 || S->Dead.load(std::memory_order_relaxed))
      continue;
    int Avail = 0;
    if (::ioctl(S->Fd, FIONREAD, &Avail) == 0 && Avail > 0)
      N += static_cast<size_t>(Avail);
  }
  return N;
}

int SocketLink::debugClientFd(const Channel &C) const {
  std::lock_guard<std::mutex> L(EndsMu);
  for (auto &Conn : Conns)
    if (Conn.get() == &C)
      return Conn->Fd;
  return -1;
}

void SocketLink::debugCloseClient(Channel &C) {
  std::lock_guard<std::mutex> L(EndsMu);
  for (auto &Conn : Conns)
    if (Conn.get() == &C && Conn->Fd >= 0) {
      ::close(Conn->Fd);
      Conn->Fd = -1;
    }
}

void SocketLink::wireDelay(size_t Len) {
  if (!Modeled)
    return;
  double Us = Model.wireTimeUs(Len);
  if (flick_metrics_active)
    flick_metrics_active->wire_time_us += Us;
  if (flick_trace_active)
    flick_trace_record_complete(FLICK_SPAN_WIRE, "wire", Us);
  std::this_thread::sleep_for(std::chrono::duration<double, std::micro>(Us));
}

void SocketLink::deregister(SConn *S, bool Error) {
  if (S->Dead.exchange(true, std::memory_order_relaxed))
    return;
  ::epoll_ctl(EpollFd, EPOLL_CTL_DEL, S->Fd, nullptr);
  LiveConns.fetch_sub(1, std::memory_order_relaxed);
  if (Error)
    flick_metric_add(&flick_metrics::transport_errors, 1);
}

//===----------------------------------------------------------------------===//
// Client endpoint
//===----------------------------------------------------------------------===//

SocketLink::Conn::~Conn() {
  if (Fd >= 0)
    ::close(Fd);
}

int SocketLink::Conn::writeIovs(iovec *Io, size_t NIov) {
  msghdr MH{};
  MH.msg_iov = Io;
  MH.msg_iovlen = NIov;

  bool MetFull = false;
  while (MH.msg_iovlen) {
    ssize_t N = ::sendmsg(Fd, &MH, MSG_NOSIGNAL);
    countSyscall();
    if (N >= 0) {
      advanceIov(MH, static_cast<size_t>(N));
      continue;
    }
    if (errno == EINTR)
      continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // Backpressure: the kernel send buffer is this transport's bounded
      // queue.  Count the event once per send, then poll for space.
      if (!MetFull) {
        MetFull = true;
        flick_metric_add(&flick_metrics::queue_full, 1);
        flick_gauge_add(&flick_gauges::queue_full_waits, 1);
      }
      flick_gauge_add(&flick_gauges::sock_eagain, 1);
      if (Link.Down.load(std::memory_order_relaxed))
        return FLICK_ERR_TRANSPORT;
      pollfd P = {Fd, POLLOUT, 0};
      ::poll(&P, 1, 10);
      countSyscall();
      continue;
    }
    flick_metric_add(&flick_metrics::transport_errors, 1);
    return FLICK_ERR_TRANSPORT;
  }
  return FLICK_OK;
}

int SocketLink::Conn::sendFrame(const flick_iov *Segs, size_t Count,
                                size_t Total) {
  if (Fd < 0 || Link.Down.load(std::memory_order_acquire))
    return FLICK_ERR_TRANSPORT;
  FrameHdr H = {Total, 0, 0, 0, 0, 0, CorrOut};
  if (flick_trace_active)
    flick_trace_stamp(&H.TraceId, &H.ParentSpan, &H.Endpoint);
  Link.wireDelay(Total);
  // Stamp after the modeled wire sleep: the receiver's queue-wait
  // attribution then covers only real kernel-buffer time, never the
  // already-accounted WIRE span.
  if (H.TraceId)
    H.SendNs = flick_gauge_now_ns();

  // One gather array: header first, then the caller's segments verbatim.
  // No staging buffer -- this is the transport's zero-copy send path.
  iovec Stack[9];
  std::vector<iovec> Heap;
  iovec *Io = Stack;
  if (Count + 1 > sizeof Stack / sizeof Stack[0]) {
    Heap.resize(Count + 1);
    Io = Heap.data();
  }
  Io[0].iov_base = &H;
  Io[0].iov_len = sizeof H;
  for (size_t I = 0; I != Count; ++I) {
    Io[I + 1].iov_base = const_cast<uint8_t *>(Segs[I].base);
    Io[I + 1].iov_len = Segs[I].len;
  }
  return writeIovs(Io, Count + 1);
}

int SocketLink::Conn::sendBatch(const flick_iov *const *Segs,
                                const size_t *Counts, size_t NMsgs) {
  if (Fd < 0 || Link.Down.load(std::memory_order_acquire))
    return FLICK_ERR_TRANSPORT;
  // One header per frame, one iovec gather over ALL frames, ONE sendmsg
  // in the common case: the receiver parses the concatenated frames
  // sequentially off the stream, so corked oneways amortize the per-send
  // syscall (and wakeup) cost across the whole batch.
  std::vector<FrameHdr> Hdrs(NMsgs);
  size_t NIov = NMsgs, GrandTotal = 0;
  for (size_t I = 0; I != NMsgs; ++I)
    NIov += Counts[I];
  std::vector<iovec> Io(NIov);
  size_t At = 0;
  for (size_t I = 0; I != NMsgs; ++I) {
    size_t Total = 0;
    for (size_t S = 0; S != Counts[I]; ++S)
      Total += Segs[I][S].len;
    GrandTotal += Total;
    FrameHdr &H = Hdrs[I];
    H = FrameHdr{Total, 0, 0, 0, 0, 0, CorrOut};
    if (flick_trace_active)
      flick_trace_stamp(&H.TraceId, &H.ParentSpan, &H.Endpoint);
    Io[At].iov_base = &H;
    Io[At].iov_len = sizeof H;
    ++At;
    for (size_t S = 0; S != Counts[I]; ++S) {
      Io[At].iov_base = const_cast<uint8_t *>(Segs[I][S].base);
      Io[At].iov_len = Segs[I][S].len;
      ++At;
    }
  }
  // One modeled transit for the whole batch: corked frames share the wire.
  Link.wireDelay(GrandTotal);
  uint64_t Now = flick_trace_active ? flick_gauge_now_ns() : 0;
  for (size_t I = 0; I != NMsgs; ++I)
    if (Hdrs[I].TraceId)
      Hdrs[I].SendNs = Now;
  return writeIovs(Io.data(), NIov);
}

int SocketLink::Conn::send(const uint8_t *Data, size_t Len) {
  flick_iov V;
  V.base = Data;
  V.len = Len;
  return sendFrame(&V, 1, Len);
}

int SocketLink::Conn::sendv(const flick_iov *Segs, size_t Count) {
  size_t Total = 0;
  for (size_t I = 0; I != Count; ++I)
    Total += Segs[I].len;
  return sendFrame(Segs, Count, Total);
}

/// Reads exactly \p N bytes from the non-blocking client fd, polling
/// through EAGAIN and failing fast on shutdown or EOF.
static int readFullPolled(SocketLink &Link, std::atomic<bool> &Down, int Fd,
                          void *Buf, size_t N) {
  (void)Link;
  uint8_t *P = static_cast<uint8_t *>(Buf);
  size_t Got = 0;
  while (Got != N) {
    ssize_t R = ::read(Fd, P + Got, N - Got);
    countSyscall();
    if (R > 0) {
      Got += static_cast<size_t>(R);
      continue;
    }
    if (R == 0)
      return FLICK_ERR_TRANSPORT;
    if (errno == EINTR)
      continue;
    if (errno != EAGAIN && errno != EWOULDBLOCK)
      return FLICK_ERR_TRANSPORT;
    if (Down.load(std::memory_order_relaxed))
      return FLICK_ERR_TRANSPORT;
    pollfd PF = {Fd, POLLIN, 0};
    ::poll(&PF, 1, 10);
    countSyscall();
  }
  return FLICK_OK;
}

int SocketLink::Conn::recvHdr(FrameHdr *H) {
  if (Fd < 0)
    return FLICK_ERR_TRANSPORT;
  if (int Err = readFullPolled(Link, Link.Down, Fd, H, sizeof *H))
    return Err;
  if (H->Len > MaxFrameLen)
    return FLICK_ERR_TRANSPORT;
  return FLICK_OK;
}

int SocketLink::Conn::recv(std::vector<uint8_t> &Out) {
  FrameHdr H;
  if (int Err = recvHdr(&H))
    return Err;
  CorrIn = H.Corr;
  Out.resize(H.Len);
  if (H.Len)
    if (int Err = readFullPolled(Link, Link.Down, Fd, Out.data(), H.Len))
      return Err;
  if (flick_trace_active)
    flick_trace_deposit(H.TraceId, H.ParentSpan, H.Endpoint);
  return FLICK_OK;
}

int SocketLink::Conn::recvInto(flick_buf *Into) {
  FrameHdr H;
  if (int Err = recvHdr(&H))
    return Err;
  CorrIn = H.Corr;
  size_t Cap = 0;
  uint8_t *Data = Pool.acquire(H.Len, &Cap);
  if (!Data) {
    flick_metric_add(&flick_metrics::alloc_errors, 1);
    return FLICK_ERR_TRANSPORT;
  }
  if (H.Len)
    if (int Err = readFullPolled(Link, Link.Down, Fd, Data, H.Len)) {
      Pool.release(Data, Cap);
      return Err;
    }
  if (flick_trace_active)
    flick_trace_deposit(H.TraceId, H.ParentSpan, H.Endpoint);
  // Receive by adoption, as everywhere: the pooled buffer the kernel
  // filled becomes the caller's flick_buf storage, no user-space copy.
  flick_buf_reset(Into);
  Pool.release(Into->data, Into->cap);
  Into->data = Data;
  Into->cap = Cap;
  Into->len = H.Len;
  Into->pos = 0;
  return FLICK_OK;
}

void SocketLink::Conn::release(flick_buf *Buf) {
  Pool.release(Buf->data, Buf->cap);
  Buf->data = nullptr;
  Buf->cap = 0;
  Buf->len = 0;
  Buf->pos = 0;
}

//===----------------------------------------------------------------------===//
// Worker endpoint
//===----------------------------------------------------------------------===//

/// Reads exactly \p N bytes from a blocking server-side fd.
/// Returns 1 on success, 0 on EOF before the first byte (a clean
/// frame-boundary close), -1 on error or EOF mid-read (a truncated
/// frame).
static int readBlocking(int Fd, void *Buf, size_t N) {
  uint8_t *P = static_cast<uint8_t *>(Buf);
  size_t Got = 0;
  while (Got != N) {
    ssize_t R = ::read(Fd, P + Got, N - Got);
    countSyscall();
    if (R > 0) {
      Got += static_cast<size_t>(R);
      continue;
    }
    if (R == 0)
      return Got == 0 ? 0 : -1;
    if (errno == EINTR)
      continue;
    return -1;
  }
  return 1;
}

int SocketLink::WorkerChan::recvFrame(FrameHdr *H, uint8_t **Data,
                                      size_t *Cap) {
  for (;;) {
    if (Link.Down.load(std::memory_order_acquire) &&
        Link.LiveConns.load(std::memory_order_relaxed) == 0)
      return FLICK_ERR_TRANSPORT;
    epoll_event Ev;
    int N = ::epoll_wait(Link.EpollFd, &Ev, 1, 50);
    countSyscall();
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return FLICK_ERR_TRANSPORT;
    }
    if (N == 0)
      continue;
    if (!Ev.data.ptr) {
      // The shutdown eventfd.  Still-live connections hold buffered
      // frames to drain; back off briefly so the level-triggered wakeup
      // does not spin a core while other workers finish them.
      if (Link.Down.load(std::memory_order_acquire)) {
        if (Link.LiveConns.load(std::memory_order_relaxed) == 0)
          return FLICK_ERR_TRANSPORT;
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
      continue;
    }
    // EPOLLONESHOT: this worker owns the connection until it re-arms it.
    SConn *S = static_cast<SConn *>(Ev.data.ptr);
    int R = readBlocking(S->Fd, H, sizeof *H);
    if (R <= 0) {
      // Clean EOF under shutdown is the normal drain end; a truncated
      // header or an EOF without shutdown is a peer fault: count it,
      // drop the connection, keep serving the rest.
      Link.deregister(S, R < 0 ||
                             !Link.Down.load(std::memory_order_relaxed));
      continue;
    }
    // Queue wait ends the moment this worker claims the frame, before
    // the payload drain: a payload larger than the socket buffer is
    // streamed while the sender still blocks inside its SEND span, and
    // clocking that overlap here too would double-count it.
    uint64_t WaitNs = 0;
    if (H->SendNs) {
      uint64_t Now = flick_gauge_now_ns();
      WaitNs = Now > H->SendNs ? Now - H->SendNs : 0;
    }
    if (H->Len > MaxFrameLen) {
      Link.deregister(S, true);
      continue;
    }
    *Data = Pool.acquire(H->Len, Cap);
    if (!*Data) {
      flick_metric_add(&flick_metrics::alloc_errors, 1);
      Link.deregister(S, true);
      continue;
    }
    if (H->Len && readBlocking(S->Fd, *Data, H->Len) <= 0) {
      // The fault-containment case: the peer vanished mid-message.
      Pool.release(*Data, *Cap);
      Link.deregister(S, true);
      continue;
    }
    // Re-arm before dispatching so this connection's further buffered
    // frames are visible to the other workers while we run the handler.
    epoll_event Re{};
    Re.events = EPOLLIN | EPOLLONESHOT;
    Re.data.ptr = S;
    ::epoll_ctl(Link.EpollFd, EPOLL_CTL_MOD, S->Fd, &Re);
    countSyscall();
    if (H->SendNs) {
      // Kernel-buffer dwell time: this transport's queue wait.
      if (flick_gauges_on())
        flick_gauges_global.queue_wait_ns.fetch_add(
            WaitNs, std::memory_order_relaxed);
      if (flick_trace_active)
        flick_trace_deposit_wait(WaitNs);
    }
    Cur = S;
    return FLICK_OK;
  }
}

int SocketLink::WorkerChan::sendReply(const flick_iov *Segs, size_t Count,
                                      size_t Total) {
  SConn *S = Cur;
  if (!S || S->Dead.load(std::memory_order_relaxed))
    return FLICK_ERR_TRANSPORT;
  FrameHdr H = {Total, 0, 0, 0, 0, 0, CorrOut};
  if (flick_trace_active)
    flick_trace_stamp(&H.TraceId, &H.ParentSpan, &H.Endpoint);
  Link.wireDelay(Total);

  iovec Stack[9];
  std::vector<iovec> Heap;
  iovec *Io = Stack;
  if (Count + 1 > sizeof Stack / sizeof Stack[0]) {
    Heap.resize(Count + 1);
    Io = Heap.data();
  }
  Io[0].iov_base = &H;
  Io[0].iov_len = sizeof H;
  for (size_t I = 0; I != Count; ++I) {
    Io[I + 1].iov_base = const_cast<uint8_t *>(Segs[I].base);
    Io[I + 1].iov_len = Segs[I].len;
  }
  msghdr MH{};
  MH.msg_iov = Io;
  MH.msg_iovlen = Count + 1;

  // Two workers can answer back-to-back requests from one connection;
  // the per-connection write lock keeps reply frames whole.
  std::lock_guard<std::mutex> L(S->WrMu);
  while (MH.msg_iovlen) {
    ssize_t N = ::sendmsg(S->Fd, &MH, MSG_NOSIGNAL);
    countSyscall();
    if (N >= 0) {
      advanceIov(MH, static_cast<size_t>(N));
      continue;
    }
    if (errno == EINTR)
      continue;
    flick_metric_add(&flick_metrics::transport_errors, 1);
    return FLICK_ERR_TRANSPORT;
  }
  return FLICK_OK;
}

int SocketLink::WorkerChan::send(const uint8_t *Data, size_t Len) {
  flick_iov V;
  V.base = Data;
  V.len = Len;
  return sendReply(&V, 1, Len);
}

int SocketLink::WorkerChan::sendv(const flick_iov *Segs, size_t Count) {
  size_t Total = 0;
  for (size_t I = 0; I != Count; ++I)
    Total += Segs[I].len;
  return sendReply(Segs, Count, Total);
}

int SocketLink::WorkerChan::recv(std::vector<uint8_t> &Out) {
  FrameHdr H;
  uint8_t *Data = nullptr;
  size_t Cap = 0;
  if (int Err = recvFrame(&H, &Data, &Cap))
    return Err;
  // Auto-echo: the reply this worker sends next carries the request's
  // correlation id, so servers stay untouched by pipelining.
  CorrIn = H.Corr;
  CorrOut = H.Corr;
  if (flick_trace_active)
    flick_trace_deposit(H.TraceId, H.ParentSpan, H.Endpoint);
  Out.assign(Data, Data + H.Len);
  if (flick_metrics_active) {
    flick_metrics_active->bytes_copied += H.Len;
    ++flick_metrics_active->copy_ops;
  }
  Pool.release(Data, Cap);
  return FLICK_OK;
}

int SocketLink::WorkerChan::recvInto(flick_buf *Into) {
  FrameHdr H;
  uint8_t *Data = nullptr;
  size_t Cap = 0;
  if (int Err = recvFrame(&H, &Data, &Cap))
    return Err;
  CorrIn = H.Corr;
  CorrOut = H.Corr;
  if (flick_trace_active)
    flick_trace_deposit(H.TraceId, H.ParentSpan, H.Endpoint);
  flick_buf_reset(Into);
  Pool.release(Into->data, Into->cap);
  Into->data = Data;
  Into->cap = Cap;
  Into->len = H.Len;
  Into->pos = 0;
  return FLICK_OK;
}

void SocketLink::WorkerChan::release(flick_buf *Buf) {
  Pool.release(Buf->data, Buf->cap);
  Buf->data = nullptr;
  Buf->cap = 0;
  Buf->len = 0;
  Buf->pos = 0;
}
