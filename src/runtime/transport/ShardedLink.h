//===- runtime/transport/ShardedLink.h - Lock-free rings --------*- C++ -*-===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ShardedLink: the lock-free replacement for ThreadedLink's single
/// mutex-guarded request queue.  Requests flow through NShards bounded
/// MPMC rings (one atomic sequence number per cell, Vyukov-style, with
/// atomic head/tail tickets); each connection is pinned to one shard at
/// connect() and each worker owns a preferred shard, stealing from the
/// others when its own runs dry.  The hot path -- push on send, pop on
/// worker recv -- takes no mutex; condition variables appear only when a
/// worker has found every ring empty (parks on WorkCv) or a sender has
/// met a full ring (parks on SpaceCv), and both parks pair an atomic
/// waiter count with a bounded wait so a lost wakeup degrades to a few
/// milliseconds of latency, never a hang.
///
/// Flight-recorder hooks: the shared queue_depth / queue_enqueues /
/// queue_dequeues / queue_wait_ns gauges keep their meaning; ring_wait_ns
/// accounts the time senders spend blocked on a full ring (the sharded
/// analogue of ThreadedLink's lock_wait_ns), steals counts cross-shard
/// pops, and shard_depth[] tracks per-shard occupancy.
///
//===----------------------------------------------------------------------===//

#ifndef FLICK_RUNTIME_TRANSPORT_SHARDEDLINK_H
#define FLICK_RUNTIME_TRANSPORT_SHARDEDLINK_H

#include "runtime/transport/Transport.h"
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

namespace flick {

/// The lock-free sharded transport.  Same thread contract, backpressure
/// accounting, drain-then-stop shutdown, and sender-sleeps wire model as
/// ThreadedLink (see Transport.h); only the queue structure differs.
///
/// Ordering: one connection's requests stay FIFO (its shard's ring is
/// FIFO and pops are totally ordered by the tail ticket); requests from
/// different connections are unordered relative to each other, as with
/// any MPSC queue drained by N workers.
class ShardedLink final : public Transport {
public:
  /// \p ShardCap bounds each shard's ring (rounded up to a power of two,
  /// minimum 2); \p Shards of 0 picks the default shard count.
  explicit ShardedLink(size_t ShardCap = 256, size_t Shards = 0);
  ~ShardedLink() override;

  void setModel(NetworkModel Model) override;
  Channel &connect() override;
  Channel &workerEnd() override;
  void shutdown() override;
  size_t pendingRequests() const override;

  size_t shards() const { return NShards; }
  /// Requests sitting in shard \p I's ring (approximate while racing).
  size_t shardDepth(size_t I) const;

private:
  /// As in ThreadedLink: pooled wire bytes plus out-of-band trace context
  /// (with the sender's endpoint tag), the enqueue stamp for the flight
  /// recorder's queue-wait gauge and the dequeue side's QUEUE span, and
  /// the async client's correlation id (0 for synchronous callers).
  struct Msg {
    uint8_t *Data = nullptr;
    size_t Cap = 0;
    size_t Len = 0;
    uint64_t TraceId = 0;
    uint64_t ParentSpan = 0;
    uint32_t Endpoint = 0;
    uint64_t EnqNs = 0;
    uint64_t Corr = 0;
  };

  class Conn final : public Channel {
  public:
    Conn(ShardedLink &Link, size_t Shard) : Link(Link), Shard(Shard) {}
    ~Conn() override;
    int send(const uint8_t *Data, size_t Len) override;
    int recv(std::vector<uint8_t> &Out) override;
    int sendv(const flick_iov *Segs, size_t Count) override;
    int recvInto(flick_buf *Into) override;
    void release(flick_buf *Buf) override;

  private:
    friend class ShardedLink;
    int awaitReply(Msg *M);

    ShardedLink &Link;
    const size_t Shard; ///< the ring this connection's requests enter
    std::mutex RMu;
    std::condition_variable RCv;
    std::deque<Msg> RepQ;
    WireBufPool Pool;
  };

  class WorkerChan final : public Channel {
  public:
    WorkerChan(ShardedLink &Link, size_t Shard) : Link(Link), Shard(Shard) {}
    int send(const uint8_t *Data, size_t Len) override;
    int recv(std::vector<uint8_t> &Out) override;
    int sendv(const flick_iov *Segs, size_t Count) override;
    int recvInto(flick_buf *Into) override;
    void release(flick_buf *Buf) override;

  private:
    friend class ShardedLink;
    int sendReply(Msg M);

    ShardedLink &Link;
    const size_t Shard; ///< preferred shard; steals from the rest
    Conn *CurConn = nullptr;
    WireBufPool Pool;
  };

  /// One bounded MPMC ring: every cell carries a sequence number that
  /// encodes whether it awaits a producer (Seq == ticket) or a consumer
  /// (Seq == ticket + 1), so push and pop race on nothing but their own
  /// ticket counters.
  struct Ring {
    struct Cell {
      std::atomic<uint64_t> Seq;
      Conn *From;
      Msg M;
    };
    std::unique_ptr<Cell[]> Cells;
    uint64_t Mask = 0;
    alignas(64) std::atomic<uint64_t> Head{0}; ///< next enqueue ticket
    alignas(64) std::atomic<uint64_t> Tail{0}; ///< next dequeue ticket

    void init(size_t Cap);
    bool push(Conn *From, const Msg &M); ///< false when full
    bool pop(Conn **From, Msg *M);       ///< false when empty
    size_t size() const;
  };

  void wireDelay(size_t Len);
  int pushRequest(Conn *From, Msg M);
  int popRequest(WorkerChan *W, Conn **From, Msg *M);
  /// Pops from \p Pref first, then the other shards; accounts gauges and
  /// wakes one blocked sender on success.
  bool tryPopAny(size_t Pref, Conn **From, Msg *M);
  bool anyReady() const;
  void wakeWorker();
  void notifySpace();

  size_t NShards;
  std::unique_ptr<Ring[]> Rings;
  std::atomic<bool> Down{false};

  /// Parked workers: count + condvar.  Producers only touch ParkMu when
  /// Sleepers is nonzero, so the un-contended hot path stays lock-free.
  std::atomic<int> Sleepers{0};
  std::mutex ParkMu;
  std::condition_variable WorkCv;

  /// Senders blocked on a full ring, same pattern.
  std::atomic<int> FullWaiters{0};
  std::mutex FullMu;
  std::condition_variable SpaceCv;

  std::atomic<uint64_t> NextConnShard{0};
  std::atomic<uint64_t> NextWorkerShard{0};

  bool Modeled = false;
  NetworkModel Model = NetworkModel::ideal();

  mutable std::mutex EndsMu;
  std::vector<std::unique_ptr<Conn>> Conns;
  std::vector<std::unique_ptr<WorkerChan>> Workers;
};

} // namespace flick

#endif // FLICK_RUNTIME_TRANSPORT_SHARDEDLINK_H
