//===- runtime/transport/SocketLink.h - Unix sockets + epoll ----*- C++ -*-===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SocketLink: the first transport whose messages cross a real kernel
/// boundary.  Every connect() makes an AF_UNIX SOCK_STREAM socketpair;
/// requests and replies travel as length-prefixed frames whose 48-byte
/// header carries the trace context and the async client's correlation id
/// out of band (the CDR payload bytes are identical to every other
/// transport).  Worker-side fds sit behind
/// one shared epoll instance: each is armed EPOLLIN|EPOLLONESHOT so
/// exactly one worker claims a readable connection, reads exactly one
/// frame, and re-arms it before dispatching -- the kernel does the
/// request-queue arbitration the other transports do in user space.
///
/// The zero-copy story: sendv lowers straight to sendmsg scatter-gather
/// (header + caller segments in one iovec array, no staging buffer) and
/// flat send writes the caller's bytes directly, so the send side adds
/// zero user-space copies; recvInto reads the payload into a pooled wire
/// buffer and hands it to the caller by adoption.  Above the gather
/// threshold a whole RPC's user-space copy bill is the marshal fill
/// alone (copies_per_rpc ~ 1.0 in fig8's payload-normalized column).
///
/// Flight-recorder hooks: sock_syscalls counts sendmsg/read/poll/
/// epoll_wait issued, sock_eagain counts send-side would-block retries;
/// a send meeting a full socket buffer counts one queue_full metric
/// event (same backpressure contract as the queue transports).
///
//===----------------------------------------------------------------------===//

#ifndef FLICK_RUNTIME_TRANSPORT_SOCKETLINK_H
#define FLICK_RUNTIME_TRANSPORT_SOCKETLINK_H

#include "runtime/transport/Transport.h"
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

/// POSIX scatter-gather element (sys/uio.h), forward-declared at global
/// scope so this header stays free of system includes and the elaborated
/// `struct iovec` below cannot inject a new type into namespace flick.
struct iovec;

namespace flick {

/// The Unix-domain socket transport.  Same thread contract, reply
/// routing, backpressure accounting, drain-then-stop shutdown, and
/// sender-sleeps wire model as the queue transports (see Transport.h).
///
/// Shutdown detail: shutdown() writes the wake eventfd (level-triggered,
/// never read, so every epoll_wait from then on returns immediately) and
/// half-closes every client fd with ::shutdown(SHUT_RDWR).  Request
/// frames already buffered in a socket stay readable server-side, so
/// workers drain them before their recv fails; client reply-waiters see
/// EOF (or the Down flag) and fail immediately.
///
/// Fault containment: a peer that disappears mid-frame costs one
/// transport_errors metric event and its connection's deregistration;
/// the worker carries on serving the other connections.
class SocketLink final : public Transport {
public:
  /// \p SndBufKiB sizes each socket's kernel send buffer (the transport's
  /// backpressure bound, analogous to QueueCap); 0 keeps the kernel
  /// default.
  explicit SocketLink(size_t SndBufKiB = 256);
  ~SocketLink() override;

  void setModel(NetworkModel Model) override;
  Channel &connect() override;
  Channel &workerEnd() override;
  void shutdown() override;
  /// Request bytes buffered in server-side sockets and not yet read
  /// (wire bytes, not messages -- tests rely only on zero/nonzero).
  size_t pendingRequests() const override;

  /// Test hooks: the raw client-side fd of \p C (-1 when unknown), and a
  /// hard close of that fd so tests can make a peer vanish mid-frame.
  int debugClientFd(const Channel &C) const;
  void debugCloseClient(Channel &C);

private:
  /// The 48-byte wire frame header.  Len counts payload bytes only;
  /// TraceId/ParentSpan/Endpoint carry the sender's trace context beside
  /// the payload, never inside it.  SendNs (gauge clock, stamped *after*
  /// the sender's modeled wire sleep so the two never double-count) lets
  /// the receive side attribute time spent queued in the kernel socket
  /// buffer, this transport's request queue.  Zero when the sender had no
  /// tracer.  Corr is the async client's request correlation id (0 for
  /// synchronous callers), in the header for the same reason the trace
  /// context is: payload bytes never change.
  struct FrameHdr {
    uint64_t Len;
    uint64_t TraceId;
    uint64_t ParentSpan;
    uint64_t SendNs;
    uint32_t Endpoint;
    uint32_t Pad;
    uint64_t Corr;
  };

  /// Server-side half of one connection: the epoll-registered fd plus a
  /// write lock serializing reply frames (two workers may finish requests
  /// from the same connection back to back).
  struct SConn {
    int Fd = -1;
    std::mutex WrMu;
    std::atomic<bool> Dead{false};
  };

  class Conn final : public Channel {
  public:
    Conn(SocketLink &Link, int Fd, SConn *Server)
        : Link(Link), Fd(Fd), Server(Server) {}
    ~Conn() override;
    int send(const uint8_t *Data, size_t Len) override;
    int recv(std::vector<uint8_t> &Out) override;
    int sendv(const flick_iov *Segs, size_t Count) override;
    int recvInto(flick_buf *Into) override;
    void release(flick_buf *Buf) override;
    /// Corked oneway batch: all frames (header + payload segments each)
    /// leave in ONE sendmsg, so N small requests pay one syscall.  The
    /// receiver parses them sequentially off the stream as usual.
    int sendBatch(const flick_iov *const *Segs, const size_t *Counts,
                  size_t NMsgs) override;

  private:
    friend class SocketLink;
    /// Writes one frame (header + \p Count gather segments totalling
    /// \p Total payload bytes) to the non-blocking client fd, polling
    /// through EAGAIN.
    int sendFrame(const flick_iov *Segs, size_t Count, size_t Total);
    /// Writes an arbitrary iovec array (already framed) to the fd,
    /// polling through EAGAIN; shared by sendFrame and sendBatch.
    int writeIovs(struct iovec *Iov, size_t NIov);
    /// Blocks (poll + Down checks) for the next reply frame header.
    int recvHdr(FrameHdr *H);

    SocketLink &Link;
    int Fd; ///< client-side fd, O_NONBLOCK
    SConn *Server;
    WireBufPool Pool;
  };

  class WorkerChan final : public Channel {
  public:
    explicit WorkerChan(SocketLink &Link) : Link(Link) {}
    int send(const uint8_t *Data, size_t Len) override;
    int recv(std::vector<uint8_t> &Out) override;
    int sendv(const flick_iov *Segs, size_t Count) override;
    int recvInto(flick_buf *Into) override;
    void release(flick_buf *Buf) override;

  private:
    friend class SocketLink;
    /// Claims the next readable connection from the epoll loop and reads
    /// one whole frame; on success Cur points at the request's
    /// connection.  The payload lands in a pool buffer (*Data/*Cap).
    int recvFrame(FrameHdr *H, uint8_t **Data, size_t *Cap);
    int sendReply(const flick_iov *Segs, size_t Count, size_t Total);

    SocketLink &Link;
    SConn *Cur = nullptr;
    WireBufPool Pool;
  };

  void wireDelay(size_t Len);
  /// Removes \p S from the epoll set (idempotent); \p Error charges one
  /// transport_errors metric event for a mid-frame disappearance.
  void deregister(SConn *S, bool Error);

  int EpollFd = -1;
  int WakeFd = -1; ///< eventfd; written once at shutdown, never read
  std::atomic<bool> Down{false};
  std::atomic<int> LiveConns{0};
  size_t SndBufBytes;

  bool Modeled = false;
  NetworkModel Model = NetworkModel::ideal();

  mutable std::mutex EndsMu;
  std::vector<std::unique_ptr<Conn>> Conns;
  std::vector<std::unique_ptr<SConn>> SConns;
  std::vector<std::unique_ptr<WorkerChan>> Workers;
};

} // namespace flick

#endif // FLICK_RUNTIME_TRANSPORT_SOCKETLINK_H
