//===- runtime/transport/Transport.cpp - Transport seam -------------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "runtime/transport/Transport.h"
#include "runtime/transport/ShardedLink.h"
#include "runtime/transport/SocketLink.h"
#include "runtime/transport/ThreadedLink.h"
#include <cstring>

using namespace flick;

Transport::~Transport() = default;

std::unique_ptr<Transport> flick::makeTransport(const char *Name,
                                                size_t QueueCap) {
  if (!Name || !std::strcmp(Name, "sharded"))
    return std::unique_ptr<Transport>(new ShardedLink(QueueCap));
  if (!std::strcmp(Name, "threaded"))
    return std::unique_ptr<Transport>(new ThreadedLink(QueueCap));
  if (!std::strcmp(Name, "socket"))
    return std::unique_ptr<Transport>(new SocketLink(QueueCap));
  return nullptr;
}
