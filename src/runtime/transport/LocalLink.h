//===- runtime/transport/LocalLink.h - In-process pump link -----*- C++ -*-===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LocalLink: a deterministic in-process request/reply pair.  The client
/// endpoint's recv "pumps" the registered server when its queue is empty,
/// so examples, goldens, and the fig3-7 benches run on one thread with
/// reproducible interleaving.  A link may carry a NetworkModel + SimClock
/// to account simulated wire time per message (the substitute for the
/// paper's Ethernet/Myrinet/Mach testbeds -- see NetworkModel.h).
///
/// LocalLink is single-threaded by construction and therefore not a
/// flick::Transport; the concurrent transports live beside it in this
/// directory (Transport.h).
///
//===----------------------------------------------------------------------===//

#ifndef FLICK_RUNTIME_TRANSPORT_LOCALLINK_H
#define FLICK_RUNTIME_TRANSPORT_LOCALLINK_H

#include "runtime/Channel.h"
#include "runtime/NetworkModel.h"
#include <cstdint>
#include <deque>
#include <functional>

namespace flick {

/// An in-process bidirectional link with two endpoints.  Endpoint A is the
/// client side, endpoint B the server side.  When A receives with an empty
/// queue, the link invokes the pump callback (typically
/// `flick_server_handle_one`) until a reply appears, keeping everything on
/// one thread and deterministic.  This is the single-threaded mode; for
/// concurrent clients and a worker pool, use a Transport (Transport.h).
class LocalLink {
public:
  LocalLink();
  ~LocalLink();

  /// Attaches a wire-time model; every send advances \p Clock.
  void setModel(NetworkModel Model, SimClock *Clock);

  /// Registers the server pump invoked when the client blocks on recv.
  /// Returning false means "cannot make progress" (transport error).
  void setPump(std::function<bool()> Pump) { this->Pump = std::move(Pump); }

  Channel &clientEnd() { return AEnd; }
  Channel &serverEnd() { return BEnd; }

  /// Messages queued toward the server that it has not received yet.
  size_t pendingToServer() const { return ToB.size(); }

private:
  class End final : public Channel {
  public:
    End(LocalLink &Link, bool IsClient) : Link(Link), IsClient(IsClient) {}
    int send(const uint8_t *Data, size_t Len) override;
    int recv(std::vector<uint8_t> &Out) override;
    int sendv(const flick_iov *Segs, size_t Count) override;
    int recvInto(flick_buf *Into) override;
    void release(flick_buf *Buf) override;

  private:
    LocalLink &Link;
    bool IsClient;
  };

  /// One queued message plus its out-of-band trace context: the sender's
  /// (trace id, span id) ride beside the bytes, never inside them, so
  /// tracing cannot perturb the wire format.  The wire bytes live in a
  /// pool-managed malloc allocation so a receiver can adopt it whole
  /// (recvInto) instead of copying it out.  Corr carries the async
  /// client's correlation id the same out-of-band way (echoed onto the
  /// reply by the server end), so correlation unit tests run on this
  /// deterministic link too.
  struct Msg {
    uint8_t *Data = nullptr;
    size_t Cap = 0;
    size_t Len = 0;
    uint64_t TraceId = 0;
    uint64_t ParentSpan = 0;
    uint32_t Endpoint = 0;
    uint64_t Corr = 0;
  };

  void account(size_t Len);

  std::deque<Msg> ToA; // server -> client
  std::deque<Msg> ToB; // client -> server
  WireBufPool Pool;
  NetworkModel Model = NetworkModel::ideal();
  SimClock *Clock = nullptr;
  std::function<bool()> Pump;
  End AEnd;
  End BEnd;
};

} // namespace flick

#endif // FLICK_RUNTIME_TRANSPORT_LOCALLINK_H
