//===- runtime/transport/ThreadedLink.h - Mutex MPSC transport --*- C++ -*-===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ThreadedLink: the original mutex/condvar transport for the parallel
/// runtime.  Any number of client connections feed one bounded MPSC
/// request queue drained by N worker channels; replies route back over
/// per-connection queues.  Its single queue mutex is the measured ~400K
/// RPC/s ceiling (EXPERIMENTS.md); it is kept behind the Transport seam
/// as the contention-study baseline (`--transport=threaded`), with
/// ShardedLink as the lock-free replacement.
///
//===----------------------------------------------------------------------===//

#ifndef FLICK_RUNTIME_TRANSPORT_THREADEDLINK_H
#define FLICK_RUNTIME_TRANSPORT_THREADEDLINK_H

#include "runtime/transport/Transport.h"
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

namespace flick {

/// The mutex-queue transport: many client connections, one bounded MPSC
/// request queue, N worker channels, per-connection reply queues.
///
/// Thread contract: each channel returned by connect() belongs to one
/// client thread and each channel returned by workerEnd() to one worker
/// thread; only the request queue and the per-connection reply queues are
/// shared (mutex/condvar), so every wire-buffer pool stays lock-free.
/// Telemetry written on a channel's hot path lands in its thread's own
/// thread-local flick_metrics / flick_tracer blocks.
///
/// Backpressure: the request queue is bounded (QueueCap).  A send that
/// finds it full counts one `queue_full` metric event and blocks until a
/// worker drains an entry or the link shuts down.
///
/// Shutdown: shutdown() wakes every waiter.  Workers drain the requests
/// already queued, then their recv fails with FLICK_ERR_TRANSPORT; sends
/// and replies-in-wait fail immediately, so in-flight calls abort -- stop
/// client traffic first for a loss-free drain (flick_server_pool_stop
/// does the link shutdown for you).
///
/// Wire model: setModel() attaches a NetworkModel whose per-message time
/// is slept by the *sender* (outside any lock) instead of advancing a
/// SimClock, so concurrency genuinely overlaps it.  Modeled time is still
/// accounted to the sending thread's wire_time_us and trace ring.
class ThreadedLink final : public Transport {
public:
  explicit ThreadedLink(size_t QueueCap = 256);
  ~ThreadedLink() override;

  /// Attaches a wire-time model; every send sleeps the modeled transit.
  void setModel(NetworkModel Model) override;

  /// Creates a new client connection.  The returned channel (and the
  /// flick_client on top of it) must be used by one thread at a time.
  Channel &connect() override;

  /// Creates a new worker-side channel: recv pops the next request from
  /// any connection, send routes the reply back to that request's
  /// connection.  One per worker thread.
  Channel &workerEnd() override;

  /// Wakes every blocked sender/receiver; see the class comment.
  /// Idempotent.  Call before destroying the link while threads may still
  /// be using it, and join them before the destructor runs.
  void shutdown() override;

  /// Requests queued and not yet picked up by a worker (for tests).
  size_t pendingRequests() const override;

private:
  /// One queued message; bytes live in a pool-managed malloc allocation
  /// and the sender's trace context (including its endpoint tag) rides out
  /// of band, as in LocalLink.  EnqNs stamps when the request entered the
  /// MPSC queue (gauge clock, 0 when neither the flight recorder nor the
  /// sender's tracer is on) so the dequeue side can account the
  /// enqueue-to-dequeue wait.  Corr is the async client's request
  /// correlation id (0 for synchronous callers), riding out of band next
  /// to the trace context so payload bytes never change.
  struct Msg {
    uint8_t *Data = nullptr;
    size_t Cap = 0;
    size_t Len = 0;
    uint64_t TraceId = 0;
    uint64_t ParentSpan = 0;
    uint32_t Endpoint = 0;
    uint64_t EnqNs = 0;
    uint64_t Corr = 0;
  };

  class Conn final : public Channel {
  public:
    explicit Conn(ThreadedLink &Link) : Link(Link) {}
    ~Conn() override;
    int send(const uint8_t *Data, size_t Len) override;
    int recv(std::vector<uint8_t> &Out) override;
    int sendv(const flick_iov *Segs, size_t Count) override;
    int recvInto(flick_buf *Into) override;
    void release(flick_buf *Buf) override;

  private:
    friend class ThreadedLink;
    /// Blocks for the next reply (or shutdown).
    int awaitReply(Msg *M);

    ThreadedLink &Link;
    std::mutex RMu;
    std::condition_variable RCv;
    std::deque<Msg> RepQ;
    WireBufPool Pool;
  };

  class WorkerChan final : public Channel {
  public:
    explicit WorkerChan(ThreadedLink &Link) : Link(Link) {}
    int send(const uint8_t *Data, size_t Len) override;
    int recv(std::vector<uint8_t> &Out) override;
    int sendv(const flick_iov *Segs, size_t Count) override;
    int recvInto(flick_buf *Into) override;
    void release(flick_buf *Buf) override;

  private:
    friend class ThreadedLink;
    /// Finishes an outgoing reply: stamp, sleep, route to CurConn.
    int sendReply(Msg M);

    ThreadedLink &Link;
    Conn *CurConn = nullptr; ///< connection of the last received request
    WireBufPool Pool;
  };

  /// Sleeps the modeled transit time for a \p Len-byte message and
  /// accounts it to the calling thread's telemetry.
  void wireDelay(size_t Len);
  /// Blocking bounded push of a request; FLICK_ERR_TRANSPORT after
  /// shutdown (ownership of M.Data returns to \p From's pool).
  int pushRequest(Conn *From, Msg M);
  /// Blocking pop of the next request; drains the queue even after
  /// shutdown, then fails.
  int popRequest(Conn **From, Msg *M);

  mutable std::mutex QMu;
  std::condition_variable QNotEmpty;
  std::condition_variable QNotFull;
  struct Req {
    Conn *From;
    Msg M;
  };
  std::deque<Req> ReqQ;
  const size_t QueueCap;
  std::atomic<bool> Down{false};

  bool Modeled = false;
  NetworkModel Model = NetworkModel::ideal();

  /// Endpoint storage; guarded by EndsMu during creation only (channels
  /// themselves are owned by their threads afterwards).
  mutable std::mutex EndsMu;
  std::vector<std::unique_ptr<Conn>> Conns;
  std::vector<std::unique_ptr<WorkerChan>> Workers;
};

} // namespace flick

#endif // FLICK_RUNTIME_TRANSPORT_THREADEDLINK_H
