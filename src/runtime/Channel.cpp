//===- runtime/Channel.cpp - Message channel + wire-buffer pool -----------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
// The concrete transports (LocalLink, ThreadedLink, ShardedLink,
// SocketLink) live in runtime/transport/.
//
//===----------------------------------------------------------------------===//

#include "runtime/Channel.h"
#include "runtime/Sampler.h"
#include "runtime/flick_runtime.h"

using namespace flick;

Channel::~Channel() = default;

size_t flick_buf_iovec(const flick_buf *b, flick_iov *iov) {
  size_t n = 0;
  size_t own = 0; // owned bytes already emitted
  for (size_t i = 0; i != b->nrefs; ++i) {
    const flick_buf_ref_ent &E = b->refs[i];
    if (E.own_off > own) {
      iov[n].base = b->data + own;
      iov[n].len = E.own_off - own;
      ++n;
      own = E.own_off;
    }
    iov[n].base = E.base;
    iov[n].len = E.len;
    ++n;
  }
  if (b->len > own) {
    iov[n].base = b->data + own;
    iov[n].len = b->len - own;
    ++n;
  }
  return n;
}

// Default scatter-gather bridges: correct for any transport, at the price
// of one staging copy.  Every transport in runtime/transport/ overrides
// them (a single pooled copy, a move, or -- for SocketLink -- a direct
// sendmsg gather with no staging at all).

int Channel::sendv(const flick_iov *Segs, size_t Count) {
  size_t Total = 0;
  for (size_t i = 0; i != Count; ++i)
    Total += Segs[i].len;
  std::vector<uint8_t> Flat(Total);
  size_t Off = 0;
  for (size_t i = 0; i != Count; ++i) {
    std::memcpy(Flat.data() + Off, Segs[i].base, Segs[i].len);
    Off += Segs[i].len;
  }
  if (flick_metrics_active) {
    flick_metrics_active->bytes_copied += Total;
    ++flick_metrics_active->copy_ops;
  }
  return send(Flat.data(), Flat.size());
}

int Channel::recvInto(flick_buf *Into) {
  std::vector<uint8_t> Msg;
  if (int err = recv(Msg))
    return err;
  flick_buf_reset(Into);
  if (int err = flick_buf_ensure(Into, Msg.size()))
    return err;
  std::memcpy(Into->data, Msg.data(), Msg.size());
  Into->len = Msg.size();
  if (flick_metrics_active) {
    flick_metrics_active->bytes_copied += Msg.size();
    ++flick_metrics_active->copy_ops;
  }
  return FLICK_OK;
}

void Channel::release(flick_buf *) {}

int Channel::sendBatch(const flick_iov *const *Segs, const size_t *Counts,
                       size_t NMsgs) {
  for (size_t I = 0; I != NMsgs; ++I)
    if (int Err = sendv(Segs[I], Counts[I]))
      return Err;
  return FLICK_OK;
}

//===----------------------------------------------------------------------===//
// WireBufPool
//===----------------------------------------------------------------------===//

WireBufPool::~WireBufPool() {
  flick_gauge_sub(&flick_gauges::pool_buffers, Count);
  for (size_t I = 0; I != Count; ++I)
    std::free(Bufs[I].Data);
}

uint8_t *WireBufPool::acquire(size_t Need, size_t *Cap) {
  for (size_t I = 0; I != Count; ++I) {
    if (Bufs[I].Cap >= Need) {
      uint8_t *Data = Bufs[I].Data;
      *Cap = Bufs[I].Cap;
      Bufs[I] = Bufs[--Count];
      flick_metric_add(&flick_metrics::pool_hits, 1);
      flick_gauge_add(&flick_gauges::pool_gauge_hits, 1);
      flick_gauge_sub(&flick_gauges::pool_buffers, 1);
      return Data;
    }
  }
  flick_metric_add(&flick_metrics::pool_misses, 1);
  flick_gauge_add(&flick_gauges::pool_gauge_misses, 1);
  size_t C = Need ? Need : 1;
  *Cap = C;
  return static_cast<uint8_t *>(std::malloc(C));
}

void WireBufPool::release(uint8_t *Data, size_t Cap) {
  if (!Data)
    return;
  if (Count < MaxBufs) {
    Bufs[Count].Data = Data;
    Bufs[Count].Cap = Cap;
    ++Count;
    flick_gauge_add(&flick_gauges::pool_buffers, 1);
    return;
  }
  std::free(Data);
}

//===----------------------------------------------------------------------===//
// C shims used by generated code
//===----------------------------------------------------------------------===//

int flick_channel_send(flick_channel *ch, const uint8_t *data, size_t len) {
  return ch->send(data, len);
}

int flick_channel_sendv(flick_channel *ch, const flick_iov *segs,
                        size_t count) {
  return ch->sendv(segs, count);
}

int flick_channel_recv(flick_channel *ch, flick_buf *into) {
  return ch->recvInto(into);
}

void flick_channel_release(flick_channel *ch, flick_buf *buf) {
  ch->release(buf);
}
