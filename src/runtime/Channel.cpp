//===- runtime/Channel.cpp - Transport channels ---------------------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "runtime/Channel.h"
#include "runtime/flick_runtime.h"

using namespace flick;

Channel::~Channel() = default;

size_t flick_buf_iovec(const flick_buf *b, flick_iov *iov) {
  size_t n = 0;
  size_t own = 0; // owned bytes already emitted
  for (size_t i = 0; i != b->nrefs; ++i) {
    const flick_buf_ref_ent &E = b->refs[i];
    if (E.own_off > own) {
      iov[n].base = b->data + own;
      iov[n].len = E.own_off - own;
      ++n;
      own = E.own_off;
    }
    iov[n].base = E.base;
    iov[n].len = E.len;
    ++n;
  }
  if (b->len > own) {
    iov[n].base = b->data + own;
    iov[n].len = b->len - own;
    ++n;
  }
  return n;
}

// Default scatter-gather bridges: correct for any transport, at the price
// of one staging copy.  Transports that own their message storage override
// these (LocalLink below does both with a single pooled copy / a move).

int Channel::sendv(const flick_iov *Segs, size_t Count) {
  size_t Total = 0;
  for (size_t i = 0; i != Count; ++i)
    Total += Segs[i].len;
  std::vector<uint8_t> Flat(Total);
  size_t Off = 0;
  for (size_t i = 0; i != Count; ++i) {
    std::memcpy(Flat.data() + Off, Segs[i].base, Segs[i].len);
    Off += Segs[i].len;
  }
  if (flick_metrics_active) {
    flick_metrics_active->bytes_copied += Total;
    ++flick_metrics_active->copy_ops;
  }
  return send(Flat.data(), Flat.size());
}

int Channel::recvInto(flick_buf *Into) {
  std::vector<uint8_t> Msg;
  if (int err = recv(Msg))
    return err;
  flick_buf_reset(Into);
  if (int err = flick_buf_ensure(Into, Msg.size()))
    return err;
  std::memcpy(Into->data, Msg.data(), Msg.size());
  Into->len = Msg.size();
  if (flick_metrics_active) {
    flick_metrics_active->bytes_copied += Msg.size();
    ++flick_metrics_active->copy_ops;
  }
  return FLICK_OK;
}

void Channel::release(flick_buf *) {}

LocalLink::LocalLink() : AEnd(*this, true), BEnd(*this, false) {}

LocalLink::~LocalLink() {
  for (std::deque<Msg> *Q : {&ToA, &ToB})
    for (Msg &M : *Q)
      std::free(M.Data);
  for (size_t i = 0; i != PoolCount; ++i)
    std::free(Pool[i].Data);
}

void LocalLink::setModel(NetworkModel Model, SimClock *Clock) {
  this->Model = std::move(Model);
  this->Clock = Clock;
}

void LocalLink::account(size_t Len) {
  if (!Clock)
    return;
  double Us = Model.wireTimeUs(Len);
  Clock->advance(Us);
  if (flick_metrics_active)
    flick_metrics_active->wire_time_us += Us;
  // The modeled transit time is already known, so it is recorded as a
  // completed child span of whatever send is in flight.
  if (flick_trace_active)
    flick_trace_record_complete(FLICK_SPAN_WIRE, "wire", Us);
}

uint8_t *LocalLink::poolAcquire(size_t Need, size_t *Cap) {
  for (size_t i = 0; i != PoolCount; ++i) {
    if (Pool[i].Cap >= Need) {
      uint8_t *Data = Pool[i].Data;
      *Cap = Pool[i].Cap;
      Pool[i] = Pool[--PoolCount];
      flick_metric_add(&flick_metrics::pool_hits, 1);
      return Data;
    }
  }
  flick_metric_add(&flick_metrics::pool_misses, 1);
  size_t C = Need ? Need : 1;
  *Cap = C;
  return static_cast<uint8_t *>(std::malloc(C));
}

void LocalLink::poolRelease(uint8_t *Data, size_t Cap) {
  if (!Data)
    return;
  if (PoolCount < PoolMaxBufs) {
    Pool[PoolCount].Data = Data;
    Pool[PoolCount].Cap = Cap;
    ++PoolCount;
    return;
  }
  std::free(Data);
}

int LocalLink::End::send(const uint8_t *Data, size_t Len) {
  Msg M;
  M.Data = Link.poolAcquire(Len, &M.Cap);
  if (!M.Data) {
    flick_metric_add(&flick_metrics::alloc_errors, 1);
    return FLICK_ERR_TRANSPORT;
  }
  std::memcpy(M.Data, Data, Len);
  M.Len = Len;
  if (flick_metrics_active) {
    flick_metrics_active->bytes_copied += Len;
    ++flick_metrics_active->copy_ops;
  }
  if (flick_trace_active)
    flick_trace_stamp(&M.TraceId, &M.ParentSpan);
  Link.account(Len);
  (IsClient ? Link.ToB : Link.ToA).push_back(M);
  return FLICK_OK;
}

int LocalLink::End::sendv(const flick_iov *Segs, size_t Count) {
  size_t Total = 0;
  for (size_t i = 0; i != Count; ++i)
    Total += Segs[i].len;
  Msg M;
  M.Data = Link.poolAcquire(Total, &M.Cap);
  if (!M.Data) {
    flick_metric_add(&flick_metrics::alloc_errors, 1);
    return FLICK_ERR_TRANSPORT;
  }
  size_t Off = 0;
  for (size_t i = 0; i != Count; ++i) {
    std::memcpy(M.Data + Off, Segs[i].base, Segs[i].len);
    Off += Segs[i].len;
  }
  M.Len = Total;
  if (flick_metrics_active) {
    flick_metrics_active->bytes_copied += Total;
    ++flick_metrics_active->copy_ops;
  }
  if (flick_trace_active)
    flick_trace_stamp(&M.TraceId, &M.ParentSpan);
  Link.account(Total);
  (IsClient ? Link.ToB : Link.ToA).push_back(M);
  return FLICK_OK;
}

int LocalLink::End::recv(std::vector<uint8_t> &Out) {
  auto &Queue = IsClient ? Link.ToA : Link.ToB;
  // The client side synchronously pumps the server until a reply shows up;
  // the server side simply fails when no request is pending.
  while (Queue.empty()) {
    if (!IsClient || !Link.Pump || !Link.Pump())
      return FLICK_ERR_TRANSPORT;
  }
  Msg M = Queue.front();
  Queue.pop_front();
  if (flick_trace_active)
    flick_trace_deposit(M.TraceId, M.ParentSpan);
  Out.assign(M.Data, M.Data + M.Len);
  if (flick_metrics_active) {
    flick_metrics_active->bytes_copied += M.Len;
    ++flick_metrics_active->copy_ops;
  }
  Link.poolRelease(M.Data, M.Cap);
  return FLICK_OK;
}

int LocalLink::End::recvInto(flick_buf *Into) {
  auto &Queue = IsClient ? Link.ToA : Link.ToB;
  while (Queue.empty()) {
    if (!IsClient || !Link.Pump || !Link.Pump())
      return FLICK_ERR_TRANSPORT;
  }
  Msg M = Queue.front();
  Queue.pop_front();
  if (flick_trace_active)
    flick_trace_deposit(M.TraceId, M.ParentSpan);
  // Hand the pooled wire buffer to the caller whole and park the caller's
  // old allocation for the next send: the receive itself copies nothing.
  // Legal because flick_buf manages data with realloc/free and the pool
  // allocates with malloc.
  flick_buf_reset(Into);
  Link.poolRelease(Into->data, Into->cap);
  Into->data = M.Data;
  Into->cap = M.Cap;
  Into->len = M.Len;
  Into->pos = 0;
  return FLICK_OK;
}

void LocalLink::End::release(flick_buf *Buf) {
  // Reclaim the adopted wire storage the moment its reader is done with
  // it: the next send then refills this same (cache-hot) allocation.
  // Without the early release two buffers alternate -- one adopted, one
  // filling -- doubling the transport's cache footprint per direction.
  Link.poolRelease(Buf->data, Buf->cap);
  Buf->data = nullptr;
  Buf->cap = 0;
  Buf->len = 0;
  Buf->pos = 0;
}

//===----------------------------------------------------------------------===//
// C shims used by generated code
//===----------------------------------------------------------------------===//

int flick_channel_send(flick_channel *ch, const uint8_t *data, size_t len) {
  return ch->send(data, len);
}

int flick_channel_sendv(flick_channel *ch, const flick_iov *segs,
                        size_t count) {
  return ch->sendv(segs, count);
}

int flick_channel_recv(flick_channel *ch, flick_buf *into) {
  return ch->recvInto(into);
}

void flick_channel_release(flick_channel *ch, flick_buf *buf) {
  ch->release(buf);
}
