//===- runtime/Channel.cpp - Transport channels ---------------------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "runtime/Channel.h"
#include "runtime/flick_runtime.h"

using namespace flick;

Channel::~Channel() = default;

LocalLink::LocalLink() : AEnd(*this, true), BEnd(*this, false) {}

void LocalLink::setModel(NetworkModel Model, SimClock *Clock) {
  this->Model = std::move(Model);
  this->Clock = Clock;
}

void LocalLink::account(size_t Len) {
  if (!Clock)
    return;
  double Us = Model.wireTimeUs(Len);
  Clock->advance(Us);
  if (flick_metrics_active)
    flick_metrics_active->wire_time_us += Us;
  // The modeled transit time is already known, so it is recorded as a
  // completed child span of whatever send is in flight.
  if (flick_trace_active)
    flick_trace_record_complete(FLICK_SPAN_WIRE, "wire", Us);
}

int LocalLink::End::send(const uint8_t *Data, size_t Len) {
  Msg M;
  M.Bytes.assign(Data, Data + Len);
  if (flick_trace_active)
    flick_trace_stamp(&M.TraceId, &M.ParentSpan);
  Link.account(Len);
  (IsClient ? Link.ToB : Link.ToA).push_back(std::move(M));
  return FLICK_OK;
}

int LocalLink::End::recv(std::vector<uint8_t> &Out) {
  auto &Queue = IsClient ? Link.ToA : Link.ToB;
  // The client side synchronously pumps the server until a reply shows up;
  // the server side simply fails when no request is pending.
  while (Queue.empty()) {
    if (!IsClient || !Link.Pump || !Link.Pump())
      return FLICK_ERR_TRANSPORT;
  }
  Msg M = std::move(Queue.front());
  Queue.pop_front();
  if (flick_trace_active)
    flick_trace_deposit(M.TraceId, M.ParentSpan);
  Out = std::move(M.Bytes);
  return FLICK_OK;
}

//===----------------------------------------------------------------------===//
// C shims used by generated code
//===----------------------------------------------------------------------===//

int flick_channel_send(flick_channel *ch, const uint8_t *data, size_t len) {
  return ch->send(data, len);
}

int flick_channel_recv(flick_channel *ch, flick_buf *into) {
  std::vector<uint8_t> msg;
  if (int err = ch->recv(msg))
    return err;
  flick_buf_reset(into);
  if (int err = flick_buf_ensure(into, msg.size()))
    return err;
  std::memcpy(into->data, msg.data(), msg.size());
  into->len = msg.size();
  return FLICK_OK;
}
