//===- runtime/NetworkModel.h - Simulated transport timing ------*- C++ -*-===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The substitute for the paper's physical testbed (two SPARCstation 20s on
/// 10/100 Mbps Ethernet and 640 Mbps Myrinet; a Pentium running Mach 3).
/// A NetworkModel converts message sizes into simulated wire microseconds;
/// a SimClock accumulates them.  End-to-end benches combine *measured*
/// marshal/unmarshal CPU time with *modeled* wire time, which reproduces the
/// paper's central effect: the slower the network, the less stub speed
/// matters (Figure 4), and the faster the network, the more it dominates
/// (Figures 5-7).  Default effective bandwidths are the paper's own ttcp
/// measurements (70 Mbps on 100 Mbps Ethernet, 84.5 Mbps on Myrinet).
///
//===----------------------------------------------------------------------===//

#ifndef FLICK_RUNTIME_NETWORKMODEL_H
#define FLICK_RUNTIME_NETWORKMODEL_H

#include <cstddef>
#include <string>

namespace flick {

/// Timing model for one transport medium.
struct NetworkModel {
  std::string Name;
  /// Post-protocol-stack payload bandwidth, bits per second.
  double EffectiveBitsPerSec = 0;
  /// Fixed per-message cost (system calls, protocol processing, interrupt),
  /// microseconds, charged once per message per side.
  double PerMsgOverheadUs = 0;
  /// Maximum transfer unit; messages are segmented into packets.
  size_t MtuBytes = 1500;
  /// Additional per-packet cost (header processing), microseconds.
  double PerPacketOverheadUs = 0;

  /// Simulated microseconds to move \p Bytes across this medium.
  double wireTimeUs(size_t Bytes) const;

  /// 10 Mbps Ethernet: the paper measured all compilers capped near
  /// 6-7.5 Mbps here, so the wire utterly dominates.
  static NetworkModel ethernet10();
  /// 100 Mbps Ethernet with the paper's measured 70 Mbps effective ceiling.
  static NetworkModel ethernet100();
  /// 640 Mbps Myrinet with the paper's measured 84.5 Mbps effective
  /// ceiling (limited by the OS protocol stack, per the paper).
  static NetworkModel myrinet640();
  /// Mach 3 IPC on the paper's 100 MHz Pentium: no wire, but a significant
  /// per-message kernel cost and memory-bandwidth-limited copying.
  static NetworkModel machIpc();
  /// Fluke kernel IPC: small messages ride in registers (near-zero cost
  /// below one register window), larger ones pay a copy.
  static NetworkModel flukeIpc();
  /// Ideal transport: zero cost; isolates stub CPU time.
  static NetworkModel ideal();
};

/// Accumulates simulated time alongside real (measured) time.
class SimClock {
public:
  void advance(double Us) { TotalUs += Us; }
  void reset() { TotalUs = 0; }
  double totalUs() const { return TotalUs; }

private:
  double TotalUs = 0;
};

} // namespace flick

#endif // FLICK_RUNTIME_NETWORKMODEL_H
