//===- runtime/Sampler.h - Runtime flight recorder --------------*- C++ -*-===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime flight recorder: always-compiled, off-by-default
/// time-series telemetry for the RPC runtime.  Three pieces:
///
///  - `flick_gauges`: one process-global block of relaxed atomics updated
///    at the places the known bottlenecks live -- ThreadedLink queue depth
///    and enqueue->dequeue wait, time blocked acquiring the MPSC queue
///    mutex, in-flight RPC count, WireBufPool occupancy and hit rate, and
///    worker busy time in flick_server_pool.  Every update site is guarded
///    by one relaxed flag load (`flick_gauges_on()`), so a build with the
///    recorder idle pays a predictable test-and-branch, the same idiom as
///    `flick_metrics` / `flick_trace`.  Unlike those, the block is shared
///    -- gauges exist to be read *live* from another thread.
///
///  - `flick_sampler`: a background thread that wakes on a fixed interval
///    and snapshots the gauges (plus, optionally, a watched flick_metrics
///    block) into a fixed-size single-writer ring.  Readers never block
///    the sampler: the ring publishes through one atomic head counter,
///    and a reader that races a wrap simply re-reads.  Exports: JSONL
///    time series (one object per sample with per-interval rates), Chrome
///    trace *counter* events ("ph":"C") that interleave with the span
///    tracer's timeline, and a post-mortem JSON dump of the whole ring.
///
///  - the stall watchdog: client invokes stamp a start time into a small
///    lock-free slot table; each sampler tick scans it and flags RPCs in
///    flight past a configurable deadline, bumping `stalls_detected` and
///    dumping the ring as post-mortem JSON so a hang under load leaves
///    evidence behind.
///
/// Prometheus text exposition of the metrics block plus the live gauges
/// lives beside this (`flick_metrics_to_prometheus`); bench binaries dump
/// it when FLICK_METRICS_PROM names a path.
///
//===----------------------------------------------------------------------===//

#ifndef FLICK_RUNTIME_SAMPLER_H
#define FLICK_RUNTIME_SAMPLER_H

#include <atomic>
#include <cstdint>
#include <string>

struct flick_metrics;
struct flick_tracer;

//===----------------------------------------------------------------------===//
// Gauges
//===----------------------------------------------------------------------===//

/// Process-global contention and utilization gauges.  All fields are
/// relaxed atomics: single writes are exact, cross-field reads are
/// individually coherent but not a consistent cut -- exactly what a
/// telemetry sampler needs and nothing more.  Instantaneous gauges
/// (queue_depth, inflight_rpcs, ...) move both ways; cumulative ones only
/// grow, and the sampler turns them into per-interval rates.
/// Per-shard occupancy slots exported by ShardedLink (shard i reports in
/// slot i mod FLICK_GAUGE_SHARD_SLOTS; the default shard counts fit
/// without aliasing).
enum { FLICK_GAUGE_SHARD_SLOTS = 8 };

struct flick_gauges {
  // Instantaneous.
  std::atomic<uint64_t> queue_depth{0};    ///< transport requests queued
  std::atomic<uint64_t> inflight_rpcs{0};  ///< client invokes in flight
  std::atomic<uint64_t> pool_buffers{0};   ///< wire buffers parked in pools
  std::atomic<uint64_t> workers_busy{0};   ///< servers inside dispatch now
  std::atomic<uint64_t> workers_running{0};///< live pool worker threads
  // Cumulative.
  std::atomic<uint64_t> rpcs_completed{0}; ///< client invokes finished
  std::atomic<uint64_t> queue_enqueues{0}; ///< requests pushed to the MPSC queue
  std::atomic<uint64_t> queue_dequeues{0}; ///< requests popped by workers
  std::atomic<uint64_t> queue_wait_ns{0};  ///< total enqueue->dequeue wait
  std::atomic<uint64_t> lock_wait_ns{0};   ///< total time blocked acquiring QMu
  std::atomic<uint64_t> lock_acquires{0};  ///< timed QMu acquisitions
  std::atomic<uint64_t> queue_full_waits{0}; ///< sends that met a full queue
  std::atomic<uint64_t> pool_gauge_hits{0};  ///< pooled wire buffers reused
  std::atomic<uint64_t> pool_gauge_misses{0};///< pool empty: fresh malloc
  std::atomic<uint64_t> worker_busy_ns{0}; ///< total time servers spent dispatching
  std::atomic<uint64_t> stalls_detected{0};///< watchdog deadline violations
  // Sharded transport (the lock-free analogues of lock_wait_ns).
  std::atomic<uint64_t> ring_wait_ns{0};   ///< senders blocked on a full ring
  std::atomic<uint64_t> steals{0};         ///< cross-shard request pops
  // Socket transport.
  std::atomic<uint64_t> sock_syscalls{0};  ///< sendmsg/recv/epoll_wait issued
  std::atomic<uint64_t> sock_eagain{0};    ///< EAGAIN retries on the send path
  // Async pipelined client: submits that found the flow-control window
  // full (and either pumped a completion or failed fast).
  std::atomic<uint64_t> window_stalls{0};
  // Instantaneous per-shard occupancy (ShardedLink).
  std::atomic<uint64_t> shard_depth[FLICK_GAUGE_SHARD_SLOTS] = {};
  /// Shard slots actually in use by the live ShardedLink (<= the slot
  /// count).  Exporters average occupancy over this many slots instead of
  /// all FLICK_GAUGE_SHARD_SLOTS, so a 4-shard run is not diluted by four
  /// permanently-zero slots.  0 when no sharded link has reported.
  std::atomic<uint64_t> shard_slots_live{0};
};

/// The global gauge block (always present; cold when recording is off).
extern flick_gauges flick_gauges_global;

/// Nonzero while a sampler (or an explicit enable) wants gauge updates.
extern std::atomic<int> flick_gauges_enabled;

inline bool flick_gauges_on() {
  return flick_gauges_enabled.load(std::memory_order_relaxed) != 0;
}

/// Turns gauge updates on/off process-wide.  flick_sampler_start/stop do
/// this for you; tests use it directly.  Enabling zeroes the block so
/// instantaneous gauges cannot inherit an unbalanced count from a
/// previous session.
void flick_gauges_enable();
void flick_gauges_disable();

/// Nanoseconds on the shared monotonic gauge clock (epoch = first use).
uint64_t flick_gauge_now_ns();

inline void flick_gauge_add(std::atomic<uint64_t> flick_gauges::*F,
                            uint64_t V) {
  if (flick_gauges_on())
    (flick_gauges_global.*F).fetch_add(V, std::memory_order_relaxed);
}

/// Decrement that saturates at zero, so a gauge enabled mid-conversation
/// (inc unseen, dec seen) degrades to a brief undercount instead of
/// wrapping to 2^64.
inline void flick_gauge_sub(std::atomic<uint64_t> flick_gauges::*F,
                            uint64_t V) {
  if (!flick_gauges_on())
    return;
  std::atomic<uint64_t> &G = flick_gauges_global.*F;
  uint64_t Cur = G.load(std::memory_order_relaxed);
  while (Cur != 0 &&
         !G.compare_exchange_weak(Cur, Cur > V ? Cur - V : 0,
                                  std::memory_order_relaxed))
    ;
}

/// Lock-wait bracket: `t0 = flick_gauge_lock_begin()` before a mutex
/// acquisition, `flick_gauge_lock_end(t0)` once it is held.  Returns 0
/// (and the end is a no-op) when gauges are off, so the off cost is one
/// relaxed load per bracket.
inline uint64_t flick_gauge_lock_begin() {
  return flick_gauges_on() ? flick_gauge_now_ns() : 0;
}
void flick_gauge_lock_end(uint64_t t0_ns);

/// Per-shard occupancy updates (slot = shard index mod the slot count);
/// the decrement saturates at zero like flick_gauge_sub.
inline void flick_gauge_shard_add(size_t Shard, uint64_t V) {
  if (flick_gauges_on())
    flick_gauges_global.shard_depth[Shard % FLICK_GAUGE_SHARD_SLOTS].fetch_add(
        V, std::memory_order_relaxed);
}
inline void flick_gauge_shard_sub(size_t Shard, uint64_t V) {
  if (!flick_gauges_on())
    return;
  std::atomic<uint64_t> &G =
      flick_gauges_global.shard_depth[Shard % FLICK_GAUGE_SHARD_SLOTS];
  uint64_t Cur = G.load(std::memory_order_relaxed);
  while (Cur != 0 &&
         !G.compare_exchange_weak(Cur, Cur > V ? Cur - V : 0,
                                  std::memory_order_relaxed))
    ;
}

//===----------------------------------------------------------------------===//
// Stall watchdog slots
//===----------------------------------------------------------------------===//

/// In-flight RPC start times for the watchdog, one slot per client
/// thread (assigned round-robin; with more threads than slots two threads
/// share one and the watchdog merely loses sight of one of them -- it
/// never reports a false stall for an RPC that completed, because
/// completion clears the slot).
enum { FLICK_STALL_SLOTS = 256 };

/// Marks the calling thread's slot "RPC started now"; returns the slot
/// index, or -1 when gauges are off.
int flick_stall_mark_begin();

/// Clears \p slot (RPC completed).  Negative slots are ignored.
void flick_stall_mark_end(int slot);

//===----------------------------------------------------------------------===//
// Samples
//===----------------------------------------------------------------------===//

/// One flight-recorder sample: a timestamp plus raw gauge snapshots
/// (cumulative fields stay cumulative; exporters derive per-interval
/// rates from consecutive samples) and an optional watched-metrics
/// excerpt.
struct flick_sample {
  double t_us = 0; ///< since sampler start
  // Instantaneous gauges.
  uint64_t queue_depth = 0;
  uint64_t inflight_rpcs = 0;
  uint64_t pool_buffers = 0;
  uint64_t workers_busy = 0;
  uint64_t workers_running = 0;
  uint64_t stalled_rpcs = 0; ///< in flight past the deadline at this tick
  // Cumulative gauges.
  uint64_t rpcs_completed = 0;
  uint64_t queue_enqueues = 0;
  uint64_t queue_dequeues = 0;
  uint64_t queue_wait_ns = 0;
  uint64_t lock_wait_ns = 0;
  uint64_t lock_acquires = 0;
  uint64_t queue_full_waits = 0;
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;
  uint64_t worker_busy_ns = 0;
  uint64_t stalls_detected = 0;
  uint64_t ring_wait_ns = 0;
  uint64_t steals = 0;
  uint64_t sock_syscalls = 0;
  uint64_t sock_eagain = 0;
  uint64_t window_stalls = 0;
  uint64_t shard_depth_max = 0; ///< deepest shard slot at this tick
  uint64_t shard_slots_live = 0; ///< shard slots in use (0: none reported)
  double shard_depth_avg = 0; ///< mean occupancy over the live slots only
  // Watched flick_metrics excerpt (zero when nothing is watched).
  uint64_t m_rpcs_sent = 0;
  uint64_t m_rpcs_handled = 0;
  uint64_t m_request_bytes = 0;
  uint64_t m_queue_full = 0;
  // SLO counters summed over the watched block's per-endpoint anatomy
  // table (zero when nothing is watched or no SLO is configured).
  uint64_t slo_met = 0;
  uint64_t slo_violated = 0;
};

//===----------------------------------------------------------------------===//
// The sampler
//===----------------------------------------------------------------------===//

struct flick_sampler_opts {
  double interval_us = 1000.0;  ///< sampling period (default 1 ms)
  uint32_t ring_cap = 8192;     ///< samples retained (oldest overwritten)
  double stall_deadline_us = 0; ///< 0 disables the watchdog
  /// When the watchdog fires, the whole ring is dumped here as JSON (once
  /// per sampler session).  Null: no post-mortem file.
  const char *postmortem_path = nullptr;
};

/// Starts the background sampler (one per process) and enables gauges.
/// Returns FLICK_OK, or FLICK_ERR_ALLOC when already running / opts are
/// unusable.  \p opts null means defaults.
int flick_sampler_start(const flick_sampler_opts *opts);

/// Stops the sampler thread (taking one final sample), disables gauges,
/// and keeps the ring readable until the next start.
void flick_sampler_stop();

int flick_sampler_running();

/// Registers \p m to be excerpted into each sample.  The sampler reads
/// the watched fields with relaxed atomic loads while the owning thread
/// writes them plainly: values may lag by a store but are never torn.
/// Watch only a block that outlives the sampler session; null clears.
void flick_sampler_watch(flick_metrics *m);

/// Samples currently readable (after stop, or racily while running).
size_t flick_sampler_count();

/// Copies the \p i-th retained sample, oldest first.  Returns false when
/// \p i is out of range or the slot was overwritten mid-read (caller
/// skips it).
int flick_sampler_get(size_t i, flick_sample *out);

/// Watchdog detections so far this session.
uint64_t flick_sampler_stalls();

/// JSONL time series: one JSON object per line per sample, cumulative
/// fields rendered as per-interval rates (rpc/s, mean queue wait us,
/// lock-wait and worker-busy fractions of the interval, pool hit rate)
/// beside the instantaneous gauges.  First line is a header object with
/// the build info and sampler configuration.
std::string flick_sampler_to_jsonl();

/// The whole ring as one JSON document {"build": ..., "config": ...,
/// "stalls_detected": N, "samples": [...]} -- the post-mortem format.
std::string flick_sampler_to_json(const char *indent = "  ");

/// Chrome trace counter events ("ph":"C"), one per series per sample,
/// rendered as a comma-separated fragment ready to splice into a
/// traceEvents array.  \p epoch_offset_us is added to every timestamp --
/// pass flick_sampler_epoch_offset_us(tracer) to land the counters on a
/// span tracer's timeline.  Empty string when no samples exist.
std::string flick_sampler_chrome_counters(double epoch_offset_us);

/// Microseconds from \p t's epoch to the sampler's start (positive when
/// the sampler started after the tracer).  0 when either is absent.
double flick_sampler_epoch_offset_us(const flick_tracer *t);

//===----------------------------------------------------------------------===//
// Prometheus text exposition
//===----------------------------------------------------------------------===//

/// Renders \p m (may be null: gauges only) plus the global gauge block in
/// the Prometheus text exposition format: HELP/TYPE comment pairs,
/// `flick_*_total` counters, `flick_*` gauges, the rpc_latency histogram
/// as a cumulative `flick_rpc_latency_seconds` histogram, and one
/// `flick_build_info{...} 1` info metric.  When \p m carries per-endpoint
/// anatomy, `flick_slo_met_total` / `flick_slo_violated_total` counter
/// families labeled by endpoint are emitted for every endpoint with a
/// configured objective.  \p exemplars (optional) attaches OpenMetrics
/// exemplar annotations -- ` # {trace_id="...",endpoint="..."} <secs>` --
/// to the latency histogram's bucket lines, one per bucket at most,
/// drawn from the tracer's tail-exemplar reservoir.
std::string flick_metrics_to_prometheus(const flick_metrics *m,
                                        const flick_tracer *exemplars =
                                            nullptr);

#endif // FLICK_RUNTIME_SAMPLER_H
