//===- runtime/Runtime.cpp - Out-of-line runtime pieces -------------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "runtime/flick_runtime.h"
#include "runtime/Channel.h"
#include "runtime/Sampler.h"

int flick_buf_grow(flick_buf *b, size_t need) {
  size_t want = b->len + need;
  size_t cap = b->cap ? b->cap : size_t(FLICK_BUF_MIN_CAP);
  while (cap < want)
    cap *= 2;
  flick_metric_add(&flick_metrics::buf_grows, 1);
  uint8_t *data = static_cast<uint8_t *>(std::realloc(b->data, cap));
  if (!data) {
    flick_metric_add(&flick_metrics::alloc_errors, 1);
    return FLICK_ERR_ALLOC;
  }
  b->data = data;
  b->cap = cap;
  return FLICK_OK;
}

void flick_swap_copy_u16(uint8_t *dst, const uint8_t *src, size_t halves) {
  for (size_t i = 0; i != halves; ++i)
    flick_enc_u16be(dst + 2 * i, flick_dec_u16le(src + 2 * i));
}

void flick_swap_copy_u32(uint8_t *dst, const uint8_t *src, size_t words) {
  for (size_t i = 0; i != words; ++i)
    flick_enc_u32be(dst + 4 * i, flick_dec_u32le(src + 4 * i));
}

void flick_swap_copy_u64(uint8_t *dst, const uint8_t *src, size_t dwords) {
  for (size_t i = 0; i != dwords; ++i)
    flick_enc_u64be(dst + 8 * i, flick_dec_u64le(src + 8 * i));
}

namespace {
/// Sends \p b over \p ch, as scatter-gather segments when the buffer
/// carries borrowed spans (gathered marshaling) and as flat bytes
/// otherwise.  The flat path is byte-for-byte the pre-gather behavior.
int sendBuf(flick_channel *ch, const flick_buf *b) {
  if (b->nrefs) {
    flick_iov iov[2 * FLICK_BUF_MAX_REFS + 1];
    size_t n = flick_buf_iovec(b, iov);
    return flick_channel_sendv(ch, iov, n);
  }
  return flick_channel_send(ch, b->data, b->len);
}

/// Flight-recorder bracket around one client invoke: in-flight count and
/// the watchdog's start stamp on entry; completion count, stamp clear, and
/// in-flight decrement on every exit path.  Costs one relaxed flag load
/// when the recorder is off.
struct InvokeGauge {
  int Slot = -1;
  bool On = false;
  InvokeGauge() {
    if (!flick_gauges_on())
      return;
    On = true;
    flick_gauges_global.inflight_rpcs.fetch_add(1, std::memory_order_relaxed);
    Slot = flick_stall_mark_begin();
  }
  ~InvokeGauge() {
    if (!On)
      return;
    flick_stall_mark_end(Slot);
    flick_gauge_sub(&flick_gauges::inflight_rpcs, 1);
    flick_gauge_add(&flick_gauges::rpcs_completed, 1);
  }
};

/// Busy bracket around one server dispatch (receive-to-reply): workers_busy
/// while inside, worker_busy_ns accumulated on exit, so the sampler can
/// derive per-interval busy fractions for the pool.
struct BusyGauge {
  uint64_t T0 = 0;
  bool On = false;
  BusyGauge() {
    if (!flick_gauges_on())
      return;
    On = true;
    T0 = flick_gauge_now_ns();
    flick_gauge_add(&flick_gauges::workers_busy, 1);
  }
  ~BusyGauge() {
    if (!On)
      return;
    flick_gauge_sub(&flick_gauges::workers_busy, 1);
    uint64_t Now = flick_gauge_now_ns();
    flick_gauges_global.worker_busy_ns.fetch_add(
        Now > T0 ? Now - T0 : 0, std::memory_order_relaxed);
  }
};

/// Header linking retired arena blocks; block data follows the header.
/// 16-byte alignment keeps the data area aligned for any presented type.
struct alignas(16) ArenaBlock {
  ArenaBlock *next;
};

void freeRetired(flick_arena *a) {
  auto *B = static_cast<ArenaBlock *>(a->retired);
  while (B) {
    ArenaBlock *Next = B->next;
    std::free(B);
    B = Next;
  }
  a->retired = nullptr;
}
} // namespace

void flick_arena_reset(flick_arena *a) {
  flick_metric_max(&flick_metrics::arena_high_water, a->used);
  freeRetired(a);
  a->used = 0;
}

void flick_arena_destroy(flick_arena *a) {
  flick_metric_max(&flick_metrics::arena_high_water, a->used);
  freeRetired(a);
  if (a->base)
    std::free(reinterpret_cast<uint8_t *>(a->base) - sizeof(ArenaBlock));
  *a = flick_arena{};
}

void *flick_arena_grow_alloc(flick_arena *a, size_t n) {
  // Existing allocations stay valid: retire the current block and open a
  // bigger one.
  size_t cap = a->cap ? a->cap * 2 : 4096;
  while (cap < n + 16)
    cap *= 2;
  flick_metric_add(&flick_metrics::arena_grows, 1);
  auto *Blk = static_cast<ArenaBlock *>(std::malloc(sizeof(ArenaBlock) + cap));
  if (!Blk) {
    flick_metric_add(&flick_metrics::alloc_errors, 1);
    return nullptr;
  }
  if (a->base) {
    auto *Old = reinterpret_cast<ArenaBlock *>(
        reinterpret_cast<uint8_t *>(a->base) - sizeof(ArenaBlock));
    Old->next = static_cast<ArenaBlock *>(a->retired);
    a->retired = Old;
  }
  Blk->next = nullptr;
  a->base = reinterpret_cast<uint8_t *>(Blk) + sizeof(ArenaBlock);
  a->cap = cap;
  a->used = n;
  return a->base;
}

void flick_client_init(flick_client *c, flick_channel *chan) {
  *c = flick_client{};
  c->chan = chan;
  flick_buf_init(&c->req);
  flick_buf_init(&c->rep);
}

void flick_client_destroy(flick_client *c) {
  flick_buf_destroy(&c->req);
  flick_buf_destroy(&c->rep);
}

int flick_client_invoke(flick_client *c) {
  ++c->next_xid;
  InvokeGauge Gauge;
  flick_metric_add(&flick_metrics::rpcs_sent, 1);
  flick_metric_add(&flick_metrics::request_bytes, flick_buf_total(&c->req));
  // Latency sampling and tracing cost one pointer test each when off.
  bool Timed = flick_metrics_active != nullptr;
  std::chrono::steady_clock::time_point T0;
  if (Timed)
    T0 = std::chrono::steady_clock::now();
  // Open the RPC root unless a generated stub (--trace-hooks) already did,
  // then a SEND child for the request.  Error paths close back to Base, so
  // nothing can leak open spans.
  uint32_t Base = 0;
  if (flick_trace_active) {
    Base = flick_trace_active->depth;
    if (Base == 0)
      flick_trace_begin_impl(FLICK_SPAN_RPC, "rpc");
    if (c->endpoint)
      flick_trace_tag_endpoint(c->endpoint); // children inherit the tag
    flick_trace_begin_impl(FLICK_SPAN_SEND, "send");
  }
  int err = sendBuf(c->chan, &c->req);
  if (flick_trace_active)
    flick_trace_end_impl(); // SEND
  if (err) {
    flick_metric_add(&flick_metrics::transport_errors, 1);
    flick_trace_close_to(Base);
    return err;
  }
  // The server runs synchronously under this recv (LocalLink pump); its
  // spans parent onto the SEND span via the propagated context.
  err = flick_channel_recv(c->chan, &c->rep);
  if (flick_trace_active)
    flick_trace_deposit(0, 0); // the reply's context is not a parent here
  if (err) {
    flick_metric_add(&flick_metrics::transport_errors, 1);
    flick_trace_close_to(Base);
    return err;
  }
  flick_metric_add(&flick_metrics::replies_received, 1);
  flick_metric_add(&flick_metrics::reply_bytes, c->rep.len);
  flick_trace_close_to(Base);
  if (Timed && flick_metrics_active)
    flick_hist_record(&flick_metrics_active->rpc_latency,
                      std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - T0)
                          .count());
  return FLICK_OK;
}

int flick_client_send_oneway(flick_client *c) {
  ++c->next_xid;
  flick_metric_add(&flick_metrics::oneways_sent, 1);
  flick_metric_add(&flick_metrics::request_bytes, flick_buf_total(&c->req));
  uint32_t Base = 0;
  if (flick_trace_active) {
    Base = flick_trace_active->depth;
    if (Base == 0)
      flick_trace_begin_impl(FLICK_SPAN_RPC, "rpc");
    if (c->endpoint)
      flick_trace_tag_endpoint(c->endpoint);
    flick_trace_begin_impl(FLICK_SPAN_SEND, "send");
  }
  int err = sendBuf(c->chan, &c->req);
  if (err)
    flick_metric_add(&flick_metrics::transport_errors, 1);
  flick_trace_close_to(Base);
  return err;
}

void flick_server_init(flick_server *s, flick_channel *chan,
                       flick_dispatch_fn dispatch) {
  *s = flick_server{};
  s->chan = chan;
  s->dispatch = dispatch;
  flick_buf_init(&s->req);
  flick_buf_init(&s->rep);
}

void flick_server_destroy(flick_server *s) {
  flick_buf_destroy(&s->req);
  flick_buf_destroy(&s->rep);
  flick_arena_destroy(&s->arena);
}

int flick_server_handle_one(flick_server *s) {
  if (int err = flick_channel_recv(s->chan, &s->req)) {
    flick_metric_add(&flick_metrics::transport_errors, 1);
    return err;
  }
  // The receive deposited the request's trace context; the server root
  // adopts it as an explicit remote parent (out-of-band propagation).
  BusyGauge Busy;
  uint32_t Base = 0;
  if (flick_trace_active) {
    Base = flick_trace_active->depth;
    flick_trace_begin_remote_impl(FLICK_SPAN_DEMUX, "demux");
  }
  flick_metric_add(&flick_metrics::rpcs_handled, 1);
  flick_metric_add(&flick_metrics::server_request_bytes, s->req.len);
  flick_buf_reset(&s->rep);
  flick_arena_reset(&s->arena);
  int status = s->dispatch(s, &s->req, &s->rep);
  // The request's bytes are dead once dispatch returns: aliased decode
  // pointers are scoped to the dispatch frame and replies never gather.
  // Handing the adopted wire storage back now lets the client's next
  // request refill the same hot allocation.
  s->chan->release(&s->req);
  if (status != FLICK_OK) {
    if (status == FLICK_ERR_DECODE)
      flick_metric_add(&flick_metrics::decode_errors, 1);
    else if (status == FLICK_ERR_NO_SUCH_OP)
      flick_metric_add(&flick_metrics::demux_errors, 1);
    flick_trace_close_to(Base);
    return status;
  }
  // Oneway requests produce an empty reply buffer: nothing to send.
  if (s->rep.len == 0) {
    flick_trace_close_to(Base);
    return FLICK_OK;
  }
  flick_metric_add(&flick_metrics::replies_sent, 1);
  flick_metric_add(&flick_metrics::server_reply_bytes, s->rep.len);
  if (flick_trace_active)
    flick_trace_begin_impl(FLICK_SPAN_REPLY, "reply");
  int err = flick_channel_send(s->chan, s->rep.data, s->rep.len);
  flick_trace_close_to(Base); // ends REPLY and the DEMUX root
  if (err) {
    flick_metric_add(&flick_metrics::transport_errors, 1);
    return err;
  }
  return FLICK_OK;
}
