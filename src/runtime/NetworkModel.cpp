//===- runtime/NetworkModel.cpp - Simulated transport timing --------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "runtime/NetworkModel.h"

using namespace flick;

double NetworkModel::wireTimeUs(size_t Bytes) const {
  double T = PerMsgOverheadUs;
  if (EffectiveBitsPerSec > 0)
    T += static_cast<double>(Bytes) * 8.0 / EffectiveBitsPerSec * 1e6;
  if (MtuBytes > 0 && PerPacketOverheadUs > 0) {
    size_t Packets = (Bytes + MtuBytes - 1) / MtuBytes;
    if (Packets == 0)
      Packets = 1;
    T += static_cast<double>(Packets) * PerPacketOverheadUs;
  }
  return T;
}

NetworkModel NetworkModel::ethernet10() {
  // The paper's stubs topped out at 6-7.5 Mbps of the nominal 10: model an
  // effective 7 Mbps plus mid-90s protocol-stack costs.
  return NetworkModel{"10mbit-ethernet", 7.0e6, 250.0, 1500, 60.0};
}

NetworkModel NetworkModel::ethernet100() {
  // Paper: ttcp measured 70 Mbps effective on the 100 Mbps link.
  return NetworkModel{"100mbit-ethernet", 70.0e6, 150.0, 1500, 20.0};
}

NetworkModel NetworkModel::myrinet640() {
  // Paper: ttcp measured just 84.5 Mbps effective on the 640 Mbps Myrinet
  // because of the OS protocol layers.
  return NetworkModel{"640mbit-myrinet", 84.5e6, 120.0, 8192, 10.0};
}

NetworkModel NetworkModel::machIpc() {
  // Mach 3 round trips on mid-90s hardware cost on the order of 100 us;
  // bulk data moves at memory-copy speed (paper's Pentium measured
  // ~36 MB/s copy bandwidth).
  return NetworkModel{"mach3-ipc", 36.0e6 * 8.0, 55.0, 1u << 30, 0.0};
}

NetworkModel NetworkModel::flukeIpc() {
  // Fluke IPC passes the first words in registers: tiny per-message cost;
  // larger payloads pay the same memory-copy bandwidth.
  return NetworkModel{"fluke-ipc", 36.0e6 * 8.0, 8.0, 1u << 30, 0.0};
}

NetworkModel NetworkModel::ideal() {
  return NetworkModel{"ideal", 0.0, 0.0, 0, 0.0};
}
