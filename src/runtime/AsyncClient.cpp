//===- runtime/AsyncClient.cpp - Pipelined client + reply demux -----------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The async pipelined client: many requests in flight per connection,
// matched to replies by the out-of-band correlation id the transports
// carry next to the trace context (DESIGN.md §15).  Everything here runs
// on the submitting thread -- the "demultiplexer" is the pump loop inside
// wait/drain/blocking-submit, which receives replies in arrival order and
// completes whichever pending call each one names.
//
//===----------------------------------------------------------------------===//

#include "runtime/Channel.h"
#include "runtime/Sampler.h"
#include "runtime/flick_runtime.h"
#include <chrono>
#include <memory>
#include <new>
#include <vector>

namespace {

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Heap side of a flick_async_client: the call slots (stable addresses --
/// callers hold flick_call* across pumps), the pending/free lists, the
/// reply scratch buffer, and the oneway cork arena.
struct AsyncImpl {
  /// Every slot ever allocated, for destroy.  Slots are recycled through
  /// Free; the window bounds *in-flight* calls, so completed-but-unreleased
  /// handles cost extra slots rather than deadlocking a blocking submit.
  std::vector<std::unique_ptr<flick_call>> AllSlots;
  flick_call *Free = nullptr;
  flick_call *Pending = nullptr;
  flick_buf Scratch; ///< reply landing zone before its call is known
  // Corked oneways: flattened frames back to back, one length per frame.
  std::vector<uint8_t> CorkBytes;
  std::vector<size_t> CorkLens;
  uint32_t CorkMax = 64;
};

AsyncImpl *impl(flick_async_client *c) {
  return static_cast<AsyncImpl *>(c->impl);
}

flick_call *takeSlot(AsyncImpl *I) {
  if (flick_call *Call = I->Free) {
    I->Free = Call->next;
    Call->next = nullptr;
    return Call;
  }
  auto *Call = new (std::nothrow) flick_call;
  if (!Call)
    return nullptr;
  flick_buf_init(&Call->rep);
  I->AllSlots.emplace_back(Call);
  return Call;
}

/// Sends \p b over \p ch -- gathered when it carries borrowed spans, flat
/// otherwise (same contract as the synchronous client's send path).
int sendBuf(flick_channel *ch, const flick_buf *b) {
  if (b->nrefs) {
    flick_iov iov[2 * FLICK_BUF_MAX_REFS + 1];
    size_t n = flick_buf_iovec(b, iov);
    return flick_channel_sendv(ch, iov, n);
  }
  return flick_channel_send(ch, b->data, b->len);
}

/// Completes \p Call with the reply currently in the scratch buffer: the
/// buffers swap (the call adopts the wire storage, the emptied slot buffer
/// becomes the next scratch), latency is recorded against the call's own
/// submit stamp -- not any per-client state -- so out-of-order completions
/// attribute correctly.
void completeWithReply(AsyncImpl *I, flick_call *Call) {
  flick_buf Tmp = Call->rep;
  Call->rep = I->Scratch;
  I->Scratch = Tmp;
  Call->status = FLICK_OK;
  Call->done = 1;
  flick_metric_add(&flick_metrics::replies_received, 1);
  flick_metric_add(&flick_metrics::reply_bytes, Call->rep.len);
  if (flick_metrics_active && Call->submit_ns) {
    uint64_t Now = nowNs();
    flick_hist_record(&flick_metrics_active->rpc_latency,
                      Now > Call->submit_ns
                          ? static_cast<double>(Now - Call->submit_ns) / 1000.0
                          : 0.0);
  }
  flick_gauge_sub(&flick_gauges::inflight_rpcs, 1);
  flick_gauge_add(&flick_gauges::rpcs_completed, 1);
  if (Call->on_complete)
    Call->on_complete(Call, Call->ctx);
}

/// Transport death with requests in flight: every pending call completes
/// with \p Err (callbacks run), so no handle is ever left dangling in the
/// not-done state.
void failAllPending(flick_async_client *c, AsyncImpl *I, int Err) {
  while (flick_call *Call = I->Pending) {
    I->Pending = Call->next;
    Call->next = nullptr;
    --c->inflight;
    flick_buf_reset(&Call->rep);
    Call->status = Err;
    Call->done = 1;
    flick_gauge_sub(&flick_gauges::inflight_rpcs, 1);
    if (Call->on_complete)
      Call->on_complete(Call, Call->ctx);
  }
}

/// Receives replies until exactly one pending call completes (replies
/// matching no pending call are dropped and counted, never fatal).  No-op
/// when nothing is pending.  On a transport error every pending call is
/// failed and the error returned.
int pumpOne(flick_async_client *c, AsyncImpl *I) {
  while (I->Pending) {
    if (int Err = flick_channel_recv(c->chan, &I->Scratch)) {
      flick_metric_add(&flick_metrics::transport_errors, 1);
      failAllPending(c, I, Err);
      return Err;
    }
    // The receive deposited the reply's trace context; a reply is not a
    // parent for whatever span opens next (same as the sync client).
    if (flick_trace_active)
      flick_trace_deposit(0, 0);
    uint64_t Id = c->chan->lastCorrelation();
    flick_call **PP = &I->Pending;
    while (*PP && (*PP)->id != Id)
      PP = &(*PP)->next;
    flick_call *Call = *PP;
    if (!Call) {
      // Duplicate or unknown correlation id.
      flick_metric_add(&flick_metrics::corr_drops, 1);
      flick_channel_release(c->chan, &I->Scratch);
      continue;
    }
    *PP = Call->next;
    Call->next = nullptr;
    --c->inflight;
    completeWithReply(I, Call);
    return FLICK_OK;
  }
  return FLICK_OK;
}

} // namespace

int flick_async_client_init(flick_async_client *c, flick_channel *chan,
                            const flick_async_opts *opts) {
  *c = flick_async_client{};
  c->chan = chan;
  flick_buf_init(&c->req);
  flick_async_opts O = opts ? *opts : flick_async_opts{};
  c->window = O.window ? O.window : 1;
  c->fail_fast = O.fail_fast;
  auto *I = new (std::nothrow) AsyncImpl;
  if (!I) {
    flick_metric_add(&flick_metrics::alloc_errors, 1);
    return FLICK_ERR_ALLOC;
  }
  I->CorkMax = O.cork_max ? O.cork_max : 1;
  // Each corked frame may cost the transport a header iovec plus a payload
  // iovec; keep any single batch comfortably under IOV_MAX (1024).
  if (I->CorkMax > 256)
    I->CorkMax = 256;
  flick_buf_init(&I->Scratch);
  c->impl = I;
  return FLICK_OK;
}

void flick_async_client_destroy(flick_async_client *c) {
  if (AsyncImpl *I = impl(c)) {
    for (auto &Slot : I->AllSlots)
      flick_buf_destroy(&Slot->rep);
    flick_buf_destroy(&I->Scratch);
    delete I;
  }
  flick_buf_destroy(&c->req);
  *c = flick_async_client{};
}

flick_buf *flick_async_begin(flick_async_client *c) {
  flick_buf_reset(&c->req);
  return &c->req;
}

int flick_async_submit(flick_async_client *c, flick_call **out,
                       flick_call_fn on_complete, void *ctx) {
  AsyncImpl *I = impl(c);
  if (out)
    *out = nullptr;
  if (c->inflight >= c->window) {
    flick_gauge_add(&flick_gauges::window_stalls, 1);
    if (c->fail_fast)
      return FLICK_ERR_WOULD_BLOCK;
    while (c->inflight >= c->window)
      if (int Err = pumpOne(c, I))
        return Err;
  }
  flick_call *Call = takeSlot(I);
  if (!Call) {
    flick_metric_add(&flick_metrics::alloc_errors, 1);
    return FLICK_ERR_ALLOC;
  }
  Call->id = ++c->next_id; // nonzero: sync traffic is id 0 by construction
  Call->status = FLICK_OK;
  Call->done = 0;
  Call->on_complete = on_complete;
  Call->ctx = ctx;
  // Per-call submit stamp (not per-client): completions arriving out of
  // order still record each call's own latency.
  Call->submit_ns = flick_metrics_active ? nowNs() : 0;
  flick_metric_add(&flick_metrics::rpcs_sent, 1);
  flick_metric_add(&flick_metrics::request_bytes, flick_buf_total(&c->req));
  uint32_t Base = 0;
  if (flick_trace_active) {
    Base = flick_trace_active->depth;
    if (Base == 0)
      flick_trace_begin_impl(FLICK_SPAN_RPC, "rpc");
    if (c->endpoint)
      flick_trace_tag_endpoint(c->endpoint);
    flick_trace_begin_impl(FLICK_SPAN_SEND, "send");
  }
  // The correlation id rides out of band for this one send only; it is
  // cleared right after so oneways and any interleaved synchronous traffic
  // on the channel keep their id-0 frames.
  c->chan->setCorrelation(Call->id);
  int Err = sendBuf(c->chan, &c->req);
  c->chan->setCorrelation(0);
  flick_trace_close_to(Base);
  if (Err) {
    flick_metric_add(&flick_metrics::transport_errors, 1);
    Call->next = I->Free;
    I->Free = Call;
    return Err;
  }
  Call->next = I->Pending;
  I->Pending = Call;
  ++c->inflight;
  flick_gauge_add(&flick_gauges::inflight_rpcs, 1);
  if (out)
    *out = Call;
  return FLICK_OK;
}

int flick_async_wait(flick_async_client *c, flick_call *call) {
  AsyncImpl *I = impl(c);
  while (!call->done) {
    if (!I->Pending)
      return FLICK_ERR_TRANSPORT; // not a submitted call: nothing can land
    if (int Err = pumpOne(c, I)) {
      (void)Err; // every pending call (this one included) is now done
      break;
    }
  }
  return call->status;
}

int flick_async_drain(flick_async_client *c) {
  AsyncImpl *I = impl(c);
  int First = flick_async_flush(c);
  while (I->Pending)
    if (int Err = pumpOne(c, I)) {
      if (!First)
        First = Err;
      break; // pumpOne already failed everything still pending
    }
  return First;
}

void flick_async_release(flick_async_client *c, flick_call *call) {
  AsyncImpl *I = impl(c);
  // Hand adopted wire storage back to the transport (same reuse story as
  // flick_client_begin), then recycle the slot.
  flick_channel_release(c->chan, &call->rep);
  flick_buf_reset(&call->rep);
  call->id = 0;
  call->status = FLICK_OK;
  call->done = 0;
  call->submit_ns = 0;
  call->on_complete = nullptr;
  call->ctx = nullptr;
  call->next = I->Free;
  I->Free = call;
}

int flick_async_oneway(flick_async_client *c) {
  AsyncImpl *I = impl(c);
  size_t Total = flick_buf_total(&c->req);
  flick_metric_add(&flick_metrics::oneways_sent, 1);
  flick_metric_add(&flick_metrics::request_bytes, Total);
  // Flatten into the cork arena (one staging copy, charged as such); the
  // wire bytes per frame are identical to an uncorked oneway's.
  size_t Off = I->CorkBytes.size();
  I->CorkBytes.resize(Off + Total);
  flick_iov Iov[2 * FLICK_BUF_MAX_REFS + 1];
  size_t N = flick_buf_iovec(&c->req, Iov);
  uint8_t *Dst = I->CorkBytes.data() + Off;
  for (size_t S = 0; S != N; ++S) {
    std::memcpy(Dst, Iov[S].base, Iov[S].len);
    Dst += Iov[S].len;
  }
  if (flick_metrics_active) {
    flick_metrics_active->bytes_copied += Total;
    ++flick_metrics_active->copy_ops;
  }
  I->CorkLens.push_back(Total);
  if (I->CorkLens.size() >= I->CorkMax)
    return flick_async_flush(c);
  return FLICK_OK;
}

int flick_async_flush(flick_async_client *c) {
  AsyncImpl *I = impl(c);
  size_t N = I->CorkLens.size();
  if (!N)
    return FLICK_OK;
  std::vector<flick_iov> Iovs(N);
  std::vector<const flick_iov *> Segs(N);
  std::vector<size_t> Counts(N, 1);
  size_t Off = 0;
  for (size_t M = 0; M != N; ++M) {
    Iovs[M].base = I->CorkBytes.data() + Off;
    Iovs[M].len = I->CorkLens[M];
    Off += I->CorkLens[M];
    Segs[M] = &Iovs[M];
  }
  uint32_t Base = 0;
  if (flick_trace_active) {
    Base = flick_trace_active->depth;
    if (Base == 0)
      flick_trace_begin_impl(FLICK_SPAN_RPC, "rpc");
    if (c->endpoint)
      flick_trace_tag_endpoint(c->endpoint);
    flick_trace_begin_impl(FLICK_SPAN_SEND, "send");
  }
  int Err = c->chan->sendBatch(Segs.data(), Counts.data(), N);
  flick_trace_close_to(Base);
  I->CorkBytes.clear();
  I->CorkLens.clear();
  if (Err)
    flick_metric_add(&flick_metrics::transport_errors, 1);
  return Err;
}
