//===- runtime/Calibrate.h - host memory-bandwidth calibration --*- C++ -*-===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's end-to-end numbers are shaped by the ratio of network
/// bandwidth to memory-copy bandwidth (the SPARCstations copied at
/// ~35 MB/s against a 70 Mbps effective network).  To reproduce the same
/// bottleneck structure on a modern host, the benches measure the host's
/// copy bandwidth and scale the simulated network models so the
/// wire-to-memory ratio matches the paper's (see DESIGN.md §3).
///
//===----------------------------------------------------------------------===//

#ifndef FLICK_RUNTIME_CALIBRATE_H
#define FLICK_RUNTIME_CALIBRATE_H

#include "runtime/NetworkModel.h"

namespace flick {

/// Measures this host's large-block memcpy bandwidth in bytes/second.
double measureCopyBandwidth();

/// The paper's SPARCstation 20/50 copy bandwidth (35 MB/s, §4 footnote).
inline constexpr double PaperCopyBandwidth = 35.0e6;

/// Scales a 1997 network model so its ratio to this host's memory
/// bandwidth matches the ratio the paper's testbed had: bandwidths scale
/// up by HostBw/PaperBw, and fixed overheads scale down by the same
/// factor (everything gets faster together).
NetworkModel scaleModelToHost(NetworkModel M, double HostCopyBw);

} // namespace flick

#endif // FLICK_RUNTIME_CALIBRATE_H
