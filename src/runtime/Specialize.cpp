//===- runtime/Specialize.cpp - Runtime marshal specializer ---------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Compilation pipeline, mirroring the MarshalPlan passes at runtime:
//
//   lower    : InterpType tree -> step list (one step per primitive),
//              recursing bottom-up so aggregate bodies are fused before
//              their parent decides between a bulk kernel and a loop.
//   fuse     : adjacent bit-identical steps collapse into memcpy runs,
//              endianness-mismatched uniform-width steps into swap runs
//              (the memcpy-collapse pass of backends/Passes.cpp, rerun on
//              the type program).
//   emit     : steps -> flat patched-op arrays, inserting one front-
//              loaded reservation (encode) / bounds check (decode) per
//              fixed-size region instead of per-field checks (the
//              bounds-hoisting pass).
//
// Programs land in a process-wide cache keyed by the canonical structural
// serialization of (type tree, wire convention); unspecializable trees
// cache a null so repeated lookups stay cheap and fall back to the
// interpreter.
//
//===----------------------------------------------------------------------===//

#include "runtime/Specialize.h"
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <unordered_map>

using namespace flick;

namespace {

bool hostIsLE() {
  const uint16_t One = 1;
  return *reinterpret_cast<const uint8_t *>(&One) == 1;
}

/// True when a HostW-byte scalar's wire bytes differ from its host bytes
/// only by byte order (so a swap run reproduces them).
bool scalarNeedsSwap(const InterpWire &W, unsigned HostW) {
  return HostW > 1 && (W.BigEndian ? hostIsLE() : !hostIsLE());
}

unsigned wireWidth(const InterpWire &W, unsigned Width) {
  return W.XdrWidening && Width < 4 ? 4 : Width;
}

//===----------------------------------------------------------------------===//
// Step IR
//===----------------------------------------------------------------------===//

/// One pre-fusion step.  Offsets are absolute within the current
/// presented base (struct nesting is flattened away during lowering; only
/// array/sequence elements rebind the base).
struct Step {
  enum class K {
    Put,          ///< scalar: Off, HostW -> WireW
    Memcpy,       ///< bit-identical run: Bytes at Off
    Swap,         ///< byte-swap run: Bytes at Off, element Width
    Align,        ///< XDR 4-byte alignment
    CString,      ///< char* at Off
    CountedDense, ///< len at Off, buf at BufOff, dense element of Stride
    LoopFixed,    ///< Count elements at Off, Stride apart
    LoopCounted,  ///< len at Off, buf at BufOff, Stride apart
  };
  K Kind;
  uint64_t Off = 0;
  uint64_t Bytes = 0;
  unsigned HostW = 0;
  unsigned WireW = 0;
  unsigned Width = 0; ///< swap element width; CountedDense: 0 = memcpy
  uint64_t Count = 0;
  uint64_t BufOff = 0;
  uint64_t Stride = 0;
  uint64_t Covers = 0; ///< interp node visits this step stands in for
  std::vector<Step> Body;
};

//===----------------------------------------------------------------------===//
// Fusion (memcpy collapse / swap runs)
//===----------------------------------------------------------------------===//

/// A step viewed as a fusable bulk atom: kind 0 is bit-identical, kind 1
/// is a swap of Width-byte elements.
struct Atom {
  int Kind;
  unsigned Width;
  uint64_t Off, Bytes, Covers;
};

bool atomOf(const Step &S, const InterpWire &W, Atom &A) {
  switch (S.Kind) {
  case Step::K::Put:
    if (S.HostW != S.WireW)
      return false; // widened scalars never fuse
    if (!scalarNeedsSwap(W, S.HostW)) {
      A = {0, 0, S.Off, S.HostW, S.Covers};
      return true;
    }
    if (S.HostW == 2 || S.HostW == 4 || S.HostW == 8) {
      A = {1, S.HostW, S.Off, S.HostW, S.Covers};
      return true;
    }
    return false;
  case Step::K::Memcpy:
    A = {0, 0, S.Off, S.Bytes, S.Covers};
    return true;
  case Step::K::Swap:
    A = {1, S.Width, S.Off, S.Bytes, S.Covers};
    return true;
  default:
    return false;
  }
}

Step runStep(const Atom &A) {
  Step S{};
  S.Kind = A.Kind == 0 ? Step::K::Memcpy : Step::K::Swap;
  S.Off = A.Off;
  S.Bytes = A.Bytes;
  S.Width = A.Width;
  S.Covers = A.Covers;
  return S;
}

/// Collapses host-contiguous same-kind atoms into single runs.  A lone
/// eligible scalar keeps its (cheaper) scalar kernel.
void fuse(std::vector<Step> &Steps, const InterpWire &W, uint64_t &Fused) {
  std::vector<Step> Out;
  Out.reserve(Steps.size());
  Atom Cur{};
  Step CurStep{};
  bool Open = false, CurIsRun = false;
  auto Flush = [&] {
    if (!Open)
      return;
    Out.push_back(CurIsRun ? runStep(Cur) : CurStep);
    Open = false;
  };
  for (Step &S : Steps) {
    Atom A;
    if (atomOf(S, W, A)) {
      if (Open && Cur.Kind == A.Kind && Cur.Width == A.Width &&
          A.Off == Cur.Off + Cur.Bytes) {
        Cur.Bytes += A.Bytes;
        Cur.Covers += A.Covers;
        CurIsRun = true;
        ++Fused;
        continue;
      }
      Flush();
      Open = true;
      Cur = A;
      CurIsRun = S.Kind != Step::K::Put;
      CurStep = std::move(S);
      continue;
    }
    Flush();
    Out.push_back(std::move(S));
  }
  Flush();
  Steps = std::move(Out);
}

/// True (with the swap width) when a fused aggregate body is one run
/// covering exactly [0, Stride) -- i.e. the element's wire image is its
/// host image (modulo byte order), so the whole aggregate is dense.
bool denseRun(const std::vector<Step> &Body, uint64_t Stride,
              const InterpWire &W, unsigned &SwapW, uint64_t &Covers) {
  if (Body.size() != 1)
    return false;
  Atom A;
  if (!atomOf(Body[0], W, A))
    return false;
  if (A.Off != 0 || A.Bytes != Stride)
    return false;
  SwapW = A.Kind == 0 ? 0 : A.Width;
  Covers = A.Covers;
  return true;
}

//===----------------------------------------------------------------------===//
// Lowering
//===----------------------------------------------------------------------===//

bool lower(const InterpType &T, uint64_t Base, const InterpWire &W,
           std::vector<Step> &Out, uint64_t &Fused) {
  switch (T.K) {
  case InterpType::Kind::Scalar: {
    if (T.Width != 1 && T.Width != 2 && T.Width != 4 && T.Width != 8)
      return false;
    Step S{};
    S.Kind = Step::K::Put;
    S.Off = Base + T.Offset;
    S.HostW = T.Width;
    S.WireW = wireWidth(W, T.Width);
    S.Covers = 1;
    Out.push_back(std::move(S));
    return true;
  }
  case InterpType::Kind::Bytes: {
    Step S{};
    S.Kind = Step::K::Memcpy;
    S.Off = Base + T.Offset;
    S.Bytes = T.Count;
    S.Covers = 1;
    Out.push_back(std::move(S));
    if (W.XdrWidening)
      Out.push_back(Step{Step::K::Align});
    return true;
  }
  case InterpType::Kind::CString: {
    Step S{};
    S.Kind = Step::K::CString;
    S.Off = Base + T.Offset;
    S.Covers = 1;
    Out.push_back(std::move(S));
    return true;
  }
  case InterpType::Kind::Struct: {
    size_t First = Out.size();
    for (const InterpType &F : T.Fields)
      if (!lower(F, Base, W, Out, Fused))
        return false;
    // The struct node's own interpreter visit rides on its first step.
    if (Out.size() > First)
      Out[First].Covers += 1;
    return true;
  }
  case InterpType::Kind::FixedArray: {
    if (!T.Elem)
      return false;
    if (T.Count == 0)
      return true; // nothing on the wire
    std::vector<Step> Body;
    if (!lower(*T.Elem, 0, W, Body, Fused))
      return false;
    fuse(Body, W, Fused);
    unsigned SwapW;
    uint64_t ElemCovers;
    if (denseRun(Body, T.HostStride, W, SwapW, ElemCovers)) {
      Step S{};
      S.Kind = SwapW == 0 ? Step::K::Memcpy : Step::K::Swap;
      S.Off = Base + T.Offset;
      S.Bytes = T.Count * T.HostStride;
      S.Width = SwapW;
      S.Covers = 1 + T.Count * ElemCovers;
      Out.push_back(std::move(S));
      Fused += T.Count + 1; // per-element runs plus the loop overhead
      return true;
    }
    Step S{};
    S.Kind = Step::K::LoopFixed;
    S.Off = Base + T.Offset;
    S.Count = T.Count;
    S.Stride = T.HostStride;
    S.Covers = 1;
    S.Body = std::move(Body);
    Out.push_back(std::move(S));
    return true;
  }
  case InterpType::Kind::Counted: {
    if (!T.Elem)
      return false;
    std::vector<Step> Body;
    if (!lower(*T.Elem, 0, W, Body, Fused))
      return false;
    fuse(Body, W, Fused);
    unsigned SwapW;
    uint64_t ElemCovers;
    if (denseRun(Body, T.HostStride, W, SwapW, ElemCovers)) {
      Step S{};
      S.Kind = Step::K::CountedDense;
      S.Off = Base + T.LenOffset;
      S.BufOff = Base + T.BufOffset;
      S.Stride = T.HostStride;
      S.Width = SwapW;
      S.Covers = ElemCovers; // per element; the kernel scales by length
      Out.push_back(std::move(S));
      Fused += 2; // the loop ops the per-element program would have run
      return true;
    }
    Step S{};
    S.Kind = Step::K::LoopCounted;
    S.Off = Base + T.LenOffset;
    S.BufOff = Base + T.BufOffset;
    S.Stride = T.HostStride;
    S.Covers = 1;
    S.Body = std::move(Body);
    Out.push_back(std::move(S));
    return true;
  }
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Emission (with bounds hoisting)
//===----------------------------------------------------------------------===//

bool fit32(uint64_t V) { return V <= 0xffffffffull; }

/// Fixed steps produce a statically known number of wire bytes, so a
/// whole run of them shares one reservation/check.
bool isFixed(const Step &S) {
  return S.Kind == Step::K::Put || S.Kind == Step::K::Memcpy ||
         S.Kind == Step::K::Swap;
}

uint64_t wireBytes(const Step &S) {
  return S.Kind == Step::K::Put ? S.WireW : S.Bytes;
}

bool emitEnc(const std::vector<Step> &Steps, const InterpWire &W,
             std::vector<flick_spec_enc_op> &Ops, unsigned Depth) {
  auto Push = [&Ops](flick_spec_enc_fn Fn, uint64_t A = 0, uint64_t B = 0,
                     uint64_t C = 0, uint64_t D = 0, uint64_t Covers = 0) {
    if (!Fn || !fit32(A) || !fit32(B) || !fit32(C) || !fit32(D) ||
        !fit32(Covers))
      return false;
    flick_spec_enc_op Op;
    Op.Fn = Fn;
    Op.A = static_cast<uint32_t>(A);
    Op.B = static_cast<uint32_t>(B);
    Op.C = static_cast<uint32_t>(C);
    Op.D = static_cast<uint32_t>(D);
    Op.Covers = static_cast<uint32_t>(Covers);
    Ops.push_back(Op);
    return true;
  };
  for (size_t I = 0; I != Steps.size();) {
    const Step &S = Steps[I];
    if (isFixed(S)) {
      uint64_t Total = 0;
      size_t J = I;
      for (; J != Steps.size() && isFixed(Steps[J]); ++J)
        Total += wireBytes(Steps[J]);
      if (Total && !Push(flick_stencil_enc_reserve(), Total))
        return false;
      for (; I != J; ++I) {
        const Step &F = Steps[I];
        bool Ok;
        switch (F.Kind) {
        case Step::K::Put:
          Ok = Push(flick_stencil_enc_scalar(F.HostW, F.WireW, W.BigEndian),
                    F.Off, 0, 0, 0, F.Covers);
          break;
        case Step::K::Memcpy:
          Ok = Push(flick_stencil_enc_memcpy(), F.Off, F.Bytes, 0, 0,
                    F.Covers);
          break;
        default:
          Ok = Push(flick_stencil_enc_swap(F.Width), F.Off,
                    F.Bytes / F.Width, 0, 0, F.Covers);
          break;
        }
        if (!Ok)
          return false;
      }
      continue;
    }
    switch (S.Kind) {
    case Step::K::Align:
      if (!Push(flick_stencil_enc_align4()))
        return false;
      break;
    case Step::K::CString:
      if (!Push(flick_stencil_enc_cstring(W.BigEndian, W.XdrWidening),
                S.Off, 0, 0, 0, S.Covers))
        return false;
      break;
    case Step::K::CountedDense:
      if (!Push(flick_stencil_enc_counted_dense(W.BigEndian, S.Width),
                S.Off, S.BufOff, S.Stride, 0, S.Covers))
        return false;
      break;
    case Step::K::LoopFixed: {
      if (Depth + 1 > FLICK_SPEC_MAX_DEPTH)
        return false;
      if (!Push(flick_stencil_enc_loop_fixed(), S.Off, S.Count, S.Stride,
                0, S.Covers))
        return false;
      size_t BodyStart = Ops.size();
      if (!emitEnc(S.Body, W, Ops, Depth + 1))
        return false;
      if (!Push(flick_stencil_enc_loop_end(), 0, 0, 0,
                Ops.size() - BodyStart))
        return false;
      break;
    }
    case Step::K::LoopCounted: {
      if (Depth + 1 > FLICK_SPEC_MAX_DEPTH)
        return false;
      size_t Head = Ops.size();
      if (!Push(flick_stencil_enc_loop_counted(W.BigEndian), S.Off,
                S.BufOff, S.Stride, 0, S.Covers))
        return false;
      size_t BodyStart = Ops.size();
      if (!emitEnc(S.Body, W, Ops, Depth + 1))
        return false;
      if (!Push(flick_stencil_enc_loop_end(), 0, 0, 0,
                Ops.size() - BodyStart))
        return false;
      uint64_t Skip = Ops.size() - Head;
      if (!fit32(Skip))
        return false;
      Ops[Head].D = static_cast<uint32_t>(Skip);
      break;
    }
    default:
      return false;
    }
    ++I;
  }
  return true;
}

bool emitDec(const std::vector<Step> &Steps, const InterpWire &W,
             std::vector<flick_spec_dec_op> &Ops, unsigned Depth) {
  auto Push = [&Ops](flick_spec_dec_fn Fn, uint64_t A = 0, uint64_t B = 0,
                     uint64_t C = 0, uint64_t D = 0, uint64_t Covers = 0) {
    if (!Fn || !fit32(A) || !fit32(B) || !fit32(C) || !fit32(D) ||
        !fit32(Covers))
      return false;
    flick_spec_dec_op Op;
    Op.Fn = Fn;
    Op.A = static_cast<uint32_t>(A);
    Op.B = static_cast<uint32_t>(B);
    Op.C = static_cast<uint32_t>(C);
    Op.D = static_cast<uint32_t>(D);
    Op.Covers = static_cast<uint32_t>(Covers);
    Ops.push_back(Op);
    return true;
  };
  for (size_t I = 0; I != Steps.size();) {
    const Step &S = Steps[I];
    if (isFixed(S)) {
      uint64_t Total = 0;
      size_t J = I;
      for (; J != Steps.size() && isFixed(Steps[J]); ++J)
        Total += wireBytes(Steps[J]);
      if (Total && !Push(flick_stencil_dec_check(), Total))
        return false;
      for (; I != J; ++I) {
        const Step &F = Steps[I];
        bool Ok;
        switch (F.Kind) {
        case Step::K::Put:
          Ok = Push(flick_stencil_dec_scalar(F.HostW, F.WireW, W.BigEndian),
                    F.Off, 0, 0, 0, F.Covers);
          break;
        case Step::K::Memcpy:
          Ok = Push(flick_stencil_dec_memcpy(), F.Off, F.Bytes, 0, 0,
                    F.Covers);
          break;
        default:
          Ok = Push(flick_stencil_dec_swap(F.Width), F.Off,
                    F.Bytes / F.Width, 0, 0, F.Covers);
          break;
        }
        if (!Ok)
          return false;
      }
      continue;
    }
    switch (S.Kind) {
    case Step::K::Align:
      if (!Push(flick_stencil_dec_align4()))
        return false;
      break;
    case Step::K::CString:
      if (!Push(flick_stencil_dec_cstring(W.BigEndian, W.XdrWidening),
                S.Off, 0, 0, 0, S.Covers))
        return false;
      break;
    case Step::K::CountedDense:
      if (!Push(flick_stencil_dec_counted_dense(W.BigEndian, S.Width),
                S.Off, S.BufOff, S.Stride, 0, S.Covers))
        return false;
      break;
    case Step::K::LoopFixed: {
      if (Depth + 1 > FLICK_SPEC_MAX_DEPTH)
        return false;
      if (!Push(flick_stencil_dec_loop_fixed(), S.Off, S.Count, S.Stride,
                0, S.Covers))
        return false;
      size_t BodyStart = Ops.size();
      if (!emitDec(S.Body, W, Ops, Depth + 1))
        return false;
      if (!Push(flick_stencil_dec_loop_end(), 0, 0, 0,
                Ops.size() - BodyStart))
        return false;
      break;
    }
    case Step::K::LoopCounted: {
      if (Depth + 1 > FLICK_SPEC_MAX_DEPTH)
        return false;
      size_t Head = Ops.size();
      if (!Push(flick_stencil_dec_loop_counted(W.BigEndian), S.Off,
                S.BufOff, S.Stride, 0, S.Covers))
        return false;
      size_t BodyStart = Ops.size();
      if (!emitDec(S.Body, W, Ops, Depth + 1))
        return false;
      if (!Push(flick_stencil_dec_loop_end(), 0, 0, 0,
                Ops.size() - BodyStart))
        return false;
      uint64_t Skip = Ops.size() - Head;
      if (!fit32(Skip))
        return false;
      Ops[Head].D = static_cast<uint32_t>(Skip);
      break;
    }
    default:
      return false;
    }
    ++I;
  }
  return true;
}

/// Runaway backstop: a real type program is a few dozen ops.
enum { FLICK_SPEC_MAX_OPS = 1 << 16 };

std::unique_ptr<flick_spec_program> compileProgram(const InterpType &T,
                                                   const InterpWire &W) {
  std::vector<Step> Steps;
  uint64_t Fused = 0;
  if (!lower(T, 0, W, Steps, Fused))
    return nullptr;
  fuse(Steps, W, Fused);
  auto P = std::make_unique<flick_spec_program>();
  if (!emitEnc(Steps, W, P->Enc, 0) || !emitDec(Steps, W, P->Dec, 0))
    return nullptr;
  P->Enc.push_back({flick_stencil_enc_end()});
  P->Dec.push_back({flick_stencil_dec_end()});
  if (P->Enc.size() > FLICK_SPEC_MAX_OPS ||
      P->Dec.size() > FLICK_SPEC_MAX_OPS)
    return nullptr;
  P->StepsFused = Fused;
  return P;
}

//===----------------------------------------------------------------------===//
// Structural key and program cache
//===----------------------------------------------------------------------===//

void keyNode(const InterpType &T, std::string &Out) {
  char Buf[96];
  switch (T.K) {
  case InterpType::Kind::Scalar:
    std::snprintf(Buf, sizeof(Buf), "s%zu.%u%s", T.Offset, T.Width,
                  T.IsFloat ? "f" : "");
    Out += Buf;
    return;
  case InterpType::Kind::Bytes:
    std::snprintf(Buf, sizeof(Buf), "b%zu.%zu", T.Offset, T.Count);
    Out += Buf;
    return;
  case InterpType::Kind::CString:
    std::snprintf(Buf, sizeof(Buf), "c%zu", T.Offset);
    Out += Buf;
    return;
  case InterpType::Kind::Struct:
    Out += "S(";
    for (const InterpType &F : T.Fields) {
      keyNode(F, Out);
      Out += ",";
    }
    Out += ")";
    return;
  case InterpType::Kind::FixedArray:
    std::snprintf(Buf, sizeof(Buf), "A%zu.%zu.%zu(", T.Offset, T.Count,
                  T.HostStride);
    Out += Buf;
    if (T.Elem)
      keyNode(*T.Elem, Out);
    else
      Out += "!";
    Out += ")";
    return;
  case InterpType::Kind::Counted:
    std::snprintf(Buf, sizeof(Buf), "C%zu.%zu.%zu(", T.LenOffset,
                  T.BufOffset, T.HostStride);
    Out += Buf;
    if (T.Elem)
      keyNode(*T.Elem, Out);
    else
      Out += "!";
    Out += ")";
    return;
  }
}

struct SpecCache {
  std::mutex Mu;
  std::unordered_map<std::string, std::unique_ptr<flick_spec_program>> Map;
};

SpecCache &cache() {
  static SpecCache C;
  return C;
}

} // namespace

std::string flick::flick_spec_structural_key(const InterpType &T,
                                             const InterpWire &W) {
  std::string Key = W.BigEndian ? "be" : "le";
  Key += W.XdrWidening ? "x:" : "c:";
  keyNode(T, Key);
  return Key;
}

uint64_t flick::flick_spec_structural_hash(const InterpType &T,
                                           const InterpWire &W) {
  std::string Key = flick_spec_structural_key(T, W);
  uint64_t H = 1469598103934665603ull; // FNV-1a 64
  for (char Ch : Key) {
    H ^= static_cast<uint8_t>(Ch);
    H *= 1099511628211ull;
  }
  return H;
}

const flick_spec_program *flick::flick_specialize(const InterpType &T,
                                                  const InterpWire &W) {
  std::string Key = flick_spec_structural_key(T, W);
  SpecCache &C = cache();
  std::lock_guard<std::mutex> Lock(C.Mu);
  auto It = C.Map.find(Key);
  if (It != C.Map.end()) {
    flick_metric_add(&flick_metrics::spec_cache_hits, 1);
    return It->second.get(); // null for cached specialization refusals
  }
  auto T0 = std::chrono::steady_clock::now();
  std::unique_ptr<flick_spec_program> P = compileProgram(T, W);
  uint64_t Ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - T0)
          .count());
  flick_metric_add(&flick_metrics::spec_compile_ns, Ns);
  if (P) {
    P->Hash = flick_spec_structural_hash(T, W);
    flick_metric_add(&flick_metrics::spec_programs, 1);
    flick_metric_add(&flick_metrics::spec_steps_fused, P->StepsFused);
  }
  const flick_spec_program *Raw = P.get();
  C.Map.emplace(std::move(Key), std::move(P));
  return Raw;
}

size_t flick::flick_spec_cache_size() {
  SpecCache &C = cache();
  std::lock_guard<std::mutex> Lock(C.Mu);
  return C.Map.size();
}

void flick::flick_spec_cache_clear() {
  SpecCache &C = cache();
  std::lock_guard<std::mutex> Lock(C.Mu);
  C.Map.clear();
}

//===----------------------------------------------------------------------===//
// Execution
//===----------------------------------------------------------------------===//

int flick::flick_spec_encode(flick_buf *Buf, const flick_spec_program *P,
                             const void *Val) {
  flick_spec_enc_ctx C;
  C.Buf = Buf;
  C.V = static_cast<const uint8_t *>(Val);
  size_t Len0 = Buf->len;
  for (const flick_spec_enc_op *Op = P->Enc.data(); Op;)
    Op = Op->Fn(Op, C);
  if (flick_metrics_active) {
    flick_metrics_active->bytes_copied += Buf->len - Len0;
    ++flick_metrics_active->copy_ops;
    flick_metrics_active->spec_dispatches_avoided +=
        C.Covers > C.Steps ? C.Covers - C.Steps : 0;
  }
  return C.Err;
}

int flick::flick_spec_decode(flick_buf *Buf, const flick_spec_program *P,
                             void *Val, flick_arena *Ar) {
  flick_spec_dec_ctx C;
  C.Buf = Buf;
  C.V = static_cast<uint8_t *>(Val);
  C.Ar = Ar;
  size_t Pos0 = Buf->pos;
  for (const flick_spec_dec_op *Op = P->Dec.data(); Op;)
    Op = Op->Fn(Op, C);
  if (flick_metrics_active) {
    flick_metrics_active->bytes_copied += Buf->pos - Pos0;
    ++flick_metrics_active->copy_ops;
    flick_metrics_active->spec_dispatches_avoided +=
        C.Covers > C.Steps ? C.Covers - C.Steps : 0;
  }
  return C.Err;
}
