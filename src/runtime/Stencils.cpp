//===- runtime/Stencils.cpp - Pre-compiled marshal stencil kernels --------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Kernel bodies.  Each kernel reads its holes from the op record, moves
// bytes with raw cursor arithmetic (capacity was reserved / bounds were
// checked by a front-loaded reserve/check op, or the kernel ensures its
// own variable-size region), accumulates the dispatch-avoidance
// accounting, and returns the next op.  Copy accounting is deliberately
// NOT per kernel: flick_spec_encode/decode account one bulk copy per
// call, the same basis the instrumented interpreter uses, so
// copies_per_rpc is comparable across marshal modes.
//
//===----------------------------------------------------------------------===//

#include "runtime/Stencils.h"
#include <cstring>

using namespace flick;

namespace {

template <bool BE> void putU32At(uint8_t *P, uint32_t V) {
  if constexpr (BE)
    flick_enc_u32be(P, V);
  else
    flick_enc_u32le(P, V);
}

template <bool BE> uint32_t getU32At(const uint8_t *P) {
  if constexpr (BE)
    return flick_dec_u32be(P);
  return flick_dec_u32le(P);
}

inline void swapCopy(uint8_t *Dst, const uint8_t *Src, size_t N,
                     unsigned Width) {
  switch (Width) {
  case 2:
    flick_swap_copy_u16(Dst, Src, N);
    break;
  case 4:
    flick_swap_copy_u32(Dst, Src, N);
    break;
  default:
    flick_swap_copy_u64(Dst, Src, N);
    break;
  }
}

//===----------------------------------------------------------------------===//
// Encode kernels
//===----------------------------------------------------------------------===//

template <unsigned HostW, unsigned WireW, bool BE>
const flick_spec_enc_op *encScalar(const flick_spec_enc_op *Op,
                                   flick_spec_enc_ctx &C) {
  uint8_t *P = C.Buf->data + C.Buf->len;
  C.Buf->len += WireW;
  uint64_t V = 0;
  std::memcpy(&V, C.V + Op->A, HostW);
  if constexpr (WireW == 1)
    flick_enc_u8(P, static_cast<uint8_t>(V));
  else if constexpr (WireW == 2) {
    if constexpr (BE)
      flick_enc_u16be(P, static_cast<uint16_t>(V));
    else
      flick_enc_u16le(P, static_cast<uint16_t>(V));
  } else if constexpr (WireW == 4) {
    if constexpr (BE)
      flick_enc_u32be(P, static_cast<uint32_t>(V));
    else
      flick_enc_u32le(P, static_cast<uint32_t>(V));
  } else {
    if constexpr (BE)
      flick_enc_u64be(P, V);
    else
      flick_enc_u64le(P, V);
  }
  C.Covers += Op->Covers;
  ++C.Steps;
  return Op + 1;
}

const flick_spec_enc_op *encMemcpy(const flick_spec_enc_op *Op,
                                   flick_spec_enc_ctx &C) {
  std::memcpy(C.Buf->data + C.Buf->len, C.V + Op->A, Op->B);
  C.Buf->len += Op->B;
  C.Covers += Op->Covers;
  ++C.Steps;
  return Op + 1;
}

template <unsigned Width>
const flick_spec_enc_op *encSwap(const flick_spec_enc_op *Op,
                                 flick_spec_enc_ctx &C) {
  swapCopy(C.Buf->data + C.Buf->len, C.V + Op->A, Op->B, Width);
  C.Buf->len += size_t(Op->B) * Width;
  C.Covers += Op->Covers;
  ++C.Steps;
  return Op + 1;
}

const flick_spec_enc_op *encReserve(const flick_spec_enc_op *Op,
                                    flick_spec_enc_ctx &C) {
  ++C.Steps;
  if (int Err = flick_buf_ensure(C.Buf, Op->A)) {
    C.Err = Err;
    return nullptr;
  }
  return Op + 1;
}

const flick_spec_enc_op *encAlign4(const flick_spec_enc_op *Op,
                                   flick_spec_enc_ctx &C) {
  ++C.Steps;
  if (int Err = flick_buf_align_write(C.Buf, 4)) {
    C.Err = Err;
    return nullptr;
  }
  return Op + 1;
}

template <bool BE, bool Widening>
const flick_spec_enc_op *encCString(const flick_spec_enc_op *Op,
                                    flick_spec_enc_ctx &C) {
  const char *S = *reinterpret_cast<const char *const *>(C.V + Op->A);
  if (!S)
    S = "";
  size_t Len = std::strlen(S);
  size_t WireLen = Len + (Widening ? 0 : 1); // CDR counts the NUL
  if (int Err = flick_buf_ensure(C.Buf, 4 + WireLen + 3)) {
    C.Err = Err;
    return nullptr;
  }
  putU32At<BE>(C.Buf->data + C.Buf->len, static_cast<uint32_t>(WireLen));
  C.Buf->len += 4;
  std::memcpy(C.Buf->data + C.Buf->len, S, WireLen);
  C.Buf->len += WireLen;
  C.Covers += Op->Covers;
  ++C.Steps;
  if constexpr (Widening)
    if (int Err = flick_buf_align_write(C.Buf, 4)) {
      C.Err = Err;
      return nullptr;
    }
  return Op + 1;
}

template <bool BE, unsigned SwapWidth>
const flick_spec_enc_op *encCountedDense(const flick_spec_enc_op *Op,
                                         flick_spec_enc_ctx &C) {
  uint32_t Len;
  std::memcpy(&Len, C.V + Op->A, 4);
  const uint8_t *Base =
      *reinterpret_cast<const uint8_t *const *>(C.V + Op->B);
  size_t Bytes = size_t(Len) * Op->C;
  if (int Err = flick_buf_ensure(C.Buf, 4 + Bytes)) {
    C.Err = Err;
    return nullptr;
  }
  putU32At<BE>(C.Buf->data + C.Buf->len, Len);
  C.Buf->len += 4;
  if (Bytes) {
    if constexpr (SwapWidth == 0)
      std::memcpy(C.Buf->data + C.Buf->len, Base, Bytes);
    else
      swapCopy(C.Buf->data + C.Buf->len, Base, Bytes / SwapWidth,
               SwapWidth);
    C.Buf->len += Bytes;
  }
  C.Covers += 1 + uint64_t(Len) * Op->Covers;
  ++C.Steps;
  return Op + 1;
}

const flick_spec_enc_op *encLoopFixed(const flick_spec_enc_op *Op,
                                      flick_spec_enc_ctx &C) {
  flick_spec_enc_ctx::Frame &F = C.Stack[C.Depth++];
  F.SavedV = C.V;
  F.Cur = C.V + Op->A;
  F.Left = Op->B;
  F.Stride = Op->C;
  C.V = F.Cur;
  C.Covers += Op->Covers;
  ++C.Steps;
  return Op + 1;
}

template <bool BE>
const flick_spec_enc_op *encLoopCounted(const flick_spec_enc_op *Op,
                                        flick_spec_enc_ctx &C) {
  uint32_t Len;
  std::memcpy(&Len, C.V + Op->A, 4);
  if (int Err = flick_buf_ensure(C.Buf, 4)) {
    C.Err = Err;
    return nullptr;
  }
  putU32At<BE>(C.Buf->data + C.Buf->len, Len);
  C.Buf->len += 4;
  C.Covers += Op->Covers;
  ++C.Steps;
  if (!Len)
    return Op + Op->D;
  flick_spec_enc_ctx::Frame &F = C.Stack[C.Depth++];
  F.SavedV = C.V;
  F.Cur = *reinterpret_cast<const uint8_t *const *>(C.V + Op->B);
  F.Left = Len;
  F.Stride = Op->C;
  C.V = F.Cur;
  return Op + 1;
}

const flick_spec_enc_op *encLoopEnd(const flick_spec_enc_op *Op,
                                    flick_spec_enc_ctx &C) {
  ++C.Steps;
  flick_spec_enc_ctx::Frame &F = C.Stack[C.Depth - 1];
  if (--F.Left) {
    F.Cur += F.Stride;
    C.V = F.Cur;
    return Op - Op->D;
  }
  C.V = F.SavedV;
  --C.Depth;
  return Op + 1;
}

const flick_spec_enc_op *encEnd(const flick_spec_enc_op *,
                                flick_spec_enc_ctx &) {
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Decode kernels
//===----------------------------------------------------------------------===//

template <unsigned HostW, unsigned WireW, bool BE>
const flick_spec_dec_op *decScalar(const flick_spec_dec_op *Op,
                                   flick_spec_dec_ctx &C) {
  const uint8_t *P = C.Buf->data + C.Buf->pos;
  C.Buf->pos += WireW;
  uint64_t V;
  if constexpr (WireW == 1)
    V = flick_dec_u8(P);
  else if constexpr (WireW == 2)
    V = BE ? flick_dec_u16be(P) : flick_dec_u16le(P);
  else if constexpr (WireW == 4)
    V = BE ? flick_dec_u32be(P) : flick_dec_u32le(P);
  else
    V = BE ? flick_dec_u64be(P) : flick_dec_u64le(P);
  std::memcpy(C.V + Op->A, &V, HostW);
  C.Covers += Op->Covers;
  ++C.Steps;
  return Op + 1;
}

const flick_spec_dec_op *decMemcpy(const flick_spec_dec_op *Op,
                                   flick_spec_dec_ctx &C) {
  std::memcpy(C.V + Op->A, C.Buf->data + C.Buf->pos, Op->B);
  C.Buf->pos += Op->B;
  C.Covers += Op->Covers;
  ++C.Steps;
  return Op + 1;
}

template <unsigned Width>
const flick_spec_dec_op *decSwap(const flick_spec_dec_op *Op,
                                 flick_spec_dec_ctx &C) {
  swapCopy(C.V + Op->A, C.Buf->data + C.Buf->pos, Op->B, Width);
  C.Buf->pos += size_t(Op->B) * Width;
  C.Covers += Op->Covers;
  ++C.Steps;
  return Op + 1;
}

const flick_spec_dec_op *decCheck(const flick_spec_dec_op *Op,
                                  flick_spec_dec_ctx &C) {
  ++C.Steps;
  if (!flick_buf_check(C.Buf, Op->A)) {
    C.Err = FLICK_ERR_DECODE;
    return nullptr;
  }
  return Op + 1;
}

const flick_spec_dec_op *decAlign4(const flick_spec_dec_op *Op,
                                   flick_spec_dec_ctx &C) {
  ++C.Steps;
  if (int Err = flick_buf_align_read(C.Buf, 4)) {
    C.Err = Err;
    return nullptr;
  }
  return Op + 1;
}

template <bool BE, bool Widening>
const flick_spec_dec_op *decCString(const flick_spec_dec_op *Op,
                                    flick_spec_dec_ctx &C) {
  if (!flick_buf_check(C.Buf, 4)) {
    C.Err = FLICK_ERR_DECODE;
    return nullptr;
  }
  uint32_t WireLen = getU32At<BE>(C.Buf->data + C.Buf->pos);
  C.Buf->pos += 4;
  if (!flick_buf_check(C.Buf, WireLen)) {
    C.Err = FLICK_ERR_DECODE;
    return nullptr;
  }
  char *S = static_cast<char *>(flick_arena_alloc(C.Ar, WireLen + 1));
  if (!S) {
    C.Err = FLICK_ERR_ALLOC;
    return nullptr;
  }
  std::memcpy(S, C.Buf->data + C.Buf->pos, WireLen);
  C.Buf->pos += WireLen;
  S[WireLen] = '\0';
  *reinterpret_cast<char **>(C.V + Op->A) = S;
  C.Covers += Op->Covers;
  ++C.Steps;
  if constexpr (Widening)
    if (int Err = flick_buf_align_read(C.Buf, 4)) {
      C.Err = Err;
      return nullptr;
    }
  return Op + 1;
}

template <bool BE, unsigned SwapWidth>
const flick_spec_dec_op *decCountedDense(const flick_spec_dec_op *Op,
                                         flick_spec_dec_ctx &C) {
  if (!flick_buf_check(C.Buf, 4)) {
    C.Err = FLICK_ERR_DECODE;
    return nullptr;
  }
  uint32_t Len = getU32At<BE>(C.Buf->data + C.Buf->pos);
  C.Buf->pos += 4;
  if (Len > (1u << 28)) {
    C.Err = FLICK_ERR_DECODE;
    return nullptr;
  }
  size_t Bytes = size_t(Len) * Op->C;
  if (!flick_buf_check(C.Buf, Bytes)) {
    C.Err = FLICK_ERR_DECODE;
    return nullptr;
  }
  uint8_t *Base = static_cast<uint8_t *>(
      flick_arena_alloc(C.Ar, (size_t(Len) + 1) * Op->C));
  if (!Base) {
    C.Err = FLICK_ERR_ALLOC;
    return nullptr;
  }
  if (Bytes) {
    if constexpr (SwapWidth == 0)
      std::memcpy(Base, C.Buf->data + C.Buf->pos, Bytes);
    else
      swapCopy(Base, C.Buf->data + C.Buf->pos, Bytes / SwapWidth,
               SwapWidth);
    C.Buf->pos += Bytes;
  }
  std::memcpy(C.V + Op->A, &Len, 4);
  *reinterpret_cast<uint8_t **>(C.V + Op->B) = Base;
  C.Covers += 1 + uint64_t(Len) * Op->Covers;
  ++C.Steps;
  return Op + 1;
}

const flick_spec_dec_op *decLoopFixed(const flick_spec_dec_op *Op,
                                      flick_spec_dec_ctx &C) {
  flick_spec_dec_ctx::Frame &F = C.Stack[C.Depth++];
  F.SavedV = C.V;
  F.Cur = C.V + Op->A;
  F.Left = Op->B;
  F.Stride = Op->C;
  C.V = F.Cur;
  C.Covers += Op->Covers;
  ++C.Steps;
  return Op + 1;
}

template <bool BE>
const flick_spec_dec_op *decLoopCounted(const flick_spec_dec_op *Op,
                                        flick_spec_dec_ctx &C) {
  if (!flick_buf_check(C.Buf, 4)) {
    C.Err = FLICK_ERR_DECODE;
    return nullptr;
  }
  uint32_t Len = getU32At<BE>(C.Buf->data + C.Buf->pos);
  C.Buf->pos += 4;
  if (Len > (1u << 28)) {
    C.Err = FLICK_ERR_DECODE;
    return nullptr;
  }
  uint8_t *Base = static_cast<uint8_t *>(
      flick_arena_alloc(C.Ar, (size_t(Len) + 1) * Op->C));
  if (!Base) {
    C.Err = FLICK_ERR_ALLOC;
    return nullptr;
  }
  std::memcpy(C.V + Op->A, &Len, 4);
  *reinterpret_cast<uint8_t **>(C.V + Op->B) = Base;
  C.Covers += Op->Covers;
  ++C.Steps;
  if (!Len)
    return Op + Op->D;
  flick_spec_dec_ctx::Frame &F = C.Stack[C.Depth++];
  F.SavedV = C.V;
  F.Cur = Base;
  F.Left = Len;
  F.Stride = Op->C;
  C.V = F.Cur;
  return Op + 1;
}

const flick_spec_dec_op *decLoopEnd(const flick_spec_dec_op *Op,
                                    flick_spec_dec_ctx &C) {
  ++C.Steps;
  flick_spec_dec_ctx::Frame &F = C.Stack[C.Depth - 1];
  if (--F.Left) {
    F.Cur += F.Stride;
    C.V = F.Cur;
    return Op - Op->D;
  }
  C.V = F.SavedV;
  --C.Depth;
  return Op + 1;
}

const flick_spec_dec_op *decEnd(const flick_spec_dec_op *,
                                flick_spec_dec_ctx &) {
  return nullptr;
}

} // namespace

//===----------------------------------------------------------------------===//
// Selectors
//===----------------------------------------------------------------------===//

flick_spec_enc_fn flick::flick_stencil_enc_scalar(unsigned HostW,
                                                  unsigned WireW,
                                                  bool BigEndian) {
  if (HostW == WireW)
    switch (HostW) {
    case 1:
      return encScalar<1, 1, false>;
    case 2:
      return BigEndian ? encScalar<2, 2, true> : encScalar<2, 2, false>;
    case 4:
      return BigEndian ? encScalar<4, 4, true> : encScalar<4, 4, false>;
    case 8:
      return BigEndian ? encScalar<8, 8, true> : encScalar<8, 8, false>;
    default:
      return nullptr;
    }
  if (WireW != 4)
    return nullptr; // only XDR's widen-to-4 is in the library
  switch (HostW) {
  case 1:
    return BigEndian ? encScalar<1, 4, true> : encScalar<1, 4, false>;
  case 2:
    return BigEndian ? encScalar<2, 4, true> : encScalar<2, 4, false>;
  default:
    return nullptr;
  }
}

flick_spec_dec_fn flick::flick_stencil_dec_scalar(unsigned HostW,
                                                  unsigned WireW,
                                                  bool BigEndian) {
  if (HostW == WireW)
    switch (HostW) {
    case 1:
      return decScalar<1, 1, false>;
    case 2:
      return BigEndian ? decScalar<2, 2, true> : decScalar<2, 2, false>;
    case 4:
      return BigEndian ? decScalar<4, 4, true> : decScalar<4, 4, false>;
    case 8:
      return BigEndian ? decScalar<8, 8, true> : decScalar<8, 8, false>;
    default:
      return nullptr;
    }
  if (WireW != 4)
    return nullptr;
  switch (HostW) {
  case 1:
    return BigEndian ? decScalar<1, 4, true> : decScalar<1, 4, false>;
  case 2:
    return BigEndian ? decScalar<2, 4, true> : decScalar<2, 4, false>;
  default:
    return nullptr;
  }
}

flick_spec_enc_fn flick::flick_stencil_enc_memcpy() { return encMemcpy; }
flick_spec_dec_fn flick::flick_stencil_dec_memcpy() { return decMemcpy; }

flick_spec_enc_fn flick::flick_stencil_enc_swap(unsigned Width) {
  switch (Width) {
  case 2:
    return encSwap<2>;
  case 4:
    return encSwap<4>;
  case 8:
    return encSwap<8>;
  default:
    return nullptr;
  }
}

flick_spec_dec_fn flick::flick_stencil_dec_swap(unsigned Width) {
  switch (Width) {
  case 2:
    return decSwap<2>;
  case 4:
    return decSwap<4>;
  case 8:
    return decSwap<8>;
  default:
    return nullptr;
  }
}

flick_spec_enc_fn flick::flick_stencil_enc_reserve() { return encReserve; }
flick_spec_dec_fn flick::flick_stencil_dec_check() { return decCheck; }
flick_spec_enc_fn flick::flick_stencil_enc_align4() { return encAlign4; }
flick_spec_dec_fn flick::flick_stencil_dec_align4() { return decAlign4; }

flick_spec_enc_fn flick::flick_stencil_enc_cstring(bool BigEndian,
                                                   bool Widening) {
  if (BigEndian)
    return Widening ? encCString<true, true> : encCString<true, false>;
  return Widening ? encCString<false, true> : encCString<false, false>;
}

flick_spec_dec_fn flick::flick_stencil_dec_cstring(bool BigEndian,
                                                   bool Widening) {
  if (BigEndian)
    return Widening ? decCString<true, true> : decCString<true, false>;
  return Widening ? decCString<false, true> : decCString<false, false>;
}

flick_spec_enc_fn flick::flick_stencil_enc_counted_dense(bool BigEndian,
                                                         unsigned SwapWidth) {
  if (BigEndian)
    switch (SwapWidth) {
    case 0:
      return encCountedDense<true, 0>;
    case 2:
      return encCountedDense<true, 2>;
    case 4:
      return encCountedDense<true, 4>;
    case 8:
      return encCountedDense<true, 8>;
    default:
      return nullptr;
    }
  switch (SwapWidth) {
  case 0:
    return encCountedDense<false, 0>;
  case 2:
    return encCountedDense<false, 2>;
  case 4:
    return encCountedDense<false, 4>;
  case 8:
    return encCountedDense<false, 8>;
  default:
    return nullptr;
  }
}

flick_spec_dec_fn flick::flick_stencil_dec_counted_dense(bool BigEndian,
                                                         unsigned SwapWidth) {
  if (BigEndian)
    switch (SwapWidth) {
    case 0:
      return decCountedDense<true, 0>;
    case 2:
      return decCountedDense<true, 2>;
    case 4:
      return decCountedDense<true, 4>;
    case 8:
      return decCountedDense<true, 8>;
    default:
      return nullptr;
    }
  switch (SwapWidth) {
  case 0:
    return decCountedDense<false, 0>;
  case 2:
    return decCountedDense<false, 2>;
  case 4:
    return decCountedDense<false, 4>;
  case 8:
    return decCountedDense<false, 8>;
  default:
    return nullptr;
  }
}

flick_spec_enc_fn flick::flick_stencil_enc_loop_fixed() {
  return encLoopFixed;
}
flick_spec_dec_fn flick::flick_stencil_dec_loop_fixed() {
  return decLoopFixed;
}

flick_spec_enc_fn flick::flick_stencil_enc_loop_counted(bool BigEndian) {
  return BigEndian ? encLoopCounted<true> : encLoopCounted<false>;
}
flick_spec_dec_fn flick::flick_stencil_dec_loop_counted(bool BigEndian) {
  return BigEndian ? decLoopCounted<true> : decLoopCounted<false>;
}

flick_spec_enc_fn flick::flick_stencil_enc_loop_end() { return encLoopEnd; }
flick_spec_dec_fn flick::flick_stencil_dec_loop_end() { return decLoopEnd; }

flick_spec_enc_fn flick::flick_stencil_enc_end() { return encEnd; }
flick_spec_dec_fn flick::flick_stencil_dec_end() { return decEnd; }
