//===- runtime/Sampler.cpp - Runtime flight recorder ----------------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "runtime/Sampler.h"
#include "runtime/flick_runtime.h"
#include "support/BuildInfo.h"
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

//===----------------------------------------------------------------------===//
// Gauges
//===----------------------------------------------------------------------===//

flick_gauges flick_gauges_global;
std::atomic<int> flick_gauges_enabled{0};

namespace {

std::chrono::steady_clock::time_point gaugeEpoch() {
  static const std::chrono::steady_clock::time_point Epoch =
      std::chrono::steady_clock::now();
  return Epoch;
}

} // namespace

uint64_t flick_gauge_now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - gaugeEpoch())
          .count());
}

void flick_gauges_enable() {
  flick_gauges &G = flick_gauges_global;
  for (std::atomic<uint64_t> *F :
       {&G.queue_depth, &G.inflight_rpcs, &G.pool_buffers, &G.workers_busy,
        &G.workers_running, &G.rpcs_completed, &G.queue_enqueues,
        &G.queue_dequeues, &G.queue_wait_ns, &G.lock_wait_ns, &G.lock_acquires,
        &G.queue_full_waits, &G.pool_gauge_hits, &G.pool_gauge_misses,
        &G.worker_busy_ns, &G.stalls_detected, &G.ring_wait_ns, &G.steals,
        &G.sock_syscalls, &G.sock_eagain, &G.window_stalls,
        &G.shard_slots_live})
    F->store(0, std::memory_order_relaxed);
  for (std::atomic<uint64_t> &F : G.shard_depth)
    F.store(0, std::memory_order_relaxed);
  flick_gauges_enabled.store(1, std::memory_order_release);
}

void flick_gauges_disable() {
  flick_gauges_enabled.store(0, std::memory_order_relaxed);
}

void flick_gauge_lock_end(uint64_t t0_ns) {
  if (!t0_ns || !flick_gauges_on())
    return;
  uint64_t Now = flick_gauge_now_ns();
  flick_gauges_global.lock_wait_ns.fetch_add(Now > t0_ns ? Now - t0_ns : 0,
                                             std::memory_order_relaxed);
  flick_gauges_global.lock_acquires.fetch_add(1, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Stall watchdog slots
//===----------------------------------------------------------------------===//

namespace {

/// Start timestamp (ns on the gauge clock, 0 = no RPC in flight) per slot.
std::atomic<uint64_t> StallStarts[FLICK_STALL_SLOTS];

int mySlot() {
  static std::atomic<unsigned> NextSlot{0};
  thread_local int Slot = static_cast<int>(
      NextSlot.fetch_add(1, std::memory_order_relaxed) % FLICK_STALL_SLOTS);
  return Slot;
}

} // namespace

int flick_stall_mark_begin() {
  if (!flick_gauges_on())
    return -1;
  int Slot = mySlot();
  uint64_t Now = flick_gauge_now_ns();
  // 0 means "empty"; an RPC starting at the exact epoch still gets a stamp.
  StallStarts[Slot].store(Now ? Now : 1, std::memory_order_relaxed);
  return Slot;
}

void flick_stall_mark_end(int slot) {
  if (slot < 0)
    return;
  StallStarts[slot].store(0, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// The sampler
//===----------------------------------------------------------------------===//

namespace {

struct Sampler {
  std::mutex Mu; ///< serializes start/stop and protects the fields below
  std::thread Thread;
  bool Running = false;
  bool EverStarted = false;

  // Wake/stop signalling for the sampling thread.
  std::mutex CvMu;
  std::condition_variable Cv;
  bool StopRequested = false;

  flick_sampler_opts Opts;
  std::string PostmortemPath; ///< owned copy of Opts.postmortem_path
  std::chrono::steady_clock::time_point Epoch; ///< sampler session start

  /// The ring: written only by the sampling thread, published through
  /// Head.  Head counts samples ever taken; slot = index % Ring.size().
  std::vector<flick_sample> Ring;
  std::atomic<uint64_t> Head{0};

  std::atomic<flick_metrics *> Watched{nullptr};

  // Sampling-thread-only watchdog state: the start stamp each slot was
  // last flagged at, so one stuck RPC counts as one stall, not one per
  // tick; and whether the post-mortem has been written this session.
  uint64_t LastFlagged[FLICK_STALL_SLOTS] = {};
  bool PostmortemDumped = false;
};

Sampler &sampler() {
  static Sampler S;
  return S;
}

/// Relaxed read of a plain uint64_t field the owning thread writes
/// non-atomically.  Values may lag by a store but are never torn;
/// ThreadSanitizer is right that this is a race, which is why the sampler
/// only does it to blocks registered through flick_sampler_watch.
uint64_t watchedLoad(const uint64_t *p) {
  return __atomic_load_n(p, __ATOMIC_RELAXED);
}

void takeSample(Sampler &S) {
  const flick_gauges &G = flick_gauges_global;
  flick_sample Smp;
  Smp.t_us = std::chrono::duration<double, std::micro>(
                 std::chrono::steady_clock::now() - S.Epoch)
                 .count();
  auto Ld = [](const std::atomic<uint64_t> &A) {
    return A.load(std::memory_order_relaxed);
  };
  Smp.queue_depth = Ld(G.queue_depth);
  Smp.inflight_rpcs = Ld(G.inflight_rpcs);
  Smp.pool_buffers = Ld(G.pool_buffers);
  Smp.workers_busy = Ld(G.workers_busy);
  Smp.workers_running = Ld(G.workers_running);
  Smp.rpcs_completed = Ld(G.rpcs_completed);
  Smp.queue_enqueues = Ld(G.queue_enqueues);
  Smp.queue_dequeues = Ld(G.queue_dequeues);
  Smp.queue_wait_ns = Ld(G.queue_wait_ns);
  Smp.lock_wait_ns = Ld(G.lock_wait_ns);
  Smp.lock_acquires = Ld(G.lock_acquires);
  Smp.queue_full_waits = Ld(G.queue_full_waits);
  Smp.pool_hits = Ld(G.pool_gauge_hits);
  Smp.pool_misses = Ld(G.pool_gauge_misses);
  Smp.worker_busy_ns = Ld(G.worker_busy_ns);
  Smp.ring_wait_ns = Ld(G.ring_wait_ns);
  Smp.steals = Ld(G.steals);
  Smp.sock_syscalls = Ld(G.sock_syscalls);
  Smp.sock_eagain = Ld(G.sock_eagain);
  Smp.window_stalls = Ld(G.window_stalls);
  uint64_t DepthSum = 0;
  for (const std::atomic<uint64_t> &F : G.shard_depth) {
    uint64_t V = Ld(F);
    DepthSum += V;
    if (V > Smp.shard_depth_max)
      Smp.shard_depth_max = V;
  }
  // Mean occupancy over the slots actually in use, not all
  // FLICK_GAUGE_SHARD_SLOTS: prefer the live count the sharded link
  // reported, fall back to the worker count (shards default to one per
  // worker), then to every slot.
  Smp.shard_slots_live = Ld(G.shard_slots_live);
  uint64_t LiveSlots = Smp.shard_slots_live;
  if (!LiveSlots)
    LiveSlots = Smp.workers_running < FLICK_GAUGE_SHARD_SLOTS
                    ? Smp.workers_running
                    : FLICK_GAUGE_SHARD_SLOTS;
  if (!LiveSlots)
    LiveSlots = FLICK_GAUGE_SHARD_SLOTS;
  Smp.shard_depth_avg =
      static_cast<double>(DepthSum) / static_cast<double>(LiveSlots);

  // Watchdog scan: count everything currently past the deadline, and bump
  // stalls_detected once per (slot, start stamp) so a stuck RPC is one
  // detection however many ticks it stays stuck.
  bool NewStall = false;
  if (S.Opts.stall_deadline_us > 0) {
    uint64_t Now = flick_gauge_now_ns();
    uint64_t DeadlineNs =
        static_cast<uint64_t>(S.Opts.stall_deadline_us * 1000.0);
    for (int I = 0; I != FLICK_STALL_SLOTS; ++I) {
      uint64_t Start = StallStarts[I].load(std::memory_order_relaxed);
      if (!Start || Now - Start <= DeadlineNs)
        continue;
      ++Smp.stalled_rpcs;
      if (S.LastFlagged[I] != Start) {
        S.LastFlagged[I] = Start;
        flick_gauges_global.stalls_detected.fetch_add(
            1, std::memory_order_relaxed);
        NewStall = true;
      }
    }
  }
  Smp.stalls_detected = Ld(G.stalls_detected);

  if (flick_metrics *M = S.Watched.load(std::memory_order_relaxed)) {
    Smp.m_rpcs_sent = watchedLoad(&M->rpcs_sent);
    Smp.m_rpcs_handled = watchedLoad(&M->rpcs_handled);
    Smp.m_request_bytes = watchedLoad(&M->request_bytes);
    Smp.m_queue_full = watchedLoad(&M->queue_full);
    for (int E = 0; E != FLICK_MAX_ENDPOINTS; ++E) {
      Smp.slo_met += watchedLoad(&M->anatomy[E].slo_met);
      Smp.slo_violated += watchedLoad(&M->anatomy[E].slo_violated);
    }
  }

  uint64_t H = S.Head.load(std::memory_order_relaxed);
  S.Ring[H % S.Ring.size()] = Smp;
  S.Head.store(H + 1, std::memory_order_release);

  if (NewStall && !S.PostmortemDumped && !S.PostmortemPath.empty()) {
    S.PostmortemDumped = true;
    if (std::FILE *F = std::fopen(S.PostmortemPath.c_str(), "w")) {
      std::string Doc = flick_sampler_to_json();
      std::fwrite(Doc.data(), 1, Doc.size(), F);
      std::fclose(F);
    }
  }
}

void samplerMain() {
  Sampler &S = sampler();
  auto Interval = std::chrono::duration<double, std::micro>(
      S.Opts.interval_us > 0 ? S.Opts.interval_us : 1000.0);
  for (;;) {
    {
      std::unique_lock<std::mutex> L(S.CvMu);
      if (S.Cv.wait_for(L, Interval, [&] { return S.StopRequested; }))
        break;
    }
    takeSample(S);
  }
  // One final sample so short sessions (and the moments right before a
  // stop) are represented in the ring.
  takeSample(S);
}

} // namespace

int flick_sampler_start(const flick_sampler_opts *opts) {
  Sampler &S = sampler();
  std::lock_guard<std::mutex> L(S.Mu);
  if (S.Running)
    return FLICK_ERR_ALLOC;
  flick_sampler_opts O = opts ? *opts : flick_sampler_opts{};
  if (O.interval_us <= 0 || O.ring_cap == 0)
    return FLICK_ERR_ALLOC;
  S.Opts = O;
  S.PostmortemPath = O.postmortem_path ? O.postmortem_path : "";
  S.Opts.postmortem_path = nullptr; // the std::string owns it now
  S.Ring.assign(O.ring_cap, flick_sample{});
  S.Head.store(0, std::memory_order_relaxed);
  for (uint64_t &F : S.LastFlagged)
    F = 0;
  S.PostmortemDumped = false;
  S.StopRequested = false;
  S.Epoch = std::chrono::steady_clock::now();
  S.EverStarted = true;
  flick_gauges_enable();
  S.Thread = std::thread(samplerMain);
  S.Running = true;
  return FLICK_OK;
}

void flick_sampler_stop() {
  Sampler &S = sampler();
  std::lock_guard<std::mutex> L(S.Mu);
  if (!S.Running)
    return;
  {
    std::lock_guard<std::mutex> CvL(S.CvMu);
    S.StopRequested = true;
  }
  S.Cv.notify_all();
  S.Thread.join();
  S.Running = false;
  flick_gauges_disable();
}

int flick_sampler_running() {
  Sampler &S = sampler();
  std::lock_guard<std::mutex> L(S.Mu);
  return S.Running ? 1 : 0;
}

void flick_sampler_watch(flick_metrics *m) {
  sampler().Watched.store(m, std::memory_order_relaxed);
}

size_t flick_sampler_count() {
  Sampler &S = sampler();
  uint64_t Total = S.Head.load(std::memory_order_acquire);
  size_t Cap = S.Ring.size();
  return Total < Cap ? static_cast<size_t>(Total) : Cap;
}

int flick_sampler_get(size_t i, flick_sample *out) {
  Sampler &S = sampler();
  uint64_t Total = S.Head.load(std::memory_order_acquire);
  size_t Cap = S.Ring.size();
  if (Cap == 0)
    return 0;
  uint64_t Retained = Total < Cap ? Total : Cap;
  if (i >= Retained)
    return 0;
  uint64_t Abs = Total - Retained + i;
  *out = S.Ring[Abs % Cap];
  // If the writer lapped this slot while we copied, the copy may be torn:
  // discard it.  (Reads after flick_sampler_stop never hit this.)
  if (S.Head.load(std::memory_order_acquire) > Abs + Cap)
    return 0;
  return 1;
}

uint64_t flick_sampler_stalls() {
  return flick_gauges_global.stalls_detected.load(std::memory_order_relaxed);
}

double flick_sampler_epoch_offset_us(const flick_tracer *t) {
  Sampler &S = sampler();
  std::lock_guard<std::mutex> L(S.Mu);
  if (!t || !S.EverStarted)
    return 0;
  return std::chrono::duration<double, std::micro>(S.Epoch - t->epoch)
      .count();
}

//===----------------------------------------------------------------------===//
// Exporters
//===----------------------------------------------------------------------===//

namespace {

/// Copies out every readable sample (skipping any that were lapped
/// mid-copy while the sampler is live).
std::vector<flick_sample> snapshotRing() {
  std::vector<flick_sample> Out;
  size_t N = flick_sampler_count();
  Out.reserve(N);
  for (size_t I = 0; I != N; ++I) {
    flick_sample Smp;
    if (flick_sampler_get(I, &Smp))
      Out.push_back(Smp);
  }
  return Out;
}

/// Renders one sample as a JSON object (one line, no trailing newline).
/// Cumulative gauges become per-interval rates against \p Prev; \p
/// HavePrev false (first retained sample of a wrapped ring) zeroes them.
std::string sampleJson(const flick_sample &Smp, const flick_sample &Prev,
                       bool HavePrev) {
  double DtUs = HavePrev ? Smp.t_us - Prev.t_us : 0;
  auto D = [&](uint64_t Cur, uint64_t Old) {
    return HavePrev && Cur > Old ? Cur - Old : 0;
  };
  uint64_t DRpcs = D(Smp.rpcs_completed, Prev.rpcs_completed);
  uint64_t DEnq = D(Smp.queue_enqueues, Prev.queue_enqueues);
  uint64_t DDeq = D(Smp.queue_dequeues, Prev.queue_dequeues);
  uint64_t DWaitNs = D(Smp.queue_wait_ns, Prev.queue_wait_ns);
  uint64_t DLockNs = D(Smp.lock_wait_ns, Prev.lock_wait_ns);
  uint64_t DBusyNs = D(Smp.worker_busy_ns, Prev.worker_busy_ns);
  uint64_t DHits = D(Smp.pool_hits, Prev.pool_hits);
  uint64_t DMiss = D(Smp.pool_misses, Prev.pool_misses);
  uint64_t DRingNs = D(Smp.ring_wait_ns, Prev.ring_wait_ns);
  uint64_t DSteals = D(Smp.steals, Prev.steals);
  uint64_t DSys = D(Smp.sock_syscalls, Prev.sock_syscalls);
  uint64_t DEagain = D(Smp.sock_eagain, Prev.sock_eagain);
  double PerS = DtUs > 0 ? 1e6 / DtUs : 0;
  double IntervalNs = DtUs * 1000.0;
  uint64_t Workers = Smp.workers_running ? Smp.workers_running : 1;

  // Error-budget burn rate over this interval: the fraction of RPCs that
  // violated their SLO, normalized by the tightest allowed-violation
  // fraction across configured objectives.  1.0 burns the budget exactly
  // at the sustainable pace; >1 exhausts it early.
  uint64_t DMet = D(Smp.slo_met, Prev.slo_met);
  uint64_t DViol = D(Smp.slo_violated, Prev.slo_violated);
  double Allowed = flick_slo_strictest_allowed();
  double BurnRate =
      Allowed > 0 && DMet + DViol
          ? (static_cast<double>(DViol) / static_cast<double>(DMet + DViol)) /
                Allowed
          : 0.0;

  char Buf[2048];
  std::snprintf(
      Buf, sizeof(Buf),
      "{\"t_us\": %.1f, \"queue_depth\": %llu, \"inflight_rpcs\": %llu, "
      "\"pool_buffers\": %llu, \"workers_busy\": %llu, "
      "\"workers_running\": %llu, \"stalled_rpcs\": %llu, "
      "\"stalls_detected\": %llu, \"rpcs_completed\": %llu, "
      "\"queue_full_waits\": %llu, \"shard_depth_max\": %llu, "
      "\"shard_depth_avg\": %.3f, \"shard_slots_live\": %llu, "
      "\"rpcs_per_s\": %.1f, "
      "\"enqueues_per_s\": %.1f, \"queue_wait_avg_us\": %.3f, "
      "\"lock_wait_frac\": %.4f, \"ring_wait_frac\": %.4f, "
      "\"steals_per_s\": %.1f, \"syscalls_per_rpc\": %.2f, "
      "\"eagain_retries\": %llu, \"window_stalls\": %llu, "
      "\"worker_busy_frac\": %.4f, "
      "\"pool_hit_rate\": %.3f, \"m_rpcs_sent\": %llu, "
      "\"m_rpcs_handled\": %llu, \"m_request_bytes\": %llu, "
      "\"m_queue_full\": %llu, \"slo_met\": %llu, "
      "\"slo_violated\": %llu, \"slo_burn_rate\": %.3f}",
      Smp.t_us, static_cast<unsigned long long>(Smp.queue_depth),
      static_cast<unsigned long long>(Smp.inflight_rpcs),
      static_cast<unsigned long long>(Smp.pool_buffers),
      static_cast<unsigned long long>(Smp.workers_busy),
      static_cast<unsigned long long>(Smp.workers_running),
      static_cast<unsigned long long>(Smp.stalled_rpcs),
      static_cast<unsigned long long>(Smp.stalls_detected),
      static_cast<unsigned long long>(Smp.rpcs_completed),
      static_cast<unsigned long long>(Smp.queue_full_waits),
      static_cast<unsigned long long>(Smp.shard_depth_max),
      Smp.shard_depth_avg,
      static_cast<unsigned long long>(Smp.shard_slots_live),
      static_cast<double>(DRpcs) * PerS, static_cast<double>(DEnq) * PerS,
      DDeq ? static_cast<double>(DWaitNs) / 1000.0 /
                 static_cast<double>(DDeq)
           : 0.0,
      IntervalNs > 0 ? static_cast<double>(DLockNs) / IntervalNs : 0.0,
      IntervalNs > 0 ? static_cast<double>(DRingNs) / IntervalNs : 0.0,
      static_cast<double>(DSteals) * PerS,
      DRpcs ? static_cast<double>(DSys) / static_cast<double>(DRpcs) : 0.0,
      static_cast<unsigned long long>(DEagain),
      static_cast<unsigned long long>(Smp.window_stalls),
      IntervalNs > 0 ? static_cast<double>(DBusyNs) /
                           (IntervalNs * static_cast<double>(Workers))
                     : 0.0,
      DHits + DMiss ? static_cast<double>(DHits) /
                          static_cast<double>(DHits + DMiss)
                    : 0.0,
      static_cast<unsigned long long>(Smp.m_rpcs_sent),
      static_cast<unsigned long long>(Smp.m_rpcs_handled),
      static_cast<unsigned long long>(Smp.m_request_bytes),
      static_cast<unsigned long long>(Smp.m_queue_full),
      static_cast<unsigned long long>(Smp.slo_met),
      static_cast<unsigned long long>(Smp.slo_violated), BurnRate);
  return Buf;
}

std::string configJson(const Sampler &S) {
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf),
                "{\"interval_us\": %.1f, \"ring_cap\": %u, "
                "\"stall_deadline_us\": %.1f}",
                S.Opts.interval_us, S.Opts.ring_cap,
                S.Opts.stall_deadline_us);
  return Buf;
}

} // namespace

std::string flick_sampler_to_jsonl() {
  Sampler &S = sampler();
  std::vector<flick_sample> Samples = snapshotRing();
  uint64_t Total = S.Head.load(std::memory_order_acquire);
  bool Wrapped = Total > S.Ring.size();
  std::string Out = "{\"type\": \"header\", \"build\": " +
                    flick_build_info_json() +
                    ", \"config\": " + configJson(S) + ", \"samples\": " +
                    std::to_string(Samples.size()) + ", \"stalls_detected\": " +
                    std::to_string(flick_sampler_stalls()) + "}\n";
  for (size_t I = 0; I != Samples.size(); ++I) {
    bool HavePrev = I > 0 || !Wrapped;
    Out += sampleJson(Samples[I], I ? Samples[I - 1] : flick_sample{},
                      HavePrev);
    Out += "\n";
  }
  return Out;
}

std::string flick_sampler_to_json(const char *indent) {
  Sampler &S = sampler();
  std::vector<flick_sample> Samples = snapshotRing();
  uint64_t Total = S.Head.load(std::memory_order_acquire);
  bool Wrapped = Total > S.Ring.size();
  std::string Ind = indent ? indent : "";
  std::string Out = "{\n";
  Out += Ind + "\"build\": " + flick_build_info_json() + ",\n";
  Out += Ind + "\"config\": " + configJson(S) + ",\n";
  Out += Ind + "\"stalls_detected\": " +
         std::to_string(flick_sampler_stalls()) + ",\n";
  Out += Ind + "\"samples\": [";
  for (size_t I = 0; I != Samples.size(); ++I) {
    bool HavePrev = I > 0 || !Wrapped;
    Out += I ? "," : "";
    Out += "\n" + Ind + Ind +
           sampleJson(Samples[I], I ? Samples[I - 1] : flick_sample{},
                      HavePrev);
  }
  Out += Samples.empty() ? "]\n" : "\n" + Ind + "]\n";
  Out += "}\n";
  return Out;
}

std::string flick_sampler_chrome_counters(double epoch_offset_us) {
  std::vector<flick_sample> Samples = snapshotRing();
  Sampler &S = sampler();
  uint64_t Total = S.Head.load(std::memory_order_acquire);
  bool Wrapped = Total > S.Ring.size();
  std::string Out;
  char Buf[256];
  auto Counter = [&](const char *Name, double Ts, const char *Key,
                     double Value) {
    std::snprintf(Buf, sizeof(Buf),
                  "%s\n    {\"name\": \"%s\", \"ph\": \"C\", "
                  "\"ts\": %.3f, \"pid\": 1, \"tid\": 0, "
                  "\"args\": {\"%s\": %.3f}}",
                  Out.empty() ? "" : ",", Name, Ts, Key, Value);
    Out += Buf;
  };
  for (size_t I = 0; I != Samples.size(); ++I) {
    const flick_sample &Smp = Samples[I];
    double Ts = Smp.t_us + epoch_offset_us;
    if (Ts < 0)
      Ts = 0;
    Counter("queue_depth", Ts, "depth",
            static_cast<double>(Smp.queue_depth));
    Counter("inflight_rpcs", Ts, "inflight",
            static_cast<double>(Smp.inflight_rpcs));
    Counter("workers_busy", Ts, "busy",
            static_cast<double>(Smp.workers_busy));
    bool HavePrev = I > 0 || !Wrapped;
    const flick_sample &Prev = I ? Samples[I - 1] : flick_sample{};
    double DtUs = HavePrev ? Smp.t_us - Prev.t_us : 0;
    double DLockNs =
        HavePrev && Smp.lock_wait_ns > Prev.lock_wait_ns
            ? static_cast<double>(Smp.lock_wait_ns - Prev.lock_wait_ns)
            : 0;
    double DRpcs =
        HavePrev && Smp.rpcs_completed > Prev.rpcs_completed
            ? static_cast<double>(Smp.rpcs_completed - Prev.rpcs_completed)
            : 0;
    Counter("lock_wait_frac", Ts, "frac",
            DtUs > 0 ? DLockNs / (DtUs * 1000.0) : 0);
    Counter("rpcs_per_s", Ts, "rate", DtUs > 0 ? DRpcs * 1e6 / DtUs : 0);
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Prometheus text exposition
//===----------------------------------------------------------------------===//

namespace {

/// Escapes a Prometheus label value (backslash, double quote, newline).
std::string promEscape(const char *S) {
  std::string Out;
  for (; *S; ++S) {
    if (*S == '\\' || *S == '"')
      Out += '\\';
    if (*S == '\n') {
      Out += "\\n";
      continue;
    }
    Out += *S;
  }
  return Out;
}

void promMetric(std::string &Out, const char *Name, const char *Type,
                const char *Help, double Value) {
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "# HELP %s %s\n# TYPE %s %s\n%s %.9g\n", Name, Help, Name,
                Type, Name, Value);
  Out += Buf;
}

} // namespace

std::string flick_metrics_to_prometheus(const flick_metrics *m,
                                        const flick_tracer *exemplars) {
  std::string Out;
  Out += "# HELP flick_build_info Build attribution; value is always 1.\n";
  Out += "# TYPE flick_build_info gauge\n";
  Out += "flick_build_info{git=\"" + promEscape(flick_build_git_hash()) +
         "\",compiler=\"" + promEscape(flick_build_compiler()) +
         "\",build_type=\"" + promEscape(flick_build_type()) + "\"} 1\n";

  if (m) {
    struct Counter {
      const char *Name;
      const char *Help;
      uint64_t Value;
    };
    const Counter Counters[] = {
        {"flick_rpcs_sent_total", "Two-way invokes issued.", m->rpcs_sent},
        {"flick_oneways_sent_total", "One-way sends issued.",
         m->oneways_sent},
        {"flick_replies_received_total", "Replies successfully received.",
         m->replies_received},
        {"flick_request_bytes_total", "Bytes sent client to server.",
         m->request_bytes},
        {"flick_reply_bytes_total", "Bytes received server to client.",
         m->reply_bytes},
        {"flick_rpcs_handled_total", "Requests received and dispatched.",
         m->rpcs_handled},
        {"flick_replies_sent_total", "Non-empty replies sent.",
         m->replies_sent},
        {"flick_buf_grows_total", "Marshal buffer grow slow paths.",
         m->buf_grows},
        {"flick_buf_reuses_total", "Buffer resets that kept an allocation.",
         m->buf_reuses},
        {"flick_decode_errors_total", "Malformed or truncated messages.",
         m->decode_errors},
        {"flick_transport_errors_total", "Channel send/recv failures.",
         m->transport_errors},
        {"flick_bytes_copied_total", "Payload bytes moved by copies.",
         m->bytes_copied},
        {"flick_copy_ops_total", "Bulk copy operations on the message path.",
         m->copy_ops},
        {"flick_pool_hits_total", "Pooled wire buffers reused.",
         m->pool_hits},
        {"flick_pool_misses_total", "Wire-buffer pool misses.",
         m->pool_misses},
        {"flick_queue_full_total", "Sends that met a full request queue.",
         m->queue_full},
        {"flick_corr_drops_total",
         "Replies whose correlation id matched no pending call.",
         m->corr_drops},
        {"flick_interp_dispatches_total",
         "Dynamic dispatches run by the interpretive marshaler.",
         m->interp_dispatches},
        {"flick_spec_programs_total",
         "Type programs compiled by the runtime specializer.",
         m->spec_programs},
        {"flick_spec_cache_hits_total",
         "Specialized-program cache hits.", m->spec_cache_hits},
        {"flick_spec_steps_fused_total",
         "Primitive marshal steps fused at specialization time.",
         m->spec_steps_fused},
        {"flick_spec_dispatches_avoided_total",
         "Interpreter dispatches saved by specialized programs.",
         m->spec_dispatches_avoided},
    };
    for (const Counter &C : Counters)
      promMetric(Out, C.Name, "counter", C.Help,
                 static_cast<double>(C.Value));
    promMetric(Out, "flick_wire_time_seconds_total", "counter",
               "Simulated wire time accumulated by modeled links.",
               m->wire_time_us / 1e6);
    promMetric(Out, "flick_spec_compile_seconds_total", "counter",
               "Time spent specializing type programs.",
               static_cast<double>(m->spec_compile_ns) / 1e9);

    // The RPC latency histogram, in base-unit seconds with cumulative
    // buckets as the exposition format requires.  When a tracer with a
    // tail-exemplar reservoir is supplied, each bucket line gets at most
    // one OpenMetrics exemplar annotation: the slowest retained RPC whose
    // duration falls in that bucket, so the post-mortem trace for a tail
    // latency is one trace_id lookup away from the histogram.
    const flick_exemplar *BucketEx[FLICK_HIST_BUCKETS] = {};
    if (exemplars) {
      for (int E = 0; E != FLICK_MAX_ENDPOINTS; ++E)
        for (int S = 0; S != FLICK_EXEMPLAR_SLOTS; ++S) {
          const flick_exemplar &X = exemplars->exemplars.slots[E][S];
          if (!X.n_spans)
            continue;
          // Same bucket rule as flick_hist_record: smallest I with
          // dur < 2^I us.
          int I = 0;
          while (I < FLICK_HIST_BUCKETS - 1 &&
                 X.dur_us >= static_cast<double>(uint64_t(1) << I))
            ++I;
          if (!BucketEx[I] || X.dur_us > BucketEx[I]->dur_us)
            BucketEx[I] = &X;
        }
    }
    const flick_latency_hist &H = m->rpc_latency;
    Out += "# HELP flick_rpc_latency_seconds Client round-trip latency.\n";
    Out += "# TYPE flick_rpc_latency_seconds histogram\n";
    char Buf[256];
    uint64_t Cum = 0;
    for (int I = 0; I != FLICK_HIST_BUCKETS; ++I) {
      if (!H.buckets[I])
        continue;
      Cum += H.buckets[I];
      std::snprintf(Buf, sizeof(Buf),
                    "flick_rpc_latency_seconds_bucket{le=\"%.9g\"} %llu",
                    static_cast<double>(uint64_t(1) << I) / 1e6,
                    static_cast<unsigned long long>(Cum));
      Out += Buf;
      if (const flick_exemplar *X = BucketEx[I]) {
        std::snprintf(Buf, sizeof(Buf),
                      " # {trace_id=\"0x%llx\",endpoint=\"%s\"} %.9g",
                      static_cast<unsigned long long>(X->trace_id),
                      promEscape(flick_endpoint_name(X->endpoint)).c_str(),
                      X->dur_us / 1e6);
        Out += Buf;
      }
      Out += "\n";
    }
    std::snprintf(Buf, sizeof(Buf),
                  "flick_rpc_latency_seconds_bucket{le=\"+Inf\"} %llu\n"
                  "flick_rpc_latency_seconds_sum %.9g\n"
                  "flick_rpc_latency_seconds_count %llu\n",
                  static_cast<unsigned long long>(H.count), H.sum_us / 1e6,
                  static_cast<unsigned long long>(H.count));
    Out += Buf;

    // SLO error-budget counters: one series per endpoint with a
    // configured objective, labeled with the endpoint name and the
    // objective's source text.
    bool AnySlo = false;
    uint32_t NEndpoints = flick_endpoint_count();
    if (NEndpoints > FLICK_MAX_ENDPOINTS)
      NEndpoints = FLICK_MAX_ENDPOINTS;
    for (uint32_t E = 0; E != NEndpoints; ++E)
      if (flick_slo_for(E)->set)
        AnySlo = true;
    if (AnySlo) {
      struct SloFamily {
        const char *Name;
        const char *Help;
        uint64_t flick_endpoint_stats::*Field;
      };
      const SloFamily Families[] = {
          {"flick_slo_met_total",
           "RPCs that completed within their endpoint's latency objective.",
           &flick_endpoint_stats::slo_met},
          {"flick_slo_violated_total",
           "RPCs over their endpoint's latency objective (budget spend).",
           &flick_endpoint_stats::slo_violated},
      };
      for (const SloFamily &F : Families) {
        Out += std::string("# HELP ") + F.Name + " " + F.Help + "\n";
        Out += std::string("# TYPE ") + F.Name + " counter\n";
        for (uint32_t E = 0; E != NEndpoints; ++E) {
          const flick_slo *Slo = flick_slo_for(E);
          if (!Slo->set)
            continue;
          std::snprintf(Buf, sizeof(Buf),
                        "%s{endpoint=\"%s\",objective=\"%s\"} %llu\n", F.Name,
                        promEscape(flick_endpoint_name(E)).c_str(),
                        promEscape(Slo->objective).c_str(),
                        static_cast<unsigned long long>(m->anatomy[E].*
                                                        F.Field));
          Out += Buf;
        }
      }
    }
  }

  // The live gauge block: instantaneous values as gauges, cumulative ones
  // as counters in base units.
  const flick_gauges &G = flick_gauges_global;
  auto Ld = [](const std::atomic<uint64_t> &A) {
    return static_cast<double>(A.load(std::memory_order_relaxed));
  };
  promMetric(Out, "flick_queue_depth", "gauge",
             "Transport requests currently queued.", Ld(G.queue_depth));
  promMetric(Out, "flick_inflight_rpcs", "gauge",
             "Client invokes currently in flight.", Ld(G.inflight_rpcs));
  promMetric(Out, "flick_pool_buffers", "gauge",
             "Wire buffers parked in per-thread pools.", Ld(G.pool_buffers));
  promMetric(Out, "flick_workers_busy", "gauge",
             "Pool workers currently inside dispatch.", Ld(G.workers_busy));
  promMetric(Out, "flick_workers_running", "gauge",
             "Live pool worker threads.", Ld(G.workers_running));
  promMetric(Out, "flick_rpcs_completed_total", "counter",
             "Client invokes finished.", Ld(G.rpcs_completed));
  promMetric(Out, "flick_queue_enqueues_total", "counter",
             "Requests pushed to the MPSC queue.", Ld(G.queue_enqueues));
  promMetric(Out, "flick_queue_dequeues_total", "counter",
             "Requests popped by workers.", Ld(G.queue_dequeues));
  promMetric(Out, "flick_queue_wait_seconds_total", "counter",
             "Total enqueue-to-dequeue wait.", Ld(G.queue_wait_ns) / 1e9);
  promMetric(Out, "flick_lock_wait_seconds_total", "counter",
             "Total time blocked acquiring the queue mutex.",
             Ld(G.lock_wait_ns) / 1e9);
  promMetric(Out, "flick_lock_acquires_total", "counter",
             "Timed queue-mutex acquisitions.", Ld(G.lock_acquires));
  promMetric(Out, "flick_queue_full_waits_total", "counter",
             "Sends that met a full request queue.", Ld(G.queue_full_waits));
  promMetric(Out, "flick_pool_gauge_hits_total", "counter",
             "Pooled wire buffers reused (gauge-side count).",
             Ld(G.pool_gauge_hits));
  promMetric(Out, "flick_pool_gauge_misses_total", "counter",
             "Wire-buffer pool misses (gauge-side count).",
             Ld(G.pool_gauge_misses));
  promMetric(Out, "flick_worker_busy_seconds_total", "counter",
             "Total time pool workers spent dispatching.",
             Ld(G.worker_busy_ns) / 1e9);
  promMetric(Out, "flick_stalls_detected_total", "counter",
             "Watchdog deadline violations.", Ld(G.stalls_detected));
  promMetric(Out, "flick_ring_wait_seconds_total", "counter",
             "Total time senders blocked on a full sharded ring.",
             Ld(G.ring_wait_ns) / 1e9);
  promMetric(Out, "flick_steals_total", "counter",
             "Cross-shard request pops by pool workers.", Ld(G.steals));
  promMetric(Out, "flick_sock_syscalls_total", "counter",
             "Socket-transport syscalls issued.", Ld(G.sock_syscalls));
  promMetric(Out, "flick_sock_eagain_total", "counter",
             "Socket-transport send EAGAIN retries.", Ld(G.sock_eagain));
  promMetric(Out, "flick_window_stalls_total", "counter",
             "Async-client submits that found the pipeline window full.",
             Ld(G.window_stalls));
  {
    Out += "# HELP flick_shard_depth Requests queued per transport shard.\n";
    Out += "# TYPE flick_shard_depth gauge\n";
    char Buf[96];
    for (int I = 0; I != FLICK_GAUGE_SHARD_SLOTS; ++I) {
      std::snprintf(Buf, sizeof(Buf),
                    "flick_shard_depth{shard=\"%d\"} %llu\n", I,
                    static_cast<unsigned long long>(G.shard_depth[I].load(
                        std::memory_order_relaxed)));
      Out += Buf;
    }
  }
  return Out;
}
