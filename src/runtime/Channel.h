//===- runtime/Channel.h - Transport channels -------------------*- C++ -*-===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Message transports beneath the generated stubs.  LocalLink provides a
/// deterministic in-process request/reply pair: the client endpoint's recv
/// "pumps" the registered server when its queue is empty, so examples and
/// benches run single-threaded.  A link may carry a NetworkModel + SimClock
/// to account simulated wire time per message (the substitute for the
/// paper's Ethernet/Myrinet/Mach testbeds -- see NetworkModel.h).
///
//===----------------------------------------------------------------------===//

#ifndef FLICK_RUNTIME_CHANNEL_H
#define FLICK_RUNTIME_CHANNEL_H

#include "runtime/NetworkModel.h"
#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

struct flick_buf;

namespace flick {

/// Abstract message transport: send one framed message / receive one.
class Channel {
public:
  virtual ~Channel();

  /// Queues one message.  Returns FLICK_OK or FLICK_ERR_TRANSPORT.
  virtual int send(const uint8_t *Data, size_t Len) = 0;

  /// Receives one message into \p Out (cleared first).  Returns FLICK_OK
  /// or FLICK_ERR_TRANSPORT when no message can be produced.
  virtual int recv(std::vector<uint8_t> &Out) = 0;
};

/// An in-process bidirectional link with two endpoints.  Endpoint A is the
/// client side, endpoint B the server side.  When A receives with an empty
/// queue, the link invokes the pump callback (typically
/// `flick_server_handle_one`) until a reply appears, keeping everything on
/// one thread and deterministic.
class LocalLink {
public:
  LocalLink();

  /// Attaches a wire-time model; every send advances \p Clock.
  void setModel(NetworkModel Model, SimClock *Clock);

  /// Registers the server pump invoked when the client blocks on recv.
  /// Returning false means "cannot make progress" (transport error).
  void setPump(std::function<bool()> Pump) { this->Pump = std::move(Pump); }

  Channel &clientEnd() { return AEnd; }
  Channel &serverEnd() { return BEnd; }

  /// Messages queued toward the server that it has not received yet.
  size_t pendingToServer() const { return ToB.size(); }

private:
  class End final : public Channel {
  public:
    End(LocalLink &Link, bool IsClient) : Link(Link), IsClient(IsClient) {}
    int send(const uint8_t *Data, size_t Len) override;
    int recv(std::vector<uint8_t> &Out) override;

  private:
    LocalLink &Link;
    bool IsClient;
  };

  /// One queued message plus its out-of-band trace context: the sender's
  /// (trace id, span id) ride beside the bytes, never inside them, so
  /// tracing cannot perturb the wire format.
  struct Msg {
    std::vector<uint8_t> Bytes;
    uint64_t TraceId = 0;
    uint64_t ParentSpan = 0;
  };

  void account(size_t Len);

  std::deque<Msg> ToA; // server -> client
  std::deque<Msg> ToB; // client -> server
  NetworkModel Model = NetworkModel::ideal();
  SimClock *Clock = nullptr;
  std::function<bool()> Pump;
  End AEnd;
  End BEnd;
};

} // namespace flick

#endif // FLICK_RUNTIME_CHANNEL_H
