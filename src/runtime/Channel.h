//===- runtime/Channel.h - Transport channels -------------------*- C++ -*-===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Message transports beneath the generated stubs, in two modes:
///
///  - LocalLink: a deterministic in-process request/reply pair.  The
///    client endpoint's recv "pumps" the registered server when its queue
///    is empty, so examples, goldens, and the fig3-7 benches run on one
///    thread with reproducible interleaving.  A link may carry a
///    NetworkModel + SimClock to account simulated wire time per message
///    (the substitute for the paper's Ethernet/Myrinet/Mach testbeds --
///    see NetworkModel.h).
///
///  - ThreadedLink: the concurrent transport for the parallel runtime.
///    Any number of client connections feed one bounded, mutex/condvar
///    MPSC request queue drained by N worker channels (see
///    flick_server_pool); replies route back over per-connection queues.
///    An attached NetworkModel is realized as *real* blocking time -- the
///    sender sleeps the modeled transit -- so a worker pool overlaps wire
///    latency across connections the way a production stack overlaps
///    NIC/syscall waits.
///
/// Both modes share the pooled zero-copy wire-buffer path (WireBufPool):
/// each endpoint owns its pool and, in threaded mode, is confined to one
/// thread, so buffer reuse never takes a lock.
///
//===----------------------------------------------------------------------===//

#ifndef FLICK_RUNTIME_CHANNEL_H
#define FLICK_RUNTIME_CHANNEL_H

#include "runtime/NetworkModel.h"
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

struct flick_buf;
struct flick_iov;

namespace flick {

/// Abstract message transport: send one framed message / receive one.
/// The scatter-gather entry points have distinct names (not overloads) so
/// a subclass overriding only the flat pair keeps working unchanged: the
/// base-class defaults bridge to send()/recv(), paying one staging copy,
/// while transports that can do better (LocalLink) override them.
class Channel {
public:
  virtual ~Channel();

  /// Queues one message.  Returns FLICK_OK or FLICK_ERR_TRANSPORT.
  virtual int send(const uint8_t *Data, size_t Len) = 0;

  /// Receives one message into \p Out (cleared first).  Returns FLICK_OK
  /// or FLICK_ERR_TRANSPORT when no message can be produced.
  virtual int recv(std::vector<uint8_t> &Out) = 0;

  /// Queues one message given as \p Count scatter-gather segments, which
  /// are borrowed only for the duration of the call.  Default: flattens
  /// the segments into one staging vector and calls send().
  virtual int sendv(const flick_iov *Segs, size_t Count);

  /// Receives one message directly into \p Into (reset first).  Default:
  /// stages through recv() and copies; transports owning their message
  /// storage can hand the buffer over by move instead.
  virtual int recvInto(flick_buf *Into);

  /// Hint that \p Buf's contents are dead (the dispatch frame or client
  /// call that was reading them has finished).  Transports that adopt
  /// pooled storage into receive buffers (recvInto) reclaim it here, so
  /// the next sender refills the same hot allocation instead of
  /// ping-ponging between two; others leave the buffer's storage alone
  /// for flick_buf's own reuse.  The buffer stays valid either way.
  virtual void release(flick_buf *Buf);
};

/// Fixed-size free list of malloc'd wire-message allocations (DESIGN.md
/// §11): a receiver adopts a pooled buffer whole instead of copying it
/// out, and releases its previous one for the next sender to refill.  Not
/// internally synchronized -- every pool belongs to one channel endpoint,
/// and in threaded mode each endpoint is confined to one thread, so the
/// zero-copy path stays hot without a global lock.  Buffers migrate
/// freely between pools (all storage is plain malloc/free).
class WireBufPool {
public:
  ~WireBufPool();

  /// Returns a buffer with capacity >= \p Need: a pooled one when the
  /// free list has a fit (pool_hits), else a fresh malloc (pool_misses).
  uint8_t *acquire(size_t Need, size_t *Cap);

  /// Parks \p Data for reuse, or frees it when the pool is full.
  void release(uint8_t *Data, size_t Cap);

private:
  struct Ent {
    uint8_t *Data;
    size_t Cap;
  };
  enum { MaxBufs = 8 };
  Ent Bufs[MaxBufs];
  size_t Count = 0;
};

/// An in-process bidirectional link with two endpoints.  Endpoint A is the
/// client side, endpoint B the server side.  When A receives with an empty
/// queue, the link invokes the pump callback (typically
/// `flick_server_handle_one`) until a reply appears, keeping everything on
/// one thread and deterministic.  This is the single-threaded mode; for
/// concurrent clients and a worker pool, use ThreadedLink.
class LocalLink {
public:
  LocalLink();
  ~LocalLink();

  /// Attaches a wire-time model; every send advances \p Clock.
  void setModel(NetworkModel Model, SimClock *Clock);

  /// Registers the server pump invoked when the client blocks on recv.
  /// Returning false means "cannot make progress" (transport error).
  void setPump(std::function<bool()> Pump) { this->Pump = std::move(Pump); }

  Channel &clientEnd() { return AEnd; }
  Channel &serverEnd() { return BEnd; }

  /// Messages queued toward the server that it has not received yet.
  size_t pendingToServer() const { return ToB.size(); }

private:
  class End final : public Channel {
  public:
    End(LocalLink &Link, bool IsClient) : Link(Link), IsClient(IsClient) {}
    int send(const uint8_t *Data, size_t Len) override;
    int recv(std::vector<uint8_t> &Out) override;
    int sendv(const flick_iov *Segs, size_t Count) override;
    int recvInto(flick_buf *Into) override;
    void release(flick_buf *Buf) override;

  private:
    LocalLink &Link;
    bool IsClient;
  };

  /// One queued message plus its out-of-band trace context: the sender's
  /// (trace id, span id) ride beside the bytes, never inside them, so
  /// tracing cannot perturb the wire format.  The wire bytes live in a
  /// pool-managed malloc allocation so a receiver can adopt it whole
  /// (recvInto) instead of copying it out.
  struct Msg {
    uint8_t *Data = nullptr;
    size_t Cap = 0;
    size_t Len = 0;
    uint64_t TraceId = 0;
    uint64_t ParentSpan = 0;
  };

  void account(size_t Len);

  std::deque<Msg> ToA; // server -> client
  std::deque<Msg> ToB; // client -> server
  WireBufPool Pool;
  NetworkModel Model = NetworkModel::ideal();
  SimClock *Clock = nullptr;
  std::function<bool()> Pump;
  End AEnd;
  End BEnd;
};

/// The concurrent transport: many client connections, one bounded MPSC
/// request queue, N worker channels, per-connection reply queues.
///
/// Thread contract: each channel returned by connect() belongs to one
/// client thread and each channel returned by workerEnd() to one worker
/// thread; only the request queue and the per-connection reply queues are
/// shared (mutex/condvar), so every wire-buffer pool stays lock-free.
/// Telemetry written on a channel's hot path lands in its thread's own
/// thread-local flick_metrics / flick_tracer blocks.
///
/// Backpressure: the request queue is bounded (QueueCap).  A send that
/// finds it full counts one `queue_full` metric event and blocks until a
/// worker drains an entry or the link shuts down.
///
/// Shutdown: shutdown() wakes every waiter.  Workers drain the requests
/// already queued, then their recv fails with FLICK_ERR_TRANSPORT; sends
/// and replies-in-wait fail immediately, so in-flight calls abort -- stop
/// client traffic first for a loss-free drain (flick_server_pool_stop
/// does the link shutdown for you).
///
/// Wire model: setModel() attaches a NetworkModel whose per-message time
/// is slept by the *sender* (outside any lock) instead of advancing a
/// SimClock, so concurrency genuinely overlaps it.  Modeled time is still
/// accounted to the sending thread's wire_time_us and trace ring.
class ThreadedLink {
public:
  explicit ThreadedLink(size_t QueueCap = 256);
  ~ThreadedLink();

  /// Attaches a wire-time model; every send sleeps the modeled transit.
  void setModel(NetworkModel Model);

  /// Creates a new client connection.  The returned channel (and the
  /// flick_client on top of it) must be used by one thread at a time.
  Channel &connect();

  /// Creates a new worker-side channel: recv pops the next request from
  /// any connection, send routes the reply back to that request's
  /// connection.  One per worker thread.
  Channel &workerEnd();

  /// Wakes every blocked sender/receiver; see the class comment.
  /// Idempotent.  Call before destroying the link while threads may still
  /// be using it, and join them before the destructor runs.
  void shutdown();

  /// Requests queued and not yet picked up by a worker (for tests).
  size_t pendingRequests() const;

private:
  /// One queued message; bytes live in a pool-managed malloc allocation
  /// and the sender's trace context rides out of band, as in LocalLink.
  /// EnqNs stamps when the request entered the MPSC queue (gauge clock, 0
  /// when the flight recorder is off) so the dequeue side can account the
  /// enqueue-to-dequeue wait.
  struct Msg {
    uint8_t *Data = nullptr;
    size_t Cap = 0;
    size_t Len = 0;
    uint64_t TraceId = 0;
    uint64_t ParentSpan = 0;
    uint64_t EnqNs = 0;
  };

  class Conn final : public Channel {
  public:
    explicit Conn(ThreadedLink &Link) : Link(Link) {}
    ~Conn() override;
    int send(const uint8_t *Data, size_t Len) override;
    int recv(std::vector<uint8_t> &Out) override;
    int sendv(const flick_iov *Segs, size_t Count) override;
    int recvInto(flick_buf *Into) override;
    void release(flick_buf *Buf) override;

  private:
    friend class ThreadedLink;
    /// Blocks for the next reply (or shutdown).
    int awaitReply(Msg *M);

    ThreadedLink &Link;
    std::mutex RMu;
    std::condition_variable RCv;
    std::deque<Msg> RepQ;
    WireBufPool Pool;
  };

  class WorkerChan final : public Channel {
  public:
    explicit WorkerChan(ThreadedLink &Link) : Link(Link) {}
    int send(const uint8_t *Data, size_t Len) override;
    int recv(std::vector<uint8_t> &Out) override;
    int sendv(const flick_iov *Segs, size_t Count) override;
    int recvInto(flick_buf *Into) override;
    void release(flick_buf *Buf) override;

  private:
    friend class ThreadedLink;
    /// Finishes an outgoing reply: stamp, sleep, route to CurConn.
    int sendReply(Msg M);

    ThreadedLink &Link;
    Conn *CurConn = nullptr; ///< connection of the last received request
    WireBufPool Pool;
  };

  /// Sleeps the modeled transit time for a \p Len-byte message and
  /// accounts it to the calling thread's telemetry.
  void wireDelay(size_t Len);
  /// Blocking bounded push of a request; FLICK_ERR_TRANSPORT after
  /// shutdown (ownership of M.Data returns to \p From's pool).
  int pushRequest(Conn *From, Msg M);
  /// Blocking pop of the next request; drains the queue even after
  /// shutdown, then fails.
  int popRequest(Conn **From, Msg *M);

  mutable std::mutex QMu;
  std::condition_variable QNotEmpty;
  std::condition_variable QNotFull;
  struct Req {
    Conn *From;
    Msg M;
  };
  std::deque<Req> ReqQ;
  const size_t QueueCap;
  std::atomic<bool> Down{false};

  bool Modeled = false;
  NetworkModel Model = NetworkModel::ideal();

  /// Endpoint storage; guarded by EndsMu during creation only (channels
  /// themselves are owned by their threads afterwards).
  mutable std::mutex EndsMu;
  std::vector<std::unique_ptr<Conn>> Conns;
  std::vector<std::unique_ptr<WorkerChan>> Workers;
};

} // namespace flick

#endif // FLICK_RUNTIME_CHANNEL_H
