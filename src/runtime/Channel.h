//===- runtime/Channel.h - Transport channels -------------------*- C++ -*-===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Message transports beneath the generated stubs.  LocalLink provides a
/// deterministic in-process request/reply pair: the client endpoint's recv
/// "pumps" the registered server when its queue is empty, so examples and
/// benches run single-threaded.  A link may carry a NetworkModel + SimClock
/// to account simulated wire time per message (the substitute for the
/// paper's Ethernet/Myrinet/Mach testbeds -- see NetworkModel.h).
///
//===----------------------------------------------------------------------===//

#ifndef FLICK_RUNTIME_CHANNEL_H
#define FLICK_RUNTIME_CHANNEL_H

#include "runtime/NetworkModel.h"
#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

struct flick_buf;
struct flick_iov;

namespace flick {

/// Abstract message transport: send one framed message / receive one.
/// The scatter-gather entry points have distinct names (not overloads) so
/// a subclass overriding only the flat pair keeps working unchanged: the
/// base-class defaults bridge to send()/recv(), paying one staging copy,
/// while transports that can do better (LocalLink) override them.
class Channel {
public:
  virtual ~Channel();

  /// Queues one message.  Returns FLICK_OK or FLICK_ERR_TRANSPORT.
  virtual int send(const uint8_t *Data, size_t Len) = 0;

  /// Receives one message into \p Out (cleared first).  Returns FLICK_OK
  /// or FLICK_ERR_TRANSPORT when no message can be produced.
  virtual int recv(std::vector<uint8_t> &Out) = 0;

  /// Queues one message given as \p Count scatter-gather segments, which
  /// are borrowed only for the duration of the call.  Default: flattens
  /// the segments into one staging vector and calls send().
  virtual int sendv(const flick_iov *Segs, size_t Count);

  /// Receives one message directly into \p Into (reset first).  Default:
  /// stages through recv() and copies; transports owning their message
  /// storage can hand the buffer over by move instead.
  virtual int recvInto(flick_buf *Into);

  /// Hint that \p Buf's contents are dead (the dispatch frame or client
  /// call that was reading them has finished).  Transports that adopt
  /// pooled storage into receive buffers (recvInto) reclaim it here, so
  /// the next sender refills the same hot allocation instead of
  /// ping-ponging between two; others leave the buffer's storage alone
  /// for flick_buf's own reuse.  The buffer stays valid either way.
  virtual void release(flick_buf *Buf);
};

/// An in-process bidirectional link with two endpoints.  Endpoint A is the
/// client side, endpoint B the server side.  When A receives with an empty
/// queue, the link invokes the pump callback (typically
/// `flick_server_handle_one`) until a reply appears, keeping everything on
/// one thread and deterministic.
class LocalLink {
public:
  LocalLink();
  ~LocalLink();

  /// Attaches a wire-time model; every send advances \p Clock.
  void setModel(NetworkModel Model, SimClock *Clock);

  /// Registers the server pump invoked when the client blocks on recv.
  /// Returning false means "cannot make progress" (transport error).
  void setPump(std::function<bool()> Pump) { this->Pump = std::move(Pump); }

  Channel &clientEnd() { return AEnd; }
  Channel &serverEnd() { return BEnd; }

  /// Messages queued toward the server that it has not received yet.
  size_t pendingToServer() const { return ToB.size(); }

private:
  class End final : public Channel {
  public:
    End(LocalLink &Link, bool IsClient) : Link(Link), IsClient(IsClient) {}
    int send(const uint8_t *Data, size_t Len) override;
    int recv(std::vector<uint8_t> &Out) override;
    int sendv(const flick_iov *Segs, size_t Count) override;
    int recvInto(flick_buf *Into) override;
    void release(flick_buf *Buf) override;

  private:
    LocalLink &Link;
    bool IsClient;
  };

  /// One queued message plus its out-of-band trace context: the sender's
  /// (trace id, span id) ride beside the bytes, never inside them, so
  /// tracing cannot perturb the wire format.  The wire bytes live in a
  /// pool-managed malloc allocation so a receiver can adopt it whole
  /// (recvInto) instead of copying it out.
  struct Msg {
    uint8_t *Data = nullptr;
    size_t Cap = 0;
    size_t Len = 0;
    uint64_t TraceId = 0;
    uint64_t ParentSpan = 0;
  };

  /// One parked wire-buffer allocation, waiting to back the next send.
  struct PoolEnt {
    uint8_t *Data;
    size_t Cap;
  };

  enum { PoolMaxBufs = 8 };

  void account(size_t Len);
  /// Returns a buffer with capacity >= \p Need: a pooled one when the
  /// free list has a fit (pool_hits), else a fresh malloc (pool_misses).
  uint8_t *poolAcquire(size_t Need, size_t *Cap);
  /// Parks \p Data for reuse, or frees it when the pool is full.
  void poolRelease(uint8_t *Data, size_t Cap);

  std::deque<Msg> ToA; // server -> client
  std::deque<Msg> ToB; // client -> server
  PoolEnt Pool[PoolMaxBufs];
  size_t PoolCount = 0;
  NetworkModel Model = NetworkModel::ideal();
  SimClock *Clock = nullptr;
  std::function<bool()> Pump;
  End AEnd;
  End BEnd;
};

} // namespace flick

#endif // FLICK_RUNTIME_CHANNEL_H
