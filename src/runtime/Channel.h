//===- runtime/Channel.h - Message channel + wire-buffer pool ---*- C++ -*-===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Channel abstraction beneath the generated stubs (send/recv one
/// framed message, scatter-gather variants, receive-by-adoption) and the
/// WireBufPool both sides of every link share.
///
/// The concrete transports moved to `runtime/transport/`:
///
///  - transport/LocalLink.h    deterministic single-threaded pump link
///                             (examples, goldens, fig3-7 benches)
///  - transport/Transport.h    the pluggable seam for the concurrent
///                             runtime, with ThreadedLink (mutex queue
///                             baseline), ShardedLink (lock-free rings +
///                             work stealing), and SocketLink (Unix
///                             sockets + epoll) behind it
///
/// This header intentionally keeps no transport: code that only moves
/// bytes over "some channel" includes this; code that builds links picks
/// one from transport/.
///
//===----------------------------------------------------------------------===//

#ifndef FLICK_RUNTIME_CHANNEL_H
#define FLICK_RUNTIME_CHANNEL_H

#include <cstddef>
#include <cstdint>
#include <vector>

struct flick_buf;
struct flick_iov;

namespace flick {

/// Abstract message transport: send one framed message / receive one.
/// The scatter-gather entry points have distinct names (not overloads) so
/// a subclass overriding only the flat pair keeps working unchanged: the
/// base-class defaults bridge to send()/recv(), paying one staging copy,
/// while transports that can do better override them.
class Channel {
public:
  virtual ~Channel();

  /// Queues one message.  Returns FLICK_OK or FLICK_ERR_TRANSPORT.
  virtual int send(const uint8_t *Data, size_t Len) = 0;

  /// Receives one message into \p Out (cleared first).  Returns FLICK_OK
  /// or FLICK_ERR_TRANSPORT when no message can be produced.
  virtual int recv(std::vector<uint8_t> &Out) = 0;

  /// Queues one message given as \p Count scatter-gather segments, which
  /// are borrowed only for the duration of the call.  Default: flattens
  /// the segments into one staging vector and calls send().
  virtual int sendv(const flick_iov *Segs, size_t Count);

  /// Receives one message directly into \p Into (reset first).  Default:
  /// stages through recv() and copies; transports owning their message
  /// storage can hand the buffer over by move instead.
  virtual int recvInto(flick_buf *Into);

  /// Hint that \p Buf's contents are dead (the dispatch frame or client
  /// call that was reading them has finished).  Transports that adopt
  /// pooled storage into receive buffers (recvInto) reclaim it here, so
  /// the next sender refills the same hot allocation instead of
  /// ping-ponging between two; others leave the buffer's storage alone
  /// for flick_buf's own reuse.  The buffer stays valid either way.
  virtual void release(flick_buf *Buf);

  /// Queues \p NMsgs whole messages in one call, each given as its own
  /// scatter-gather segment list (Segs[i], Counts[i] segments).  Used by
  /// the async client's oneway corking: transports that can amortize
  /// per-send cost override this (SocketLink issues one sendmsg over all
  /// frames); the default just loops sendv per message.  Stops at the
  /// first failure and returns its status.
  virtual int sendBatch(const flick_iov *const *Segs, const size_t *Counts,
                        size_t NMsgs);

  //===--------------------------------------------------------------------===//
  // Out-of-band request correlation (DESIGN.md §15)
  //
  // The async pipelined client tags every outgoing request with a nonzero
  // correlation id; the transport carries it *next to* the payload (in
  // the queue transports' Msg struct / SocketLink's frame header, exactly
  // where the trace context already rides) so payload bytes are identical
  // whether or not the caller pipelines.  A worker-side channel that
  // receives a request auto-echoes the id onto its next reply, so servers
  // need no changes.  Synchronous clients never call setCorrelation and
  // the id stays 0 throughout.
  //===--------------------------------------------------------------------===//

  /// Sets the correlation id stamped on subsequent outgoing messages.
  void setCorrelation(uint64_t Id) { CorrOut = Id; }

  /// The correlation id carried by the most recently received message
  /// (0 when the sender did not tag it).
  uint64_t lastCorrelation() const { return CorrIn; }

protected:
  uint64_t CorrOut = 0; ///< id stamped on the next send
  uint64_t CorrIn = 0;  ///< id carried by the last received message
};

/// Fixed-size free list of malloc'd wire-message allocations (DESIGN.md
/// §11): a receiver adopts a pooled buffer whole instead of copying it
/// out, and releases its previous one for the next sender to refill.  Not
/// internally synchronized -- every pool belongs to one channel endpoint,
/// and in threaded mode each endpoint is confined to one thread, so the
/// zero-copy path stays hot without a global lock.  Buffers migrate
/// freely between pools (all storage is plain malloc/free).
class WireBufPool {
public:
  ~WireBufPool();

  /// Returns a buffer with capacity >= \p Need: a pooled one when the
  /// free list has a fit (pool_hits), else a fresh malloc (pool_misses).
  uint8_t *acquire(size_t Need, size_t *Cap);

  /// Parks \p Data for reuse, or frees it when the pool is full.
  void release(uint8_t *Data, size_t Cap);

private:
  struct Ent {
    uint8_t *Data;
    size_t Cap;
  };
  enum { MaxBufs = 8 };
  Ent Bufs[MaxBufs];
  size_t Count = 0;
};

} // namespace flick

#endif // FLICK_RUNTIME_CHANNEL_H
