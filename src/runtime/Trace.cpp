//===- runtime/Trace.cpp - Per-RPC distributed tracing --------------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "runtime/Trace.h"
#include "runtime/flick_runtime.h"
#include "support/BuildInfo.h"
#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <unordered_map>
#include <vector>

thread_local flick_tracer *flick_trace_active = nullptr;

//===----------------------------------------------------------------------===//
// Endpoint registry and SLOs
//===----------------------------------------------------------------------===//

namespace {

struct EndpointReg {
  std::mutex Mu;
  char Names[FLICK_MAX_ENDPOINTS][48];
  flick_slo Slos[FLICK_MAX_ENDPOINTS];
  /// Ids minted; names/slos below Count are immutable once published
  /// (release store), so readers only need the acquire load.
  std::atomic<uint32_t> Count{1};
};

bool parseSlo(const char *Spec, flick_slo *Out) {
  *Out = flick_slo{};
  if (!Spec || Spec[0] != 'p')
    return false;
  const char *P = Spec + 1;
  const char *Digits = P;
  while (*P >= '0' && *P <= '9')
    ++P;
  if (P == Digits || *P != '<')
    return false;
  double Target = 0, Scale = 1;
  for (const char *C = Digits; C != P; ++C) {
    Scale /= 10;
    Target += (*C - '0') * Scale;
  }
  ++P; // past '<'
  char *End = nullptr;
  double Bound = std::strtod(P, &End);
  if (End == P || Bound <= 0)
    return false;
  double Mult;
  if (!std::strcmp(End, "us"))
    Mult = 1;
  else if (!std::strcmp(End, "ms"))
    Mult = 1e3;
  else if (!std::strcmp(End, "s"))
    Mult = 1e6;
  else
    return false;
  Out->set = 1;
  Out->target = Target;
  Out->threshold_us = Bound * Mult;
  std::snprintf(Out->objective, sizeof(Out->objective), "%s", Spec);
  return true;
}

/// Reads FLICK_SLO_<NAME> (falling back to FLICK_SLO_DEFAULT) for slot
/// \p Id.  Caller holds R.Mu or is still single-threaded.
void loadSloFor(EndpointReg &R, uint32_t Id) {
  char Env[96] = "FLICK_SLO_";
  size_t At = std::strlen(Env);
  for (const char *C = R.Names[Id]; *C && At + 1 < sizeof(Env); ++C)
    Env[At++] = std::isalnum(static_cast<unsigned char>(*C))
                    ? static_cast<char>(
                          std::toupper(static_cast<unsigned char>(*C)))
                    : '_';
  Env[At] = 0;
  const char *Spec = std::getenv(Env);
  if (!Spec || !*Spec)
    Spec = std::getenv("FLICK_SLO_DEFAULT");
  parseSlo(Spec, &R.Slos[Id]);
}

EndpointReg &endpointReg() {
  static EndpointReg *R = [] {
    auto *Reg = new EndpointReg;
    std::snprintf(Reg->Names[0], sizeof(Reg->Names[0]), "default");
    loadSloFor(*Reg, 0);
    return Reg;
  }();
  return *R;
}

} // namespace

uint32_t flick_endpoint_intern(const char *name) {
  if (!name || !*name)
    return 0;
  EndpointReg &R = endpointReg();
  std::lock_guard<std::mutex> L(R.Mu);
  uint32_t N = R.Count.load(std::memory_order_relaxed);
  for (uint32_t I = 0; I != N; ++I)
    if (!std::strcmp(R.Names[I], name))
      return I;
  if (N == FLICK_MAX_ENDPOINTS)
    return 0; // full: attribute to the default endpoint
  std::snprintf(R.Names[N], sizeof(R.Names[N]), "%s", name);
  loadSloFor(R, N);
  R.Count.store(N + 1, std::memory_order_release);
  return N;
}

const char *flick_endpoint_name(uint32_t id) {
  EndpointReg &R = endpointReg();
  if (id >= R.Count.load(std::memory_order_acquire))
    return "default";
  return R.Names[id];
}

uint32_t flick_endpoint_count() {
  return endpointReg().Count.load(std::memory_order_acquire);
}

void flick_endpoint_reset_for_tests() {
  EndpointReg &R = endpointReg();
  std::lock_guard<std::mutex> L(R.Mu);
  R.Count.store(1, std::memory_order_release);
  loadSloFor(R, 0);
}

const flick_slo *flick_slo_for(uint32_t id) {
  EndpointReg &R = endpointReg();
  if (id >= R.Count.load(std::memory_order_acquire))
    id = 0;
  return &R.Slos[id];
}

void flick_slo_reload() {
  EndpointReg &R = endpointReg();
  std::lock_guard<std::mutex> L(R.Mu);
  uint32_t N = R.Count.load(std::memory_order_relaxed);
  for (uint32_t I = 0; I != N; ++I)
    loadSloFor(R, I);
}

double flick_slo_strictest_allowed() {
  EndpointReg &R = endpointReg();
  uint32_t N = R.Count.load(std::memory_order_acquire);
  double Allowed = 0;
  for (uint32_t I = 0; I != N; ++I)
    if (R.Slos[I].set) {
      double A = 1.0 - R.Slos[I].target;
      if (Allowed == 0 || A < Allowed)
        Allowed = A;
    }
  return Allowed;
}

//===----------------------------------------------------------------------===//
// Latency histogram
//===----------------------------------------------------------------------===//

void flick_hist_record(flick_latency_hist *h, double us) {
  if (us < 0)
    us = 0;
  ++h->count;
  h->sum_us += us;
  if (us > h->max_us)
    h->max_us = us;
  // Bucket i holds [2^(i-1), 2^i); find the smallest i with us < 2^i.
  int I = 0;
  while (I < FLICK_HIST_BUCKETS - 1 &&
         us >= static_cast<double>(uint64_t(1) << I))
    ++I;
  ++h->buckets[I];
}

void flick_hist_merge(flick_latency_hist *dst, const flick_latency_hist *src) {
  dst->count += src->count;
  for (int I = 0; I != FLICK_HIST_BUCKETS; ++I)
    dst->buckets[I] += src->buckets[I];
  dst->sum_us += src->sum_us;
  if (src->max_us > dst->max_us)
    dst->max_us = src->max_us;
}

double flick_hist_percentile(const flick_latency_hist *h, double p) {
  if (h->count == 0)
    return 0;
  if (p < 0)
    p = 0;
  if (p > 1)
    p = 1;
  uint64_t Target = static_cast<uint64_t>(p * static_cast<double>(h->count));
  if (Target * 1.0 < p * static_cast<double>(h->count))
    ++Target; // ceil
  if (Target == 0)
    Target = 1;
  uint64_t Cum = 0;
  for (int I = 0; I != FLICK_HIST_BUCKETS; ++I) {
    Cum += h->buckets[I];
    if (Cum >= Target) {
      double Bound = static_cast<double>(uint64_t(1) << I);
      return Bound < h->max_us ? Bound : h->max_us;
    }
  }
  return h->max_us;
}

std::string flick_hist_to_json(const flick_latency_hist *h,
                               const char *indent) {
  char Buf[96];
  std::string Out = "{\n";
  auto Line = [&](const char *Key, double V, bool Comma) {
    std::snprintf(Buf, sizeof(Buf), "%s\"%s\": %.3f%s\n", indent, Key, V,
                  Comma ? "," : "");
    Out += Buf;
  };
  std::snprintf(Buf, sizeof(Buf), "%s\"count\": %llu,\n", indent,
                static_cast<unsigned long long>(h->count));
  Out += Buf;
  Line("sum_us", h->sum_us, true);
  Line("mean_us",
       h->count ? h->sum_us / static_cast<double>(h->count) : 0, true);
  Line("p50_us", flick_hist_percentile(h, 0.50), true);
  Line("p90_us", flick_hist_percentile(h, 0.90), true);
  Line("p99_us", flick_hist_percentile(h, 0.99), true);
  Line("max_us", h->max_us, true);
  // Nonzero buckets as [upper_bound_us, count] pairs.
  Out += indent;
  Out += "\"buckets\": [";
  bool First = true;
  for (int I = 0; I != FLICK_HIST_BUCKETS; ++I) {
    if (!h->buckets[I])
      continue;
    std::snprintf(Buf, sizeof(Buf), "%s[%llu, %llu]", First ? "" : ", ",
                  static_cast<unsigned long long>(uint64_t(1) << I),
                  static_cast<unsigned long long>(h->buckets[I]));
    Out += Buf;
    First = false;
  }
  Out += "]\n";
  // Close at the indent one level up from the body.
  std::string Ind = indent;
  if (Ind.size() >= 2)
    Ind.resize(Ind.size() - 2);
  Out += Ind + "}";
  return Out;
}

//===----------------------------------------------------------------------===//
// Recording
//===----------------------------------------------------------------------===//

namespace {

double nowUs(const flick_tracer *T) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - T->epoch)
      .count();
}

/// Pushes \p S into the completed-span ring.
void record(flick_tracer *T, const flick_span &S) {
  if (!T->spans || T->cap == 0)
    return;
  if (T->head >= T->cap)
    ++T->dropped;
  T->spans[T->head % T->cap] = S;
  ++T->head;
}

/// Opens \p S (already initialized except ids/begin) under the current
/// innermost span, or as a root of a fresh trace when the stack is empty.
void pushOpen(flick_tracer *T, flick_span &S) {
  S.span_id = ++T->next_span_id;
  S.begin_us = nowUs(T);
  if (S.trace_id == 0) {
    if (T->depth > 0) {
      const flick_span &Top =
          T->open[(T->depth <= FLICK_TRACE_MAX_DEPTH ? T->depth
                                                     : FLICK_TRACE_MAX_DEPTH) -
                  1];
      S.trace_id = Top.trace_id;
      S.parent_id = Top.span_id;
      if (!S.endpoint)
        S.endpoint = Top.endpoint;
    } else {
      S.trace_id = ++T->next_trace_id;
      S.parent_id = 0;
    }
  }
  if (T->depth < FLICK_TRACE_MAX_DEPTH)
    T->open[T->depth] = S;
  else
    ++T->truncated; // depth still advances so the matching end pairs up
  ++T->depth;
}

/// Attributes a completed span to the active metrics block's anatomy
/// table, and -- for a thread-root RPC close -- settles it against the
/// endpoint's SLO.
void recordAnatomy(const flick_span &S, bool thread_root) {
  flick_metrics *M = flick_metrics_active;
  if (!M)
    return;
  uint32_t Ep = S.endpoint < FLICK_MAX_ENDPOINTS ? S.endpoint : 0;
  flick_endpoint_stats &E = M->anatomy[Ep];
  if (S.kind < FLICK_SPAN_KIND_COUNT) {
    E.used = 1;
    flick_hist_record(&E.phase[S.kind], S.dur_us);
  }
  if (thread_root && S.kind == FLICK_SPAN_RPC) {
    const flick_slo *Slo = flick_slo_for(Ep);
    if (Slo->set) {
      if (S.dur_us <= Slo->threshold_us)
        ++E.slo_met;
      else
        ++E.slo_violated;
    }
  }
}

/// The reservoir slot a candidate of \p dur_us would occupy: the first
/// empty one, else the fastest retained -- or null when the candidate is
/// no slower than everything already held.
flick_exemplar *exemplarVictim(flick_exemplar *Slots, double dur_us) {
  flick_exemplar *Dst = nullptr;
  for (uint32_t I = 0; I != FLICK_EXEMPLAR_SLOTS; ++I) {
    if (!Slots[I].n_spans)
      return &Slots[I];
    if (!Dst || Slots[I].dur_us < Dst->dur_us)
      Dst = &Slots[I];
  }
  return dur_us > Dst->dur_us ? Dst : nullptr;
}

/// Retains the closing RPC root's span tree when it ranks among the
/// endpoint's slowest-N, copying it out of the ring before overwrites
/// can claim it.
void captureExemplar(flick_tracer *T, const flick_span &Root) {
  uint32_t Ep = Root.endpoint < FLICK_MAX_ENDPOINTS ? Root.endpoint : 0;
  flick_exemplar *Dst = exemplarVictim(T->exemplars.slots[Ep], Root.dur_us);
  if (!Dst)
    return;
  Dst->dur_us = Root.dur_us;
  Dst->trace_id = Root.trace_id;
  Dst->endpoint = Ep;
  Dst->n_spans = 0;
  // The root closes after its children, so this trace's spans are the
  // newest run in the ring: walk newest -> oldest while the id matches.
  uint64_t Held = T->head < T->cap ? T->head : T->cap;
  for (uint64_t I = 0; I != Held && Dst->n_spans < FLICK_EXEMPLAR_SPANS;
       ++I) {
    const flick_span &S = T->spans[(T->head - 1 - I) % T->cap];
    if (S.trace_id != Root.trace_id)
      break;
    Dst->spans[Dst->n_spans++] = S;
  }
  if (!Dst->n_spans)
    Dst->spans[Dst->n_spans++] = Root; // ring too small for even the root
  std::reverse(Dst->spans, Dst->spans + Dst->n_spans); // chronological
}

/// Offers an absorbed tracer's exemplar (timestamps already rebased) to
/// \p T's reservoir under the same slowest-N competition.
void offerExemplar(flick_tracer *T, const flick_exemplar &Src) {
  uint32_t Ep = Src.endpoint < FLICK_MAX_ENDPOINTS ? Src.endpoint : 0;
  flick_exemplar *Dst = exemplarVictim(T->exemplars.slots[Ep], Src.dur_us);
  if (Dst)
    *Dst = Src;
}

} // namespace

void flick_trace_enable(flick_tracer *t, flick_span *storage, uint32_t cap) {
  *t = flick_tracer{};
  t->spans = storage;
  t->cap = cap;
  t->epoch = std::chrono::steady_clock::now();
  flick_trace_active = t;
}

void flick_trace_disable() { flick_trace_active = nullptr; }

void flick_trace_enable_thread(flick_tracer *t, flick_span *storage,
                               uint32_t cap) {
  // Salting the high bits leaves each tracer 2^40 locally minted ids --
  // far beyond any ring -- while keeping concurrent tracers disjoint.
  static std::atomic<uint64_t> NextSalt{0};
  flick_trace_enable(t, storage, cap);
  uint64_t Salt = NextSalt.fetch_add(1, std::memory_order_relaxed) + 1;
  t->next_trace_id = Salt << 40;
  t->next_span_id = Salt << 40;
}

void flick_trace_absorb(flick_tracer *dst, const flick_tracer *src) {
  double Off = std::chrono::duration<double, std::micro>(src->epoch -
                                                         dst->epoch)
                   .count();
  size_t N = flick_trace_span_count(src);
  for (size_t I = 0; I != N; ++I) {
    flick_span S = *flick_trace_span(src, I);
    S.begin_us += Off;
    record(dst, S);
  }
  dst->dropped += src->dropped;
  dst->truncated += src->truncated;
  for (uint32_t Ep = 0; Ep != FLICK_MAX_ENDPOINTS; ++Ep)
    for (uint32_t I = 0; I != FLICK_EXEMPLAR_SLOTS; ++I) {
      const flick_exemplar &Slot = src->exemplars.slots[Ep][I];
      if (!Slot.n_spans)
        continue;
      flick_exemplar E = Slot;
      for (uint32_t J = 0; J != E.n_spans; ++J)
        E.spans[J].begin_us += Off;
      offerExemplar(dst, E);
    }
}

void flick_trace_begin_impl(int kind, const char *name) {
  flick_tracer *T = flick_trace_active;
  flick_span S;
  S.kind = static_cast<uint8_t>(kind);
  S.name = name;
  pushOpen(T, S);
}

void flick_trace_begin_remote_impl(int kind, const char *name) {
  flick_tracer *T = flick_trace_active;
  flick_span S;
  S.kind = static_cast<uint8_t>(kind);
  S.name = name;
  if (T->pending_valid) {
    S.trace_id = T->pending_trace_id;
    S.parent_id = T->pending_parent_id;
    S.endpoint = static_cast<uint8_t>(
        T->pending_endpoint < FLICK_MAX_ENDPOINTS ? T->pending_endpoint : 0);
    T->pending_valid = 0;
  }
  double Wait = T->pending_wait_us;
  T->pending_wait_us = 0;
  pushOpen(T, S);
  if (Wait > 0 && T->depth <= FLICK_TRACE_MAX_DEPTH) {
    // The queue wait ended where this root begins: record it as a
    // completed QUEUE child backdated by its duration, so the phase sums
    // reconcile with wall time without a span ever being open across
    // threads.
    const flick_span &Root = T->open[T->depth - 1];
    flick_span Q;
    Q.kind = FLICK_SPAN_QUEUE;
    Q.name = "queue";
    Q.span_id = ++T->next_span_id;
    Q.trace_id = Root.trace_id;
    Q.parent_id = Root.span_id;
    Q.endpoint = Root.endpoint;
    Q.begin_us = Root.begin_us - Wait;
    Q.dur_us = Wait;
    record(T, Q);
    recordAnatomy(Q, false);
  }
}

void flick_trace_end_impl() {
  flick_tracer *T = flick_trace_active;
  if (T->depth == 0)
    return;
  --T->depth;
  if (T->depth < FLICK_TRACE_MAX_DEPTH) {
    flick_span S = T->open[T->depth];
    S.dur_us = nowUs(T) - S.begin_us;
    record(T, S);
    recordAnatomy(S, T->depth == 0);
    if (T->depth == 0 && S.kind == FLICK_SPAN_RPC)
      captureExemplar(T, S);
  }
}

void flick_trace_close_to(uint32_t depth) {
  flick_tracer *T = flick_trace_active;
  if (!T)
    return;
  while (T->depth > depth)
    flick_trace_end_impl();
}

void flick_trace_record_complete(int kind, const char *name, double dur_us) {
  flick_tracer *T = flick_trace_active;
  if (!T)
    return;
  flick_span S;
  S.kind = static_cast<uint8_t>(kind);
  S.name = name;
  S.span_id = ++T->next_span_id;
  S.begin_us = nowUs(T);
  S.dur_us = dur_us;
  if (T->depth > 0) {
    const flick_span &Top =
        T->open[(T->depth <= FLICK_TRACE_MAX_DEPTH ? T->depth
                                                   : FLICK_TRACE_MAX_DEPTH) -
                1];
    S.trace_id = Top.trace_id;
    S.parent_id = Top.span_id;
    S.endpoint = Top.endpoint;
  } else {
    S.trace_id = ++T->next_trace_id;
  }
  record(T, S);
  recordAnatomy(S, false);
}

void flick_trace_tag_endpoint(uint32_t endpoint) {
  flick_tracer *T = flick_trace_active;
  if (!T || T->depth == 0 || T->depth > FLICK_TRACE_MAX_DEPTH)
    return;
  T->open[T->depth - 1].endpoint =
      static_cast<uint8_t>(endpoint < FLICK_MAX_ENDPOINTS ? endpoint : 0);
}

void flick_trace_stamp(uint64_t *trace_id, uint64_t *parent_id,
                       uint32_t *endpoint) {
  *trace_id = 0;
  *parent_id = 0;
  if (endpoint)
    *endpoint = 0;
  flick_tracer *T = flick_trace_active;
  if (!T || T->depth == 0)
    return;
  const flick_span &Top =
      T->open[(T->depth <= FLICK_TRACE_MAX_DEPTH ? T->depth
                                                 : FLICK_TRACE_MAX_DEPTH) -
              1];
  *trace_id = Top.trace_id;
  *parent_id = Top.span_id;
  if (endpoint)
    *endpoint = Top.endpoint;
}

void flick_trace_deposit(uint64_t trace_id, uint64_t parent_id,
                         uint32_t endpoint) {
  flick_tracer *T = flick_trace_active;
  if (!T)
    return;
  T->pending_trace_id = trace_id;
  T->pending_parent_id = parent_id;
  T->pending_endpoint = endpoint;
  T->pending_valid = trace_id != 0;
}

void flick_trace_deposit_wait(uint64_t wait_ns) {
  flick_tracer *T = flick_trace_active;
  if (!T)
    return;
  T->pending_wait_us = static_cast<double>(wait_ns) / 1000.0;
}

//===----------------------------------------------------------------------===//
// Reading and exporting
//===----------------------------------------------------------------------===//

const char *flick_span_kind_name(int kind) {
  switch (kind) {
  case FLICK_SPAN_RPC:
    return "rpc";
  case FLICK_SPAN_MARSHAL:
    return "marshal";
  case FLICK_SPAN_SEND:
    return "send";
  case FLICK_SPAN_WIRE:
    return "wire";
  case FLICK_SPAN_DEMUX:
    return "demux";
  case FLICK_SPAN_WORK:
    return "work";
  case FLICK_SPAN_UNMARSHAL:
    return "unmarshal";
  case FLICK_SPAN_REPLY:
    return "reply";
  case FLICK_SPAN_QUEUE:
    return "queue";
  default:
    return "unknown";
  }
}

size_t flick_trace_span_count(const flick_tracer *t) {
  if (!t->spans || t->cap == 0)
    return 0;
  return t->head < t->cap ? static_cast<size_t>(t->head) : t->cap;
}

const flick_span *flick_trace_span(const flick_tracer *t, size_t i) {
  size_t N = flick_trace_span_count(t);
  if (i >= N)
    return nullptr;
  size_t First = t->head < t->cap ? 0 : static_cast<size_t>(t->head % t->cap);
  return &t->spans[(First + i) % t->cap];
}

std::string flick_json_escape(const std::string &s) {
  std::string Out;
  Out.reserve(s.size());
  for (char C : s) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

namespace {

/// Nesting depth of each span, for the B/E ordering rules below.  Spans
/// whose parents were overwritten in the ring count as roots.
std::vector<unsigned>
spanDepths(const flick_tracer *T,
           const std::unordered_map<uint64_t, size_t> &ById) {
  size_t N = flick_trace_span_count(T);
  std::vector<unsigned> Depth(N, 0);
  for (size_t I = 0; I != N; ++I) {
    unsigned D = 0;
    uint64_t P = flick_trace_span(T, I)->parent_id;
    while (P) {
      auto It = ById.find(P);
      if (It == ById.end() || ++D >= 2 * FLICK_TRACE_MAX_DEPTH)
        break;
      P = flick_trace_span(T, It->second)->parent_id;
    }
    Depth[I] = D;
  }
  return Depth;
}

std::unordered_map<uint64_t, size_t> indexById(const flick_tracer *T) {
  std::unordered_map<uint64_t, size_t> ById;
  size_t N = flick_trace_span_count(T);
  for (size_t I = 0; I != N; ++I)
    ById.emplace(flick_trace_span(T, I)->span_id, I);
  return ById;
}

} // namespace

std::string flick_trace_to_chrome_json(const flick_tracer *t,
                                       const std::string &extra_events) {
  struct Event {
    double Ts;
    bool IsBegin;
    unsigned Depth;
    const flick_span *S;
  };
  auto ById = indexById(t);
  std::vector<unsigned> Depth = spanDepths(t, ById);
  size_t N = flick_trace_span_count(t);
  std::vector<Event> Events;
  Events.reserve(2 * N);
  for (size_t I = 0; I != N; ++I) {
    const flick_span *S = flick_trace_span(t, I);
    Events.push_back({S->begin_us, true, Depth[I], S});
    Events.push_back({S->begin_us + S->dur_us, false, Depth[I], S});
  }
  // Chrome requires well-nested B/E per track: order by time; at equal
  // times, ends before begins; deeper ends first, shallower begins first.
  std::stable_sort(Events.begin(), Events.end(),
                   [](const Event &A, const Event &B) {
                     if (A.Ts != B.Ts)
                       return A.Ts < B.Ts;
                     if (A.IsBegin != B.IsBegin)
                       return !A.IsBegin;
                     return A.IsBegin ? A.Depth < B.Depth
                                      : A.Depth > B.Depth;
                   });
  std::string Out = "{\n  \"traceEvents\": [";
  char Buf[384];
  for (size_t I = 0; I != Events.size(); ++I) {
    const Event &E = Events[I];
    std::string Name =
        flick_json_escape(E.S->name ? E.S->name
                                    : flick_span_kind_name(E.S->kind));
    if (E.IsBegin)
      std::snprintf(Buf, sizeof(Buf),
                    "%s\n    {\"name\": \"%s\", \"cat\": \"%s\", "
                    "\"ph\": \"B\", \"ts\": %.3f, \"pid\": 1, "
                    "\"tid\": %llu, \"args\": {\"kind\": \"%s\", "
                    "\"endpoint\": \"%s\"}}",
                    I ? "," : "", Name.c_str(),
                    flick_span_kind_name(E.S->kind), E.Ts,
                    static_cast<unsigned long long>(E.S->trace_id),
                    flick_span_kind_name(E.S->kind),
                    flick_endpoint_name(E.S->endpoint));
    else
      std::snprintf(Buf, sizeof(Buf),
                    "%s\n    {\"name\": \"%s\", \"cat\": \"%s\", "
                    "\"ph\": \"E\", \"ts\": %.3f, \"pid\": 1, "
                    "\"tid\": %llu}",
                    I ? "," : "", Name.c_str(),
                    flick_span_kind_name(E.S->kind), E.Ts,
                    static_cast<unsigned long long>(E.S->trace_id));
    Out += Buf;
  }
  if (!extra_events.empty()) {
    if (!Events.empty())
      Out += ",";
    Out += extra_events;
  }
  Out += Events.empty() && extra_events.empty() ? "]" : "\n  ]";
  std::snprintf(Buf, sizeof(Buf),
                ",\n  \"displayTimeUnit\": \"ms\",\n"
                "  \"flick\": {\"spans\": %zu, \"dropped\": %llu, "
                "\"truncated\": %llu, \"open_at_export\": %u, \"build\": ",
                N, static_cast<unsigned long long>(t->dropped),
                static_cast<unsigned long long>(t->truncated), t->depth);
  Out += Buf;
  Out += flick_build_info_json();
  Out += "}\n}\n";
  return Out;
}

std::string flick_trace_to_collapsed(const flick_tracer *t) {
  auto ById = indexById(t);
  size_t N = flick_trace_span_count(t);
  // Self time: a span's duration minus its children's.
  std::vector<double> Self(N);
  for (size_t I = 0; I != N; ++I)
    Self[I] = flick_trace_span(t, I)->dur_us;
  for (size_t I = 0; I != N; ++I) {
    auto It = ById.find(flick_trace_span(t, I)->parent_id);
    if (It != ById.end())
      Self[It->second] -= flick_trace_span(t, I)->dur_us;
  }
  std::map<std::string, double> Stacks;
  for (size_t I = 0; I != N; ++I) {
    std::string Stack;
    const flick_span *S = flick_trace_span(t, I);
    unsigned Guard = 0;
    for (const flick_span *W = S; W;) {
      std::string Frame =
          W->name ? W->name : flick_span_kind_name(W->kind);
      Stack = Stack.empty() ? Frame : Frame + ";" + Stack;
      auto It = ById.find(W->parent_id);
      W = (It != ById.end() && ++Guard < 2 * FLICK_TRACE_MAX_DEPTH)
              ? flick_trace_span(t, It->second)
              : nullptr;
    }
    Stacks[Stack] += Self[I] > 0 ? Self[I] : 0;
  }
  std::string Out;
  char Buf[32];
  for (const auto &[Stack, Us] : Stacks) {
    std::snprintf(Buf, sizeof(Buf), " %llu\n",
                  static_cast<unsigned long long>(Us + 0.5));
    Out += Stack + Buf;
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Exemplar exporters
//===----------------------------------------------------------------------===//

namespace {

/// The endpoint's retained exemplars, slowest first.
std::vector<const flick_exemplar *> sortedSlots(const flick_tracer *T,
                                                uint32_t Ep) {
  std::vector<const flick_exemplar *> Order;
  for (uint32_t I = 0; I != FLICK_EXEMPLAR_SLOTS; ++I)
    if (T->exemplars.slots[Ep][I].n_spans)
      Order.push_back(&T->exemplars.slots[Ep][I]);
  std::sort(Order.begin(), Order.end(),
            [](const flick_exemplar *A, const flick_exemplar *B) {
              return A->dur_us > B->dur_us;
            });
  return Order;
}

void appendSpanJson(std::string &Out, const flick_span &S,
                    const char *Prefix) {
  char Buf[256];
  std::string Name =
      flick_json_escape(S.name ? S.name : flick_span_kind_name(S.kind));
  std::snprintf(Buf, sizeof(Buf),
                "%s{\"name\": \"%s\", \"kind\": \"%s\", "
                "\"endpoint\": \"%s\", \"span_id\": %llu, "
                "\"parent_id\": %llu, \"begin_us\": %.3f, "
                "\"dur_us\": %.3f}",
                Prefix, Name.c_str(), flick_span_kind_name(S.kind),
                flick_endpoint_name(S.endpoint),
                static_cast<unsigned long long>(S.span_id),
                static_cast<unsigned long long>(S.parent_id), S.begin_us,
                S.dur_us);
  Out += Buf;
}

} // namespace

std::string flick_exemplars_to_json(const flick_tracer *t,
                                    const char *indent) {
  std::string Ind = indent;
  std::string Out = "{\n" + Ind + "\"build\": " + flick_build_info_json() +
                    ",\n" + Ind + "\"endpoints\": {";
  char Buf[128];
  bool FirstEp = true;
  for (uint32_t Ep = 0; Ep != FLICK_MAX_ENDPOINTS; ++Ep) {
    auto Order = sortedSlots(t, Ep);
    if (Order.empty())
      continue;
    Out += FirstEp ? "\n" : ",\n";
    FirstEp = false;
    Out += Ind + Ind + "\"" +
           flick_json_escape(flick_endpoint_name(Ep)) + "\": [";
    for (size_t X = 0; X != Order.size(); ++X) {
      const flick_exemplar &E = *Order[X];
      std::snprintf(Buf, sizeof(Buf),
                    "%s\n%s%s%s{\"trace_id\": \"0x%llx\", "
                    "\"dur_us\": %.3f, \"spans\": [",
                    X ? "," : "", Ind.c_str(), Ind.c_str(), Ind.c_str(),
                    static_cast<unsigned long long>(E.trace_id), E.dur_us);
      Out += Buf;
      bool FirstSpan = true;
      auto Emit = [&](const flick_span &S) {
        Out += FirstSpan ? "\n" : ",\n";
        FirstSpan = false;
        Out += Ind + Ind + Ind + Ind;
        appendSpanJson(Out, S, "");
      };
      // The retained copy first, then any spans still in the ring that
      // share the trace id but were recorded elsewhere (e.g. server-side
      // segments absorbed from worker tracers after capture).
      std::vector<uint64_t> SeenIds;
      for (uint32_t J = 0; J != E.n_spans; ++J) {
        Emit(E.spans[J]);
        SeenIds.push_back(E.spans[J].span_id);
      }
      size_t N = flick_trace_span_count(t);
      for (size_t J = 0; J != N; ++J) {
        const flick_span &S = *flick_trace_span(t, J);
        if (S.trace_id != E.trace_id)
          continue;
        if (std::find(SeenIds.begin(), SeenIds.end(), S.span_id) !=
            SeenIds.end())
          continue;
        Emit(S);
        SeenIds.push_back(S.span_id);
      }
      Out += "\n" + Ind + Ind + Ind + "]}";
    }
    Out += "\n" + Ind + Ind + "]";
  }
  Out += FirstEp ? "}" : "\n" + Ind + "}";
  Out += "\n}\n";
  return Out;
}

std::string flick_exemplars_to_chrome_json(const flick_tracer *t) {
  std::vector<flick_span> Flat;
  for (uint32_t Ep = 0; Ep != FLICK_MAX_ENDPOINTS; ++Ep)
    for (uint32_t I = 0; I != FLICK_EXEMPLAR_SLOTS; ++I) {
      const flick_exemplar &E = t->exemplars.slots[Ep][I];
      for (uint32_t J = 0; J != E.n_spans; ++J)
        Flat.push_back(E.spans[J]);
    }
  // A borrowed tracer over the flat copy reuses the Chrome exporter; its
  // tid-per-trace convention already gives each retained RPC a track.
  flick_tracer View;
  View.spans = Flat.empty() ? nullptr : Flat.data();
  View.cap = static_cast<uint32_t>(Flat.size());
  View.head = Flat.size();
  View.epoch = t->epoch;
  return flick_trace_to_chrome_json(&View);
}
