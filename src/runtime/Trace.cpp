//===- runtime/Trace.cpp - Per-RPC distributed tracing --------------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "runtime/Trace.h"
#include "support/BuildInfo.h"
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <unordered_map>
#include <vector>

thread_local flick_tracer *flick_trace_active = nullptr;

//===----------------------------------------------------------------------===//
// Latency histogram
//===----------------------------------------------------------------------===//

void flick_hist_record(flick_latency_hist *h, double us) {
  if (us < 0)
    us = 0;
  ++h->count;
  h->sum_us += us;
  if (us > h->max_us)
    h->max_us = us;
  // Bucket i holds [2^(i-1), 2^i); find the smallest i with us < 2^i.
  int I = 0;
  while (I < FLICK_HIST_BUCKETS - 1 &&
         us >= static_cast<double>(uint64_t(1) << I))
    ++I;
  ++h->buckets[I];
}

void flick_hist_merge(flick_latency_hist *dst, const flick_latency_hist *src) {
  dst->count += src->count;
  for (int I = 0; I != FLICK_HIST_BUCKETS; ++I)
    dst->buckets[I] += src->buckets[I];
  dst->sum_us += src->sum_us;
  if (src->max_us > dst->max_us)
    dst->max_us = src->max_us;
}

double flick_hist_percentile(const flick_latency_hist *h, double p) {
  if (h->count == 0)
    return 0;
  if (p < 0)
    p = 0;
  if (p > 1)
    p = 1;
  uint64_t Target = static_cast<uint64_t>(p * static_cast<double>(h->count));
  if (Target * 1.0 < p * static_cast<double>(h->count))
    ++Target; // ceil
  if (Target == 0)
    Target = 1;
  uint64_t Cum = 0;
  for (int I = 0; I != FLICK_HIST_BUCKETS; ++I) {
    Cum += h->buckets[I];
    if (Cum >= Target) {
      double Bound = static_cast<double>(uint64_t(1) << I);
      return Bound < h->max_us ? Bound : h->max_us;
    }
  }
  return h->max_us;
}

std::string flick_hist_to_json(const flick_latency_hist *h,
                               const char *indent) {
  char Buf[96];
  std::string Out = "{\n";
  auto Line = [&](const char *Key, double V, bool Comma) {
    std::snprintf(Buf, sizeof(Buf), "%s\"%s\": %.3f%s\n", indent, Key, V,
                  Comma ? "," : "");
    Out += Buf;
  };
  std::snprintf(Buf, sizeof(Buf), "%s\"count\": %llu,\n", indent,
                static_cast<unsigned long long>(h->count));
  Out += Buf;
  Line("sum_us", h->sum_us, true);
  Line("mean_us",
       h->count ? h->sum_us / static_cast<double>(h->count) : 0, true);
  Line("p50_us", flick_hist_percentile(h, 0.50), true);
  Line("p90_us", flick_hist_percentile(h, 0.90), true);
  Line("p99_us", flick_hist_percentile(h, 0.99), true);
  Line("max_us", h->max_us, true);
  // Nonzero buckets as [upper_bound_us, count] pairs.
  Out += indent;
  Out += "\"buckets\": [";
  bool First = true;
  for (int I = 0; I != FLICK_HIST_BUCKETS; ++I) {
    if (!h->buckets[I])
      continue;
    std::snprintf(Buf, sizeof(Buf), "%s[%llu, %llu]", First ? "" : ", ",
                  static_cast<unsigned long long>(uint64_t(1) << I),
                  static_cast<unsigned long long>(h->buckets[I]));
    Out += Buf;
    First = false;
  }
  Out += "]\n";
  // Close at the indent one level up from the body.
  std::string Ind = indent;
  if (Ind.size() >= 2)
    Ind.resize(Ind.size() - 2);
  Out += Ind + "}";
  return Out;
}

//===----------------------------------------------------------------------===//
// Recording
//===----------------------------------------------------------------------===//

namespace {

double nowUs(const flick_tracer *T) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - T->epoch)
      .count();
}

/// Pushes \p S into the completed-span ring.
void record(flick_tracer *T, const flick_span &S) {
  if (!T->spans || T->cap == 0)
    return;
  if (T->head >= T->cap)
    ++T->dropped;
  T->spans[T->head % T->cap] = S;
  ++T->head;
}

/// Opens \p S (already initialized except ids/begin) under the current
/// innermost span, or as a root of a fresh trace when the stack is empty.
void pushOpen(flick_tracer *T, flick_span &S) {
  S.span_id = ++T->next_span_id;
  S.begin_us = nowUs(T);
  if (S.trace_id == 0) {
    if (T->depth > 0) {
      const flick_span &Top =
          T->open[(T->depth <= FLICK_TRACE_MAX_DEPTH ? T->depth
                                                     : FLICK_TRACE_MAX_DEPTH) -
                  1];
      S.trace_id = Top.trace_id;
      S.parent_id = Top.span_id;
    } else {
      S.trace_id = ++T->next_trace_id;
      S.parent_id = 0;
    }
  }
  if (T->depth < FLICK_TRACE_MAX_DEPTH)
    T->open[T->depth] = S;
  else
    ++T->truncated; // depth still advances so the matching end pairs up
  ++T->depth;
}

} // namespace

void flick_trace_enable(flick_tracer *t, flick_span *storage, uint32_t cap) {
  *t = flick_tracer{};
  t->spans = storage;
  t->cap = cap;
  t->epoch = std::chrono::steady_clock::now();
  flick_trace_active = t;
}

void flick_trace_disable() { flick_trace_active = nullptr; }

void flick_trace_enable_thread(flick_tracer *t, flick_span *storage,
                               uint32_t cap) {
  // Salting the high bits leaves each tracer 2^40 locally minted ids --
  // far beyond any ring -- while keeping concurrent tracers disjoint.
  static std::atomic<uint64_t> NextSalt{0};
  flick_trace_enable(t, storage, cap);
  uint64_t Salt = NextSalt.fetch_add(1, std::memory_order_relaxed) + 1;
  t->next_trace_id = Salt << 40;
  t->next_span_id = Salt << 40;
}

void flick_trace_absorb(flick_tracer *dst, const flick_tracer *src) {
  double Off = std::chrono::duration<double, std::micro>(src->epoch -
                                                         dst->epoch)
                   .count();
  size_t N = flick_trace_span_count(src);
  for (size_t I = 0; I != N; ++I) {
    flick_span S = *flick_trace_span(src, I);
    S.begin_us += Off;
    record(dst, S);
  }
  dst->dropped += src->dropped;
  dst->truncated += src->truncated;
}

void flick_trace_begin_impl(int kind, const char *name) {
  flick_tracer *T = flick_trace_active;
  flick_span S;
  S.kind = static_cast<uint8_t>(kind);
  S.name = name;
  pushOpen(T, S);
}

void flick_trace_begin_remote_impl(int kind, const char *name) {
  flick_tracer *T = flick_trace_active;
  flick_span S;
  S.kind = static_cast<uint8_t>(kind);
  S.name = name;
  if (T->pending_valid) {
    S.trace_id = T->pending_trace_id;
    S.parent_id = T->pending_parent_id;
    T->pending_valid = 0;
  }
  pushOpen(T, S);
}

void flick_trace_end_impl() {
  flick_tracer *T = flick_trace_active;
  if (T->depth == 0)
    return;
  --T->depth;
  if (T->depth < FLICK_TRACE_MAX_DEPTH) {
    flick_span S = T->open[T->depth];
    S.dur_us = nowUs(T) - S.begin_us;
    record(T, S);
  }
}

void flick_trace_close_to(uint32_t depth) {
  flick_tracer *T = flick_trace_active;
  if (!T)
    return;
  while (T->depth > depth)
    flick_trace_end_impl();
}

void flick_trace_record_complete(int kind, const char *name, double dur_us) {
  flick_tracer *T = flick_trace_active;
  if (!T)
    return;
  flick_span S;
  S.kind = static_cast<uint8_t>(kind);
  S.name = name;
  S.span_id = ++T->next_span_id;
  S.begin_us = nowUs(T);
  S.dur_us = dur_us;
  if (T->depth > 0) {
    const flick_span &Top =
        T->open[(T->depth <= FLICK_TRACE_MAX_DEPTH ? T->depth
                                                   : FLICK_TRACE_MAX_DEPTH) -
                1];
    S.trace_id = Top.trace_id;
    S.parent_id = Top.span_id;
  } else {
    S.trace_id = ++T->next_trace_id;
  }
  record(T, S);
}

void flick_trace_stamp(uint64_t *trace_id, uint64_t *parent_id) {
  *trace_id = 0;
  *parent_id = 0;
  flick_tracer *T = flick_trace_active;
  if (!T || T->depth == 0)
    return;
  const flick_span &Top =
      T->open[(T->depth <= FLICK_TRACE_MAX_DEPTH ? T->depth
                                                 : FLICK_TRACE_MAX_DEPTH) -
              1];
  *trace_id = Top.trace_id;
  *parent_id = Top.span_id;
}

void flick_trace_deposit(uint64_t trace_id, uint64_t parent_id) {
  flick_tracer *T = flick_trace_active;
  if (!T)
    return;
  T->pending_trace_id = trace_id;
  T->pending_parent_id = parent_id;
  T->pending_valid = trace_id != 0;
}

//===----------------------------------------------------------------------===//
// Reading and exporting
//===----------------------------------------------------------------------===//

const char *flick_span_kind_name(int kind) {
  switch (kind) {
  case FLICK_SPAN_RPC:
    return "rpc";
  case FLICK_SPAN_MARSHAL:
    return "marshal";
  case FLICK_SPAN_SEND:
    return "send";
  case FLICK_SPAN_WIRE:
    return "wire";
  case FLICK_SPAN_DEMUX:
    return "demux";
  case FLICK_SPAN_WORK:
    return "work";
  case FLICK_SPAN_UNMARSHAL:
    return "unmarshal";
  case FLICK_SPAN_REPLY:
    return "reply";
  default:
    return "unknown";
  }
}

size_t flick_trace_span_count(const flick_tracer *t) {
  if (!t->spans || t->cap == 0)
    return 0;
  return t->head < t->cap ? static_cast<size_t>(t->head) : t->cap;
}

const flick_span *flick_trace_span(const flick_tracer *t, size_t i) {
  size_t N = flick_trace_span_count(t);
  if (i >= N)
    return nullptr;
  size_t First = t->head < t->cap ? 0 : static_cast<size_t>(t->head % t->cap);
  return &t->spans[(First + i) % t->cap];
}

std::string flick_json_escape(const std::string &s) {
  std::string Out;
  Out.reserve(s.size());
  for (char C : s) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

namespace {

/// Nesting depth of each span, for the B/E ordering rules below.  Spans
/// whose parents were overwritten in the ring count as roots.
std::vector<unsigned>
spanDepths(const flick_tracer *T,
           const std::unordered_map<uint64_t, size_t> &ById) {
  size_t N = flick_trace_span_count(T);
  std::vector<unsigned> Depth(N, 0);
  for (size_t I = 0; I != N; ++I) {
    unsigned D = 0;
    uint64_t P = flick_trace_span(T, I)->parent_id;
    while (P) {
      auto It = ById.find(P);
      if (It == ById.end() || ++D >= 2 * FLICK_TRACE_MAX_DEPTH)
        break;
      P = flick_trace_span(T, It->second)->parent_id;
    }
    Depth[I] = D;
  }
  return Depth;
}

std::unordered_map<uint64_t, size_t> indexById(const flick_tracer *T) {
  std::unordered_map<uint64_t, size_t> ById;
  size_t N = flick_trace_span_count(T);
  for (size_t I = 0; I != N; ++I)
    ById.emplace(flick_trace_span(T, I)->span_id, I);
  return ById;
}

} // namespace

std::string flick_trace_to_chrome_json(const flick_tracer *t,
                                       const std::string &extra_events) {
  struct Event {
    double Ts;
    bool IsBegin;
    unsigned Depth;
    const flick_span *S;
  };
  auto ById = indexById(t);
  std::vector<unsigned> Depth = spanDepths(t, ById);
  size_t N = flick_trace_span_count(t);
  std::vector<Event> Events;
  Events.reserve(2 * N);
  for (size_t I = 0; I != N; ++I) {
    const flick_span *S = flick_trace_span(t, I);
    Events.push_back({S->begin_us, true, Depth[I], S});
    Events.push_back({S->begin_us + S->dur_us, false, Depth[I], S});
  }
  // Chrome requires well-nested B/E per track: order by time; at equal
  // times, ends before begins; deeper ends first, shallower begins first.
  std::stable_sort(Events.begin(), Events.end(),
                   [](const Event &A, const Event &B) {
                     if (A.Ts != B.Ts)
                       return A.Ts < B.Ts;
                     if (A.IsBegin != B.IsBegin)
                       return !A.IsBegin;
                     return A.IsBegin ? A.Depth < B.Depth
                                      : A.Depth > B.Depth;
                   });
  std::string Out = "{\n  \"traceEvents\": [";
  char Buf[256];
  for (size_t I = 0; I != Events.size(); ++I) {
    const Event &E = Events[I];
    std::string Name =
        flick_json_escape(E.S->name ? E.S->name
                                    : flick_span_kind_name(E.S->kind));
    std::snprintf(Buf, sizeof(Buf),
                  "%s\n    {\"name\": \"%s\", \"cat\": \"%s\", "
                  "\"ph\": \"%c\", \"ts\": %.3f, \"pid\": 1, "
                  "\"tid\": %llu}",
                  I ? "," : "", Name.c_str(),
                  flick_span_kind_name(E.S->kind), E.IsBegin ? 'B' : 'E',
                  E.Ts,
                  static_cast<unsigned long long>(E.S->trace_id));
    Out += Buf;
  }
  if (!extra_events.empty()) {
    if (!Events.empty())
      Out += ",";
    Out += extra_events;
  }
  Out += Events.empty() && extra_events.empty() ? "]" : "\n  ]";
  std::snprintf(Buf, sizeof(Buf),
                ",\n  \"displayTimeUnit\": \"ms\",\n"
                "  \"flick\": {\"spans\": %zu, \"dropped\": %llu, "
                "\"truncated\": %llu, \"open_at_export\": %u, \"build\": ",
                N, static_cast<unsigned long long>(t->dropped),
                static_cast<unsigned long long>(t->truncated), t->depth);
  Out += Buf;
  Out += flick_build_info_json();
  Out += "}\n}\n";
  return Out;
}

std::string flick_trace_to_collapsed(const flick_tracer *t) {
  auto ById = indexById(t);
  size_t N = flick_trace_span_count(t);
  // Self time: a span's duration minus its children's.
  std::vector<double> Self(N);
  for (size_t I = 0; I != N; ++I)
    Self[I] = flick_trace_span(t, I)->dur_us;
  for (size_t I = 0; I != N; ++I) {
    auto It = ById.find(flick_trace_span(t, I)->parent_id);
    if (It != ById.end())
      Self[It->second] -= flick_trace_span(t, I)->dur_us;
  }
  std::map<std::string, double> Stacks;
  for (size_t I = 0; I != N; ++I) {
    std::string Stack;
    const flick_span *S = flick_trace_span(t, I);
    unsigned Guard = 0;
    for (const flick_span *W = S; W;) {
      std::string Frame =
          W->name ? W->name : flick_span_kind_name(W->kind);
      Stack = Stack.empty() ? Frame : Frame + ";" + Stack;
      auto It = ById.find(W->parent_id);
      W = (It != ById.end() && ++Guard < 2 * FLICK_TRACE_MAX_DEPTH)
              ? flick_trace_span(t, It->second)
              : nullptr;
    }
    Stacks[Stack] += Self[I] > 0 ? Self[I] : 0;
  }
  std::string Out;
  char Buf[32];
  for (const auto &[Stack, Us] : Stacks) {
    std::snprintf(Buf, sizeof(Buf), " %llu\n",
                  static_cast<unsigned long long>(Us + 0.5));
    Out += Stack + Buf;
  }
  return Out;
}
