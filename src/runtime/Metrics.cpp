//===- runtime/Metrics.cpp - Runtime metrics block ------------------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "runtime/flick_runtime.h"
#include "support/BuildInfo.h"
#include <cstdio>

thread_local flick_metrics *flick_metrics_active = nullptr;

void flick_metrics_enable(flick_metrics *m) {
  *m = flick_metrics{};
  flick_metrics_active = m;
}

void flick_metrics_disable() { flick_metrics_active = nullptr; }

void flick_metrics_merge(flick_metrics *dst, const flick_metrics *src) {
  dst->rpcs_sent += src->rpcs_sent;
  dst->oneways_sent += src->oneways_sent;
  dst->replies_received += src->replies_received;
  dst->request_bytes += src->request_bytes;
  dst->reply_bytes += src->reply_bytes;
  dst->rpcs_handled += src->rpcs_handled;
  dst->replies_sent += src->replies_sent;
  dst->server_request_bytes += src->server_request_bytes;
  dst->server_reply_bytes += src->server_reply_bytes;
  dst->buf_grows += src->buf_grows;
  dst->buf_reuses += src->buf_reuses;
  dst->arena_grows += src->arena_grows;
  if (src->arena_high_water > dst->arena_high_water)
    dst->arena_high_water = src->arena_high_water;
  dst->decode_errors += src->decode_errors;
  dst->transport_errors += src->transport_errors;
  dst->demux_errors += src->demux_errors;
  dst->alloc_errors += src->alloc_errors;
  dst->interp_encodes += src->interp_encodes;
  dst->interp_decodes += src->interp_decodes;
  dst->interp_dispatches += src->interp_dispatches;
  dst->spec_programs += src->spec_programs;
  dst->spec_compile_ns += src->spec_compile_ns;
  dst->spec_cache_hits += src->spec_cache_hits;
  dst->spec_steps_fused += src->spec_steps_fused;
  dst->spec_dispatches_avoided += src->spec_dispatches_avoided;
  dst->bytes_copied += src->bytes_copied;
  dst->copy_ops += src->copy_ops;
  dst->gather_refs += src->gather_refs;
  dst->gather_bytes += src->gather_bytes;
  dst->pool_hits += src->pool_hits;
  dst->pool_misses += src->pool_misses;
  dst->queue_full += src->queue_full;
  dst->corr_drops += src->corr_drops;
  dst->wire_time_us += src->wire_time_us;
  flick_hist_merge(&dst->rpc_latency, &src->rpc_latency);
  for (int E = 0; E != FLICK_MAX_ENDPOINTS; ++E) {
    const flick_endpoint_stats &S = src->anatomy[E];
    if (!S.used)
      continue; // empty entries merge as no-ops (the common case)
    flick_endpoint_stats &D = dst->anatomy[E];
    D.used = 1;
    D.slo_met += S.slo_met;
    D.slo_violated += S.slo_violated;
    for (int K = 0; K != FLICK_SPAN_KIND_COUNT; ++K)
      if (S.phase[K].count)
        flick_hist_merge(&D.phase[K], &S.phase[K]);
  }
}

std::string flick_metrics_anatomy_json(const flick_metrics *m,
                                       const char *indent) {
  std::string Ind = indent;
  char Buf[160];
  std::string Out = "{";
  bool FirstEp = true;
  for (int Ep = 0; Ep != FLICK_MAX_ENDPOINTS; ++Ep) {
    const flick_endpoint_stats &E = m->anatomy[Ep];
    if (!E.used)
      continue;
    Out += FirstEp ? "\n" : ",\n";
    FirstEp = false;
    Out += Ind + "\"" + flick_json_escape(flick_endpoint_name(Ep)) +
           "\": {\n";
    const flick_latency_hist &Rpc = E.phase[FLICK_SPAN_RPC];
    double RpcMean =
        Rpc.count ? Rpc.sum_us / static_cast<double>(Rpc.count) : 0;
    double RpcP50 = flick_hist_percentile(&Rpc, 0.50);
    double RpcP99 = flick_hist_percentile(&Rpc, 0.99);
    std::snprintf(Buf, sizeof(Buf),
                  "%s  \"rpc\": {\"count\": %llu, \"mean_us\": %.3f, "
                  "\"p50_us\": %.3f, \"p99_us\": %.3f, \"max_us\": %.3f},\n",
                  Ind.c_str(), static_cast<unsigned long long>(Rpc.count),
                  RpcMean, RpcP50, RpcP99, Rpc.max_us);
    Out += Buf;
    Out += Ind + "  \"phases\": {";
    bool FirstPh = true;
    for (int K = 0; K != FLICK_SPAN_KIND_COUNT; ++K) {
      if (K == FLICK_SPAN_RPC)
        continue;
      const flick_latency_hist &H = E.phase[K];
      if (!H.count)
        continue;
      double Mean = H.sum_us / static_cast<double>(H.count);
      double P50 = flick_hist_percentile(&H, 0.50);
      double P99 = flick_hist_percentile(&H, 0.99);
      std::snprintf(
          Buf, sizeof(Buf),
          "%s%s    \"%s\": {\"count\": %llu, \"mean_us\": %.3f, "
          "\"p50_us\": %.3f, \"p99_us\": %.3f",
          FirstPh ? "\n" : ",\n", Ind.c_str(), flick_span_kind_name(K),
          static_cast<unsigned long long>(H.count), Mean, P50, P99);
      Out += Buf;
      FirstPh = false;
      if (Rpc.count) {
        // Phase shares against the end-to-end rpc span at matching
        // percentiles: "what fraction of a p99 call is this phase".
        std::snprintf(Buf, sizeof(Buf),
                      ", \"share_mean\": %.4f, \"share_p50\": %.4f, "
                      "\"share_p99\": %.4f",
                      RpcMean > 0 ? Mean / RpcMean : 0,
                      RpcP50 > 0 ? P50 / RpcP50 : 0,
                      RpcP99 > 0 ? P99 / RpcP99 : 0);
        Out += Buf;
      }
      Out += "}";
    }
    Out += FirstPh ? "}" : "\n" + Ind + "  }";
    const flick_slo *Slo = flick_slo_for(static_cast<uint32_t>(Ep));
    if (Slo->set) {
      uint64_t Total = E.slo_met + E.slo_violated;
      double Allowed = 1.0 - Slo->target;
      double Burn =
          Total && Allowed > 0
              ? (static_cast<double>(E.slo_violated) /
                 static_cast<double>(Total)) /
                    Allowed
              : 0;
      std::snprintf(Buf, sizeof(Buf),
                    ",\n%s  \"slo\": {\"objective\": \"%s\", "
                    "\"met\": %llu, \"violated\": %llu, "
                    "\"burn_rate\": %.4f}",
                    Ind.c_str(), Slo->objective,
                    static_cast<unsigned long long>(E.slo_met),
                    static_cast<unsigned long long>(E.slo_violated), Burn);
      Out += Buf;
    }
    if (Rpc.count) {
      // Self-consistency: the client-visible top-level phases (send,
      // queue, demux) partition the rpc span's wall time, so their means
      // must sum to the rpc mean.  Percentiles don't add; means do.
      double TopMean = 0;
      const int TopKinds[] = {FLICK_SPAN_SEND, FLICK_SPAN_QUEUE,
                              FLICK_SPAN_DEMUX};
      for (int K : TopKinds) {
        const flick_latency_hist &H = E.phase[K];
        if (H.count)
          TopMean += H.sum_us / static_cast<double>(Rpc.count);
      }
      double Drift = RpcMean > 0 ? (RpcMean - TopMean) / RpcMean : 0;
      std::snprintf(Buf, sizeof(Buf),
                    ",\n%s  \"consistency\": {\"rpc_mean_us\": %.3f, "
                    "\"top_level_mean_us\": %.3f, \"drift_frac\": %.4f}",
                    Ind.c_str(), RpcMean, TopMean, Drift);
      Out += Buf;
    }
    Out += "\n" + Ind + "}";
  }
  if (FirstEp)
    return "{}";
  std::string Close = Ind;
  if (Close.size() >= 2)
    Close.resize(Close.size() - 2);
  return Out + "\n" + Close + "}";
}

std::string flick_metrics_to_json(const flick_metrics *m,
                                  const char *indent) {
  struct Field {
    const char *Name;
    uint64_t Value;
  };
  const Field Fields[] = {
      {"rpcs_sent", m->rpcs_sent},
      {"oneways_sent", m->oneways_sent},
      {"replies_received", m->replies_received},
      {"request_bytes", m->request_bytes},
      {"reply_bytes", m->reply_bytes},
      {"rpcs_handled", m->rpcs_handled},
      {"replies_sent", m->replies_sent},
      {"server_request_bytes", m->server_request_bytes},
      {"server_reply_bytes", m->server_reply_bytes},
      {"buf_grows", m->buf_grows},
      {"buf_reuses", m->buf_reuses},
      {"arena_grows", m->arena_grows},
      {"arena_high_water", m->arena_high_water},
      {"decode_errors", m->decode_errors},
      {"transport_errors", m->transport_errors},
      {"demux_errors", m->demux_errors},
      {"alloc_errors", m->alloc_errors},
      {"interp_encodes", m->interp_encodes},
      {"interp_decodes", m->interp_decodes},
      {"interp_dispatches", m->interp_dispatches},
      {"spec_programs", m->spec_programs},
      {"spec_compile_ns", m->spec_compile_ns},
      {"spec_cache_hits", m->spec_cache_hits},
      {"spec_steps_fused", m->spec_steps_fused},
      {"spec_dispatches_avoided", m->spec_dispatches_avoided},
      {"bytes_copied", m->bytes_copied},
      {"copy_ops", m->copy_ops},
      {"gather_refs", m->gather_refs},
      {"gather_bytes", m->gather_bytes},
      {"pool_hits", m->pool_hits},
      {"pool_misses", m->pool_misses},
      {"queue_full", m->queue_full},
      {"corr_drops", m->corr_drops},
  };
  std::string Out = "{\n";
  Out += indent;
  Out += "\"build\": " + flick_build_info_json() + ",\n";
  for (const Field &F : Fields) {
    Out += indent;
    Out += "\"";
    Out += F.Name;
    Out += "\": " + std::to_string(F.Value) + ",\n";
  }
  char Buf[64];
  // Derived: bulk copies per issued RPC, the headline zero-copy number.
  uint64_t Calls = m->rpcs_sent + m->oneways_sent;
  std::snprintf(Buf, sizeof(Buf), "%.3f",
                static_cast<double>(m->copy_ops) /
                    static_cast<double>(Calls ? Calls : 1));
  Out += indent;
  Out += "\"copies_per_rpc\": ";
  Out += Buf;
  Out += ",\n";
  std::snprintf(Buf, sizeof(Buf), "%.3f", m->wire_time_us);
  Out += indent;
  Out += "\"wire_time_us\": ";
  Out += Buf;
  Out += ",\n";
  Out += indent;
  Out += "\"rpc_latency\": ";
  Out += flick_hist_to_json(&m->rpc_latency,
                            (std::string(indent) + "  ").c_str());
  Out += ",\n";
  Out += indent;
  Out += "\"latency_anatomy\": ";
  Out += flick_metrics_anatomy_json(m,
                                    (std::string(indent) + "  ").c_str());
  Out += "\n}";
  return Out;
}
