//===- runtime/Metrics.cpp - Runtime metrics block ------------------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "runtime/flick_runtime.h"
#include "support/BuildInfo.h"
#include <cstdio>

thread_local flick_metrics *flick_metrics_active = nullptr;

void flick_metrics_enable(flick_metrics *m) {
  *m = flick_metrics{};
  flick_metrics_active = m;
}

void flick_metrics_disable() { flick_metrics_active = nullptr; }

void flick_metrics_merge(flick_metrics *dst, const flick_metrics *src) {
  dst->rpcs_sent += src->rpcs_sent;
  dst->oneways_sent += src->oneways_sent;
  dst->replies_received += src->replies_received;
  dst->request_bytes += src->request_bytes;
  dst->reply_bytes += src->reply_bytes;
  dst->rpcs_handled += src->rpcs_handled;
  dst->replies_sent += src->replies_sent;
  dst->server_request_bytes += src->server_request_bytes;
  dst->server_reply_bytes += src->server_reply_bytes;
  dst->buf_grows += src->buf_grows;
  dst->buf_reuses += src->buf_reuses;
  dst->arena_grows += src->arena_grows;
  if (src->arena_high_water > dst->arena_high_water)
    dst->arena_high_water = src->arena_high_water;
  dst->decode_errors += src->decode_errors;
  dst->transport_errors += src->transport_errors;
  dst->demux_errors += src->demux_errors;
  dst->alloc_errors += src->alloc_errors;
  dst->interp_encodes += src->interp_encodes;
  dst->interp_decodes += src->interp_decodes;
  dst->bytes_copied += src->bytes_copied;
  dst->copy_ops += src->copy_ops;
  dst->gather_refs += src->gather_refs;
  dst->gather_bytes += src->gather_bytes;
  dst->pool_hits += src->pool_hits;
  dst->pool_misses += src->pool_misses;
  dst->queue_full += src->queue_full;
  dst->wire_time_us += src->wire_time_us;
  flick_hist_merge(&dst->rpc_latency, &src->rpc_latency);
}

std::string flick_metrics_to_json(const flick_metrics *m,
                                  const char *indent) {
  struct Field {
    const char *Name;
    uint64_t Value;
  };
  const Field Fields[] = {
      {"rpcs_sent", m->rpcs_sent},
      {"oneways_sent", m->oneways_sent},
      {"replies_received", m->replies_received},
      {"request_bytes", m->request_bytes},
      {"reply_bytes", m->reply_bytes},
      {"rpcs_handled", m->rpcs_handled},
      {"replies_sent", m->replies_sent},
      {"server_request_bytes", m->server_request_bytes},
      {"server_reply_bytes", m->server_reply_bytes},
      {"buf_grows", m->buf_grows},
      {"buf_reuses", m->buf_reuses},
      {"arena_grows", m->arena_grows},
      {"arena_high_water", m->arena_high_water},
      {"decode_errors", m->decode_errors},
      {"transport_errors", m->transport_errors},
      {"demux_errors", m->demux_errors},
      {"alloc_errors", m->alloc_errors},
      {"interp_encodes", m->interp_encodes},
      {"interp_decodes", m->interp_decodes},
      {"bytes_copied", m->bytes_copied},
      {"copy_ops", m->copy_ops},
      {"gather_refs", m->gather_refs},
      {"gather_bytes", m->gather_bytes},
      {"pool_hits", m->pool_hits},
      {"pool_misses", m->pool_misses},
      {"queue_full", m->queue_full},
  };
  std::string Out = "{\n";
  Out += indent;
  Out += "\"build\": " + flick_build_info_json() + ",\n";
  for (const Field &F : Fields) {
    Out += indent;
    Out += "\"";
    Out += F.Name;
    Out += "\": " + std::to_string(F.Value) + ",\n";
  }
  char Buf[64];
  // Derived: bulk copies per issued RPC, the headline zero-copy number.
  uint64_t Calls = m->rpcs_sent + m->oneways_sent;
  std::snprintf(Buf, sizeof(Buf), "%.3f",
                static_cast<double>(m->copy_ops) /
                    static_cast<double>(Calls ? Calls : 1));
  Out += indent;
  Out += "\"copies_per_rpc\": ";
  Out += Buf;
  Out += ",\n";
  std::snprintf(Buf, sizeof(Buf), "%.3f", m->wire_time_us);
  Out += indent;
  Out += "\"wire_time_us\": ";
  Out += Buf;
  Out += ",\n";
  Out += indent;
  Out += "\"rpc_latency\": ";
  Out += flick_hist_to_json(&m->rpc_latency,
                            (std::string(indent) + "  ").c_str());
  Out += "\n}";
  return Out;
}
