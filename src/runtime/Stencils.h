//===- runtime/Stencils.h - Pre-compiled marshal stencil kernels -*- C++ -*-===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stencil library for the runtime marshal specializer: a fixed
/// vocabulary of pre-compiled kernels over the MarshalPlan step shapes
/// (scalar put/get at fixed widths, bounded memcpy and byte-swap runs,
/// counted-sequence headers, cstring scans, chunk reservations), in the
/// copy-and-patch discipline.  Every variant that affects instruction
/// selection -- host width, wire width, endianness, XDR widening -- is a
/// template parameter, so the compiler burns it into the kernel body
/// ahead of time; everything that is plain data -- offsets, byte counts,
/// strides, jump distances -- is a "hole" in the flick_spec_op record
/// that the specializer patches with immediates at specialization time.
///
/// A specialized program is a flat array of patched ops executed by
/// direct threading: each kernel returns the next op to run (usually
/// Op + 1; loop kernels jump by the patched D distance; the end kernel
/// returns null).  Kernels never allocate and never dispatch on type --
/// the one dynamic dispatch per field that defines the interpreter
/// (runtime/Interp.h) becomes one indirect call per *run* of fields.
///
/// Hole assignments by kernel (unused holes stay zero):
///
///   kernel            A              B             C           D
///   scalar put/get    host offset    -             -           -
///   memcpy run        host offset    bytes         -           -
///   swap run          host offset    element count -           -
///   reserve / check   bytes          -             -           -
///   align4            -              -             -           -
///   cstring           host offset    -             -           -
///   counted dense     len offset     buf offset    host stride -
///   loop fixed        base offset    count         host stride -
///   loop counted      len offset     buf offset    host stride skip-ahead
///   loop end          -              -             -           jump-back
///
/// `Covers` is the accounting hole: how many interpreter node visits the
/// op stands in for (per element, for the counted kernels).  Executed ops
/// accumulate it so spec_dispatches_avoided is a measured number.
///
//===----------------------------------------------------------------------===//

#ifndef FLICK_RUNTIME_STENCILS_H
#define FLICK_RUNTIME_STENCILS_H

#include "runtime/flick_runtime.h"

namespace flick {

/// Loop-nesting bound for specialized programs; deeper type programs fall
/// back to the interpreter.
enum { FLICK_SPEC_MAX_DEPTH = 12 };

/// One patched op: a stencil kernel pointer plus its immediate holes.
/// Instantiated per direction (the encode and decode contexts differ).
template <class Ctx> struct flick_spec_op_t {
  const flick_spec_op_t<Ctx> *(*Fn)(const flick_spec_op_t<Ctx> *Op,
                                    Ctx &C) = nullptr;
  uint32_t A = 0;
  uint32_t B = 0;
  uint32_t C = 0;
  uint32_t D = 0;
  uint32_t Covers = 0;
};

/// Execution state for one specialized encode: the marshal buffer, the
/// current presented base pointer (loop kernels rebind it per element),
/// and a fixed-depth frame stack -- no allocation on any path.
struct flick_spec_enc_ctx {
  flick_buf *Buf = nullptr;
  const uint8_t *V = nullptr;
  int Err = FLICK_OK;
  uint64_t Covers = 0; ///< interp node visits the executed ops stood in for
  uint64_t Steps = 0;  ///< kernel dispatches actually executed
  struct Frame {
    const uint8_t *SavedV;
    const uint8_t *Cur;
    uint32_t Left;
    uint32_t Stride;
  };
  Frame Stack[FLICK_SPEC_MAX_DEPTH];
  unsigned Depth = 0;
};

/// Execution state for one specialized decode; pointer members are
/// arena-allocated exactly as the interpreter allocates them.
struct flick_spec_dec_ctx {
  flick_buf *Buf = nullptr;
  uint8_t *V = nullptr;
  flick_arena *Ar = nullptr;
  int Err = FLICK_OK;
  uint64_t Covers = 0;
  uint64_t Steps = 0;
  struct Frame {
    uint8_t *SavedV;
    uint8_t *Cur;
    uint32_t Left;
    uint32_t Stride;
  };
  Frame Stack[FLICK_SPEC_MAX_DEPTH];
  unsigned Depth = 0;
};

using flick_spec_enc_op = flick_spec_op_t<flick_spec_enc_ctx>;
using flick_spec_dec_op = flick_spec_op_t<flick_spec_dec_ctx>;
using flick_spec_enc_fn =
    const flick_spec_enc_op *(*)(const flick_spec_enc_op *,
                                 flick_spec_enc_ctx &);
using flick_spec_dec_fn =
    const flick_spec_dec_op *(*)(const flick_spec_dec_op *,
                                 flick_spec_dec_ctx &);

//===----------------------------------------------------------------------===//
// Kernel selectors
//===----------------------------------------------------------------------===//
//
// The specializer asks for kernels by shape; each selector returns the
// pre-compiled instantiation for the requested width/endianness combo, or
// null when the library has no such stencil (the caller then refuses to
// specialize and the interpreter keeps the type).

/// Scalar of \p HostW presented bytes traveling as \p WireW wire bytes
/// (WireW > HostW is XDR widening).  Supported: 1/2/4/8 host bytes, wire
/// width equal or widened to 4.
flick_spec_enc_fn flick_stencil_enc_scalar(unsigned HostW, unsigned WireW,
                                           bool BigEndian);
flick_spec_dec_fn flick_stencil_dec_scalar(unsigned HostW, unsigned WireW,
                                           bool BigEndian);

/// Bounded bit-identical run: B bytes at host offset A.
flick_spec_enc_fn flick_stencil_enc_memcpy();
flick_spec_dec_fn flick_stencil_dec_memcpy();

/// Bounded byte-swap run: B elements of \p Width bytes at host offset A.
flick_spec_enc_fn flick_stencil_enc_swap(unsigned Width);
flick_spec_dec_fn flick_stencil_dec_swap(unsigned Width);

/// Front-loaded reservation (encode) / bounds check (decode) for the A
/// fixed wire bytes that the following run of kernels produces/consumes.
flick_spec_enc_fn flick_stencil_enc_reserve();
flick_spec_dec_fn flick_stencil_dec_check();

/// XDR 4-byte alignment of the write/read cursor (emitted only under
/// XdrWidening, after byte runs whose length is not statically aligned).
flick_spec_enc_fn flick_stencil_enc_align4();
flick_spec_dec_fn flick_stencil_dec_align4();

/// NUL-terminated string scan: length word + bytes (+ NUL under CDR) +
/// alignment, in one kernel; does its own reservation (variable size).
flick_spec_enc_fn flick_stencil_enc_cstring(bool BigEndian, bool Widening);
flick_spec_dec_fn flick_stencil_dec_cstring(bool BigEndian, bool Widening);

/// Counted sequence whose element is one dense run: length word plus a
/// single bulk memcpy (SwapWidth == 0) or byte-swap run (SwapWidth is
/// the element scalar width).  The headline kernel: an entire sequence in
/// one dispatch.
flick_spec_enc_fn flick_stencil_enc_counted_dense(bool BigEndian,
                                                  unsigned SwapWidth);
flick_spec_dec_fn flick_stencil_dec_counted_dense(bool BigEndian,
                                                  unsigned SwapWidth);

/// Per-element loops for non-dense aggregates.  The counted variants
/// marshal the length word themselves; decode allocates the presented
/// element storage exactly as the interpreter does.
flick_spec_enc_fn flick_stencil_enc_loop_fixed();
flick_spec_dec_fn flick_stencil_dec_loop_fixed();
flick_spec_enc_fn flick_stencil_enc_loop_counted(bool BigEndian);
flick_spec_dec_fn flick_stencil_dec_loop_counted(bool BigEndian);
flick_spec_enc_fn flick_stencil_enc_loop_end();
flick_spec_dec_fn flick_stencil_dec_loop_end();

/// Program terminator.
flick_spec_enc_fn flick_stencil_enc_end();
flick_spec_dec_fn flick_stencil_dec_end();

} // namespace flick

#endif // FLICK_RUNTIME_STENCILS_H
