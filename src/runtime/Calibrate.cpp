//===- runtime/Calibrate.cpp - host memory-bandwidth calibration ----------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "runtime/Calibrate.h"
#include <chrono>
#include <cstring>
#include <vector>

using namespace flick;

double flick::measureCopyBandwidth() {
  constexpr size_t Size = 8u << 20; // 8 MB, beyond L2 on typical hosts
  std::vector<uint8_t> Src(Size, 0xA5), Dst(Size);
  using Clock = std::chrono::steady_clock;
  double Best = 0;
  for (int Round = 0; Round != 5; ++Round) {
    auto T0 = Clock::now();
    std::memcpy(Dst.data(), Src.data(), Size);
    auto T1 = Clock::now();
    double Secs = std::chrono::duration<double>(T1 - T0).count();
    if (Secs > 0) {
      double Bw = static_cast<double>(Size) / Secs;
      if (Bw > Best)
        Best = Bw;
    }
    // Keep the copy from being optimized out.
    if (Dst[Round] == 0x5A)
      Src[Round] ^= 1;
  }
  return Best > 0 ? Best : 1.0e9;
}

NetworkModel flick::scaleModelToHost(NetworkModel M, double HostCopyBw) {
  double Factor = HostCopyBw / PaperCopyBandwidth;
  if (Factor < 1.0)
    Factor = 1.0;
  M.EffectiveBitsPerSec *= Factor;
  M.PerMsgOverheadUs /= Factor;
  M.PerPacketOverheadUs /= Factor;
  M.Name += "-scaled";
  return M;
}
