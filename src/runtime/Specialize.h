//===- runtime/Specialize.h - Runtime marshal specializer -------*- C++ -*-===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime specializer: compiles an InterpType type program (the
/// dynamic-IDL description the interpreter walks one dispatch per field)
/// into a flat, allocation-free threaded-code program of patched stencil
/// kernels (runtime/Stencils.h) at load time.  The key MarshalPlan
/// analyses rerun here on the type program instead of the compiler IR:
///
///   - adjacent bit-identical scalar fields collapse into single memcpy
///     runs (and endianness-mismatched uniform-width runs into bulk
///     byte-swap runs),
///   - per-field bounds checks hoist into one front-loaded reservation
///     (encode) or bounds check (decode) per fixed-size region,
///   - contiguous fixed arrays merge into their surrounding runs, and
///     counted sequences over dense elements become a single
///     length+bulk-copy kernel.
///
/// Programs are cached keyed by a structural hash of the InterpType tree
/// plus the wire convention, so marshaling N values of one dynamic type
/// compiles once.  Specialized output is byte-identical to the
/// interpreter's (and therefore to the compiled stubs'): the equivalence
/// suite pins this.
///
//===----------------------------------------------------------------------===//

#ifndef FLICK_RUNTIME_SPECIALIZE_H
#define FLICK_RUNTIME_SPECIALIZE_H

#include "runtime/Interp.h"
#include "runtime/Stencils.h"
#include <string>

namespace flick {

/// A specialized program: the patched encode and decode op arrays plus
/// compile-time facts.  Owned by the program cache; immutable once built.
struct flick_spec_program {
  std::vector<flick_spec_enc_op> Enc;
  std::vector<flick_spec_dec_op> Dec;
  uint64_t Hash = 0;       ///< structural hash of (type tree, wire)
  uint64_t StepsFused = 0; ///< primitive steps fused away at compile time
};

/// Returns the cached specialized program for (\p T, \p W), compiling it
/// on first use.  Returns null when the type program cannot be
/// specialized (unsupported width, excessive nesting); the null result is
/// cached too, so callers can retry cheaply and fall back to the
/// interpreter.  Thread-safe; counts spec_programs / spec_compile_ns /
/// spec_cache_hits / spec_steps_fused on the calling thread's metrics.
const flick_spec_program *flick_specialize(const InterpType &T,
                                           const InterpWire &W);

/// Runs a specialized encode/decode.  Wire output and error behavior
/// match flick_interp_encode/decode byte for byte; copy accounting is one
/// bulk copy per call (the same basis as the instrumented interpreter).
int flick_spec_encode(flick_buf *Buf, const flick_spec_program *P,
                      const void *Val);
int flick_spec_decode(flick_buf *Buf, const flick_spec_program *P,
                      void *Val, flick_arena *Ar);

/// The cache key: a canonical serialization of the type tree's structure
/// (kinds, offsets, widths, counts, strides) prefixed with the wire
/// convention.  Two independently built but structurally identical trees
/// produce the same key and share one program.
std::string flick_spec_structural_key(const InterpType &T,
                                      const InterpWire &W);

/// FNV-1a hash of the structural key.
uint64_t flick_spec_structural_hash(const InterpType &T,
                                    const InterpWire &W);

/// Cached program count (including cached specialization refusals).
size_t flick_spec_cache_size();

/// Drops every cached program.  For tests and compile-cost benches only:
/// pointers returned by flick_specialize before the clear dangle after it.
void flick_spec_cache_clear();

} // namespace flick

#endif // FLICK_RUNTIME_SPECIALIZE_H
