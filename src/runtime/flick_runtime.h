//===- runtime/flick_runtime.h - Stub runtime for generated code -*- C++ -*-===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime library that Flick-generated stubs compile against: marshal
/// buffers (dynamically allocated and *reused* across invocations, paper
/// §3.1), byte-order encode/decode primitives for every supported wire
/// format, a per-request scratch arena standing in for the paper's
/// stack-allocated parameter storage, and client/server objects wrapping a
/// transport channel.  The API is deliberately C-flavored -- generated code
/// is C with `static inline` helpers -- but compiles as C++ so transports
/// can be real classes.
///
//===----------------------------------------------------------------------===//

#ifndef FLICK_RUNTIME_FLICK_RUNTIME_H
#define FLICK_RUNTIME_FLICK_RUNTIME_H

#include "Trace.h"
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>

namespace flick {
class Channel;
} // namespace flick

/// Transport handle used by generated stubs; concrete channels live in
/// runtime/Channel.h.
typedef flick::Channel flick_channel;

//===----------------------------------------------------------------------===//
// Status codes
//===----------------------------------------------------------------------===//

enum {
  FLICK_OK = 0,
  FLICK_ERR_DECODE = 1,    ///< malformed or truncated message
  FLICK_ERR_TRANSPORT = 2, ///< channel failure
  FLICK_ERR_NO_SUCH_OP = 3,///< demux found no matching operation
  FLICK_ERR_EXCEPTION = 4, ///< reply carried a user exception
  FLICK_ERR_ALLOC = 5,     ///< allocation failure
};

/// Reply-status discriminator marshaled at the front of every reply body.
enum {
  FLICK_REPLY_OK = 0,
  FLICK_REPLY_USER_EXCEPTION = 1,
  FLICK_REPLY_SYSTEM_EXCEPTION = 2,
};

//===----------------------------------------------------------------------===//
// Runtime metrics
//===----------------------------------------------------------------------===//

/// Aggregated runtime counters: RPC and byte totals per endpoint role,
/// buffer grow/reuse events, scratch-arena high-water mark, error counts,
/// and accumulated simulated wire time.  Collection is OFF by default --
/// `flick_metrics_active` is null and every hook below is one predictable
/// pointer test -- so the generated-stub hot paths (inline encode/decode
/// and buffer ensure/grab/take) stay untouched.  Enable with
/// flick_metrics_enable() around a region of interest; bench binaries use
/// this to emit machine-readable results (see bench/BenchUtil.h).
struct flick_metrics {
  // Client endpoint.
  uint64_t rpcs_sent = 0;        ///< two-way invokes issued
  uint64_t oneways_sent = 0;     ///< one-way sends issued
  uint64_t replies_received = 0; ///< replies successfully received
  uint64_t request_bytes = 0;    ///< bytes sent client -> server
  uint64_t reply_bytes = 0;      ///< bytes received server -> client
  // Server endpoint.
  uint64_t rpcs_handled = 0;          ///< requests received and dispatched
  uint64_t replies_sent = 0;          ///< non-empty replies sent
  uint64_t server_request_bytes = 0;  ///< request bytes seen by the server
  uint64_t server_reply_bytes = 0;    ///< reply bytes sent by the server
  // Buffer reuse (paper §3.1).
  uint64_t buf_grows = 0;  ///< flick_buf_grow slow-path entries
  uint64_t buf_reuses = 0; ///< resets that kept an existing allocation
  // Scratch arena.
  uint64_t arena_grows = 0;      ///< arena block allocations
  uint64_t arena_high_water = 0; ///< max bytes live in the current block
  // Errors.
  uint64_t decode_errors = 0;    ///< malformed/truncated messages
  uint64_t transport_errors = 0; ///< channel send/recv failures
  uint64_t demux_errors = 0;     ///< dispatch found no matching operation
  uint64_t alloc_errors = 0;     ///< buffer/arena allocation failures
  // Interpreted marshaling (runtime/Interp.h): type-program nodes visited.
  uint64_t interp_encodes = 0;
  uint64_t interp_decodes = 0;
  // Simulated wire time accumulated by modeled links (SimClock).
  double wire_time_us = 0;
  // Per-call round-trip latency distribution: flick_client_invoke records
  // its wall time here, so every metrics dump (and every FLICK_BENCH_JSON
  // document) carries p50/p90/p99/max beside the aggregate counters.
  flick_latency_hist rpc_latency;
};

/// The installed metrics block, or null when collection is disabled.
extern flick_metrics *flick_metrics_active;

/// Zeroes \p m and installs it as the active metrics block.
void flick_metrics_enable(flick_metrics *m);

/// Stops collection (the block keeps its final values).
void flick_metrics_disable();

/// Renders \p m as a JSON object, e.g. {"rpcs_sent": 3, ...}.  \p indent
/// is prepended to each line of the body.
std::string flick_metrics_to_json(const flick_metrics *m,
                                  const char *indent = "  ");

/// Adds \p v to the counter member \p f of the active block, if any.
inline void flick_metric_add(uint64_t flick_metrics::*f, uint64_t v) {
  if (flick_metrics_active)
    flick_metrics_active->*f += v;
}

/// Raises the counter member \p f to at least \p v.
inline void flick_metric_max(uint64_t flick_metrics::*f, uint64_t v) {
  if (flick_metrics_active && flick_metrics_active->*f < v)
    flick_metrics_active->*f = v;
}

//===----------------------------------------------------------------------===//
// Marshal buffers
//===----------------------------------------------------------------------===//

/// A growable byte buffer with separate append (len) and read (pos)
/// cursors.  Stubs keep one request and one reply buffer per client/server
/// and reset them between invocations instead of reallocating.
struct flick_buf {
  uint8_t *data = nullptr;
  size_t cap = 0;
  size_t len = 0; ///< bytes written (marshal cursor)
  size_t pos = 0; ///< bytes consumed (unmarshal cursor)
};

/// Initial capacity given to lazily grown buffers.
enum { FLICK_BUF_MIN_CAP = 512 };

inline void flick_buf_init(flick_buf *b) { *b = flick_buf{}; }

inline void flick_buf_destroy(flick_buf *b) {
  std::free(b->data);
  *b = flick_buf{};
}

/// Rewinds both cursors, keeping the allocation (buffer reuse).
inline void flick_buf_reset(flick_buf *b) {
  if (flick_metrics_active && b->cap)
    ++flick_metrics_active->buf_reuses;
  b->len = 0;
  b->pos = 0;
}

/// Grows so that at least \p need more bytes can be appended.  Out-of-line
/// slow path; the inline fast path in flick_buf_ensure avoids the call.
int flick_buf_grow(flick_buf *b, size_t need);

/// Ensures room to append \p need bytes; returns FLICK_OK or
/// FLICK_ERR_ALLOC.  Generated stubs call this once per fixed-size message
/// segment rather than per datum.
inline int flick_buf_ensure(flick_buf *b, size_t need) {
  if (b->cap - b->len >= need)
    return FLICK_OK;
  return flick_buf_grow(b, need);
}

/// Reserves \p n appended bytes and returns the chunk pointer for them.
/// Callers must have ensured capacity.
inline uint8_t *flick_buf_grab(flick_buf *b, size_t n) {
  uint8_t *p = b->data + b->len;
  b->len += n;
  return p;
}

/// True when \p n more bytes can be consumed.
inline int flick_buf_check(const flick_buf *b, size_t n) {
  return b->len - b->pos >= n;
}

/// Consumes \p n bytes and returns the chunk pointer for them.  Callers
/// must have checked availability.
inline const uint8_t *flick_buf_take(flick_buf *b, size_t n) {
  const uint8_t *p = b->data + b->pos;
  b->pos += n;
  return p;
}

/// Mutable variant of flick_buf_take, for decode-in-place presentations
/// that alias unmarshaled data inside the request buffer (paper §3.1).
inline uint8_t *flick_buf_take_mut(flick_buf *b, size_t n) {
  uint8_t *p = b->data + b->pos;
  b->pos += n;
  return p;
}

/// Zero-pads the append cursor up to \p a alignment (a power of two).
inline int flick_buf_align_write(flick_buf *b, size_t a) {
  size_t pad = (a - (b->len & (a - 1))) & (a - 1);
  if (!pad)
    return FLICK_OK;
  if (int err = flick_buf_ensure(b, pad))
    return err;
  std::memset(b->data + b->len, 0, pad);
  b->len += pad;
  return FLICK_OK;
}

/// Advances the read cursor up to \p a alignment (a power of two).
inline int flick_buf_align_read(flick_buf *b, size_t a) {
  size_t pad = (a - (b->pos & (a - 1))) & (a - 1);
  if (!pad)
    return FLICK_OK;
  if (!flick_buf_check(b, pad))
    return FLICK_ERR_DECODE;
  b->pos += pad;
  return FLICK_OK;
}

//===----------------------------------------------------------------------===//
// Atomic encode/decode primitives
//===----------------------------------------------------------------------===//
//
// Generated marshal code addresses a chunk pointer plus constant offsets and
// calls these on raw pointers; the compiler lowers each to a single
// (possibly byte-swapped) load or store.

inline void flick_enc_u8(uint8_t *p, uint8_t v) { *p = v; }
inline uint8_t flick_dec_u8(const uint8_t *p) { return *p; }

inline void flick_enc_u16le(uint8_t *p, uint16_t v) { std::memcpy(p, &v, 2); }
inline void flick_enc_u32le(uint8_t *p, uint32_t v) { std::memcpy(p, &v, 4); }
inline void flick_enc_u64le(uint8_t *p, uint64_t v) { std::memcpy(p, &v, 8); }

inline uint16_t flick_dec_u16le(const uint8_t *p) {
  uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}
inline uint32_t flick_dec_u32le(const uint8_t *p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
inline uint64_t flick_dec_u64le(const uint8_t *p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

inline void flick_enc_u16be(uint8_t *p, uint16_t v) {
  v = __builtin_bswap16(v);
  std::memcpy(p, &v, 2);
}
inline void flick_enc_u32be(uint8_t *p, uint32_t v) {
  v = __builtin_bswap32(v);
  std::memcpy(p, &v, 4);
}
inline void flick_enc_u64be(uint8_t *p, uint64_t v) {
  v = __builtin_bswap64(v);
  std::memcpy(p, &v, 8);
}

inline uint16_t flick_dec_u16be(const uint8_t *p) {
  uint16_t v;
  std::memcpy(&v, p, 2);
  return __builtin_bswap16(v);
}
inline uint32_t flick_dec_u32be(const uint8_t *p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return __builtin_bswap32(v);
}
inline uint64_t flick_dec_u64be(const uint8_t *p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return __builtin_bswap64(v);
}

// Native (host-endian) variants; the Mach and Fluke formats use these.
inline void flick_enc_u16ne(uint8_t *p, uint16_t v) { std::memcpy(p, &v, 2); }
inline void flick_enc_u32ne(uint8_t *p, uint32_t v) { std::memcpy(p, &v, 4); }
inline void flick_enc_u64ne(uint8_t *p, uint64_t v) { std::memcpy(p, &v, 8); }
inline uint16_t flick_dec_u16ne(const uint8_t *p) {
  return flick_dec_u16le(p);
}
inline uint32_t flick_dec_u32ne(const uint8_t *p) {
  return flick_dec_u32le(p);
}
inline uint64_t flick_dec_u64ne(const uint8_t *p) {
  return flick_dec_u64le(p);
}

// Floats travel as their IEEE bit patterns.
inline uint32_t flick_f32_bits(float f) {
  uint32_t v;
  std::memcpy(&v, &f, 4);
  return v;
}
inline float flick_bits_f32(uint32_t v) {
  float f;
  std::memcpy(&f, &v, 4);
  return f;
}
inline uint64_t flick_f64_bits(double d) {
  uint64_t v;
  std::memcpy(&v, &d, 8);
  return v;
}
inline double flick_bits_f64(uint64_t v) {
  double d;
  std::memcpy(&d, &v, 8);
  return d;
}

/// Byte-swaps a whole array of 32-bit words while copying; the fallback for
/// arrays whose wire format differs from host format only by endianness.
void flick_swap_copy_u32(uint8_t *dst, const uint8_t *src, size_t words);
void flick_swap_copy_u16(uint8_t *dst, const uint8_t *src, size_t halves);
void flick_swap_copy_u64(uint8_t *dst, const uint8_t *src, size_t dwords);

//===----------------------------------------------------------------------===//
// Naive (rpcgen-style) marshal primitives
//===----------------------------------------------------------------------===//
//
// The baseline back end reproduces the codegen style of traditional IDL
// compilers: every datum goes through an out-of-line function call that
// performs its own buffer check and advances a read/write pointer (see
// paper §3.3, "Inline Code").  These live in Naive.cpp and are deliberately
// NOT inline.

int flick_naive_put_u8(flick_buf *b, uint8_t v);
int flick_naive_put_u16(flick_buf *b, uint16_t v, int bigendian);
int flick_naive_put_u32(flick_buf *b, uint32_t v, int bigendian);
int flick_naive_put_u64(flick_buf *b, uint64_t v, int bigendian);
int flick_naive_put_pad(flick_buf *b, size_t align);
int flick_naive_get_u8(flick_buf *b, uint8_t *v);
int flick_naive_get_u16(flick_buf *b, uint16_t *v, int bigendian);
int flick_naive_get_u32(flick_buf *b, uint32_t *v, int bigendian);
int flick_naive_get_u64(flick_buf *b, uint64_t *v, int bigendian);
int flick_naive_get_pad(flick_buf *b, size_t align);

//===----------------------------------------------------------------------===//
// Per-request scratch arena
//===----------------------------------------------------------------------===//

/// Bump allocator whose lifetime is one request: Flick's stand-in for
/// run-time-stack parameter storage (paper §3.1).  Reset after the work
/// function returns.  Growth allocates a fresh block and chains the old
/// one -- existing allocations never move.
struct flick_arena {
  uint8_t *base = nullptr; ///< current block
  size_t cap = 0;
  size_t used = 0;
  void *retired = nullptr; ///< older, still-live blocks (freed on reset)
};

void flick_arena_destroy(flick_arena *a);
void *flick_arena_grow_alloc(flick_arena *a, size_t n);

inline void *flick_arena_alloc(flick_arena *a, size_t n) {
  // Null arena means "no scratch storage available": fall back to malloc.
  if (!a)
    return std::malloc(n ? n : 1);
  size_t aligned = (a->used + 15) & ~static_cast<size_t>(15);
  if (aligned + n <= a->cap) {
    a->used = aligned + n;
    return a->base + aligned;
  }
  return flick_arena_grow_alloc(a, n);
}

/// Out-of-line: releases retired blocks, keeps the (largest) current one.
void flick_arena_reset(flick_arena *a);

//===----------------------------------------------------------------------===//
// Client and server objects
//===----------------------------------------------------------------------===//

/// Client-side state for one connection: the channel plus reused request
/// and reply buffers.
struct flick_client {
  flick_channel *chan = nullptr;
  flick_buf req;
  flick_buf rep;
  uint32_t next_xid = 1;
};

void flick_client_init(flick_client *c, flick_channel *chan);
void flick_client_destroy(flick_client *c);

/// Resets and returns the reused request buffer.
inline flick_buf *flick_client_begin(flick_client *c) {
  flick_buf_reset(&c->req);
  return &c->req;
}

/// Sends the request buffer and blocks for the reply (into c->rep).
int flick_client_invoke(flick_client *c);

/// Sends the request buffer without expecting a reply.
int flick_client_send_oneway(flick_client *c);

struct flick_server;

/// A generated dispatch function: consumes the request, fills the reply.
/// Returns FLICK_OK when a reply should be sent (including exceptional
/// replies), FLICK_ERR_NO_SUCH_OP / FLICK_ERR_DECODE on protocol errors.
typedef int (*flick_dispatch_fn)(flick_server *srv, flick_buf *req,
                                 flick_buf *rep);

/// Server-side state: channel, reused buffers, scratch arena, and the
/// dispatch function produced by the back end.
struct flick_server {
  flick_channel *chan = nullptr;
  flick_dispatch_fn dispatch = nullptr;
  void *impl = nullptr; ///< opaque hook for servant state
  flick_buf req;
  flick_buf rep;
  flick_arena arena;
};

void flick_server_init(flick_server *s, flick_channel *chan,
                       flick_dispatch_fn dispatch);
void flick_server_destroy(flick_server *s);

/// Receives one request, dispatches it, sends the reply (if any).
/// Returns FLICK_OK, or FLICK_ERR_TRANSPORT when the channel is drained.
int flick_server_handle_one(flick_server *s);

//===----------------------------------------------------------------------===//
// Object references and the CORBA C-mapping environment
//===----------------------------------------------------------------------===//

/// A client-side object reference; CORBA-presentation object types are
/// `typedef flick_obj *<Interface>;`.
struct flick_obj {
  flick_client *client = nullptr;
};

#ifndef FLICK_CORBA_ENV_DEFINED
#define FLICK_CORBA_ENV_DEFINED
enum {
  CORBA_NO_EXCEPTION = 0,
  CORBA_USER_EXCEPTION = 1,
  CORBA_SYSTEM_EXCEPTION = 2,
};

/// The CORBA C mapping's environment parameter.  On a user exception the
/// stub stores the wire exception code and a heap-allocated copy of the
/// exception members (caller frees with free()).
typedef struct CORBA_Environment {
  uint32_t _major;
  uint32_t _exc_code;
  void *_exc_value;
} CORBA_Environment;

inline void CORBA_exception_free(CORBA_Environment *ev) {
  std::free(ev->_exc_value);
  ev->_exc_value = nullptr;
  ev->_major = CORBA_NO_EXCEPTION;
  ev->_exc_code = 0;
}
#endif // FLICK_CORBA_ENV_DEFINED

//===----------------------------------------------------------------------===//
// Channel C shims (implemented in Channel.cpp)
//===----------------------------------------------------------------------===//

int flick_channel_send(flick_channel *ch, const uint8_t *data, size_t len);
/// Receives one message into \p into (reset first).  Returns FLICK_OK or
/// FLICK_ERR_TRANSPORT.
int flick_channel_recv(flick_channel *ch, flick_buf *into);

#endif // FLICK_RUNTIME_FLICK_RUNTIME_H
