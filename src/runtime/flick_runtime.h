//===- runtime/flick_runtime.h - Stub runtime for generated code -*- C++ -*-===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime library that Flick-generated stubs compile against: marshal
/// buffers (dynamically allocated and *reused* across invocations, paper
/// §3.1), byte-order encode/decode primitives for every supported wire
/// format, a per-request scratch arena standing in for the paper's
/// stack-allocated parameter storage, and client/server objects wrapping a
/// transport channel.  The API is deliberately C-flavored -- generated code
/// is C with `static inline` helpers -- but compiles as C++ so transports
/// can be real classes.
///
//===----------------------------------------------------------------------===//

#ifndef FLICK_RUNTIME_FLICK_RUNTIME_H
#define FLICK_RUNTIME_FLICK_RUNTIME_H

#include "Trace.h"
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>

namespace flick {
class Channel;
class Transport;
} // namespace flick

/// Transport handle used by generated stubs; concrete channels live in
/// runtime/Channel.h.
typedef flick::Channel flick_channel;

//===----------------------------------------------------------------------===//
// Status codes
//===----------------------------------------------------------------------===//

enum {
  FLICK_OK = 0,
  FLICK_ERR_DECODE = 1,    ///< malformed or truncated message
  FLICK_ERR_TRANSPORT = 2, ///< channel failure
  FLICK_ERR_NO_SUCH_OP = 3,///< demux found no matching operation
  FLICK_ERR_EXCEPTION = 4, ///< reply carried a user exception
  FLICK_ERR_ALLOC = 5,     ///< allocation failure
  FLICK_ERR_WOULD_BLOCK = 6, ///< fail-fast submit found the window full
};

/// Reply-status discriminator marshaled at the front of every reply body.
enum {
  FLICK_REPLY_OK = 0,
  FLICK_REPLY_USER_EXCEPTION = 1,
  FLICK_REPLY_SYSTEM_EXCEPTION = 2,
};

//===----------------------------------------------------------------------===//
// Runtime metrics
//===----------------------------------------------------------------------===//

/// Aggregated runtime counters: RPC and byte totals per endpoint role,
/// buffer grow/reuse events, scratch-arena high-water mark, error counts,
/// and accumulated simulated wire time.  Collection is OFF by default --
/// `flick_metrics_active` is null and every hook below is one predictable
/// pointer test -- so the generated-stub hot paths (inline encode/decode
/// and buffer ensure/grab/take) stay untouched.  Enable with
/// flick_metrics_enable() around a region of interest; bench binaries use
/// this to emit machine-readable results (see bench/BenchUtil.h).
///
/// The installed pointer is thread-local, so the hot path stays a plain
/// load + store with no shared atomics even under the threaded runtime:
/// each thread (client driver, pool worker) collects into its own block
/// and the blocks are combined at dump time with flick_metrics_merge,
/// which sums counters, max-merges arena_high_water, and merges the
/// latency histogram bucket-wise.  flick_server_pool does this for its
/// workers automatically.
struct flick_metrics {
  // Client endpoint.
  uint64_t rpcs_sent = 0;        ///< two-way invokes issued
  uint64_t oneways_sent = 0;     ///< one-way sends issued
  uint64_t replies_received = 0; ///< replies successfully received
  uint64_t request_bytes = 0;    ///< bytes sent client -> server
  uint64_t reply_bytes = 0;      ///< bytes received server -> client
  // Server endpoint.
  uint64_t rpcs_handled = 0;          ///< requests received and dispatched
  uint64_t replies_sent = 0;          ///< non-empty replies sent
  uint64_t server_request_bytes = 0;  ///< request bytes seen by the server
  uint64_t server_reply_bytes = 0;    ///< reply bytes sent by the server
  // Buffer reuse (paper §3.1).
  uint64_t buf_grows = 0;  ///< flick_buf_grow slow-path entries
  uint64_t buf_reuses = 0; ///< resets that kept an existing allocation
  // Scratch arena.
  uint64_t arena_grows = 0;      ///< arena block allocations
  uint64_t arena_high_water = 0; ///< max bytes live in the current block
  // Errors.
  uint64_t decode_errors = 0;    ///< malformed/truncated messages
  uint64_t transport_errors = 0; ///< channel send/recv failures
  uint64_t demux_errors = 0;     ///< dispatch found no matching operation
  uint64_t alloc_errors = 0;     ///< buffer/arena allocation failures
  // Interpreted marshaling (runtime/Interp.h): type-program nodes visited.
  uint64_t interp_encodes = 0;
  uint64_t interp_decodes = 0;
  // Runtime marshal specialization (runtime/Specialize.h).
  uint64_t interp_dispatches = 0;       ///< dynamic dispatches the interp ran
  uint64_t spec_programs = 0;           ///< type programs specialized
  uint64_t spec_compile_ns = 0;         ///< time spent specializing
  uint64_t spec_cache_hits = 0;         ///< program-cache hits
  uint64_t spec_steps_fused = 0;        ///< primitive steps fused at compile
  uint64_t spec_dispatches_avoided = 0; ///< interp dispatches specialization saved
  // Copy accounting (zero-copy message path): every bulk byte movement on
  // the message path -- stub marshal/unmarshal copies, transport staging,
  // pooled-buffer fills -- adds to these, so "how many times was this
  // payload copied" is a measured number, not an argument.
  uint64_t bytes_copied = 0; ///< payload bytes moved by message-path copies
  uint64_t copy_ops = 0;     ///< number of such bulk copy operations
  // Scatter-gather marshaling (--gather-min-bytes).
  uint64_t gather_refs = 0;  ///< segments appended by reference (no copy)
  uint64_t gather_bytes = 0; ///< bytes covered by those segments
  // Wire-buffer pool (LocalLink / ThreadedLink free lists).
  uint64_t pool_hits = 0;   ///< pooled wire buffers reused
  uint64_t pool_misses = 0; ///< pool empty or too small: fresh allocation
  // Threaded request queue backpressure (ThreadedLink): sends that found
  // the bounded queue full and had to wait for a worker to drain it.
  uint64_t queue_full = 0;
  // Async client demultiplexer: replies whose correlation id matched no
  // pending call (duplicate or unknown id) -- dropped and counted, never
  // fatal.
  uint64_t corr_drops = 0;
  // Simulated wire time accumulated by modeled links (SimClock).
  double wire_time_us = 0;
  // Per-call round-trip latency distribution: flick_client_invoke records
  // its wall time here, so every metrics dump (and every FLICK_BENCH_JSON
  // document) carries p50/p90/p99/max beside the aggregate counters.
  flick_latency_hist rpc_latency;
  // Latency anatomy: per-endpoint x per-span-kind histograms (and SLO
  // error-budget counters), populated allocation-free at span close when
  // both a tracer and this block are active.  Merged entry-wise by
  // flick_metrics_merge, so pool workers attribute exactly.
  flick_endpoint_stats anatomy[FLICK_MAX_ENDPOINTS];
};

/// The calling thread's installed metrics block, or null when collection
/// is disabled on this thread.
extern thread_local flick_metrics *flick_metrics_active;

/// Zeroes \p m and installs it as the calling thread's metrics block.
void flick_metrics_enable(flick_metrics *m);

/// Stops collection on the calling thread (the block keeps its final
/// values).
void flick_metrics_disable();

/// Adds \p src's counters into \p dst: plain counters and wire time sum,
/// arena_high_water takes the max, and the rpc_latency histogram merges
/// bucket-wise, so derived numbers (copies_per_rpc, percentiles) computed
/// from the merged block equal those of a single-block run that saw all
/// the traffic.
void flick_metrics_merge(flick_metrics *dst, const flick_metrics *src);

/// Renders \p m as a JSON object, e.g. {"rpcs_sent": 3, ...}.  \p indent
/// is prepended to each line of the body.
std::string flick_metrics_to_json(const flick_metrics *m,
                                  const char *indent = "  ");

/// Renders the latency-anatomy table alone: per used endpoint, the rpc
/// summary, each phase's p50/p99 and share of the rpc span, SLO counters
/// (when configured), and the mean-based self-consistency block the CI
/// gate checks.  "{}" when nothing was attributed.
std::string flick_metrics_anatomy_json(const flick_metrics *m,
                                       const char *indent = "  ");

/// Adds \p v to the counter member \p f of the active block, if any.
inline void flick_metric_add(uint64_t flick_metrics::*f, uint64_t v) {
  if (flick_metrics_active)
    flick_metrics_active->*f += v;
}

/// Raises the counter member \p f to at least \p v.
inline void flick_metric_max(uint64_t flick_metrics::*f, uint64_t v) {
  if (flick_metrics_active && flick_metrics_active->*f < v)
    flick_metrics_active->*f = v;
}

//===----------------------------------------------------------------------===//
// Marshal buffers
//===----------------------------------------------------------------------===//

/// One scatter-gather segment: a borrowed span of caller memory.  Gathered
/// sends (flick_channel_sendv) consume an array of these.
struct flick_iov {
  const uint8_t *base;
  size_t len;
};

/// One by-reference segment recorded in a flick_buf: \p base/\p len borrow
/// caller memory, \p own_off is the owned-byte offset the segment splices
/// into (the value of buf.len when the reference was taken).
struct flick_buf_ref_ent {
  const uint8_t *base;
  size_t len;
  size_t own_off;
};

/// Bound on by-reference segments per buffer; beyond it flick_buf_ref
/// falls back to copying, so the segment list needs no heap storage.
enum { FLICK_BUF_MAX_REFS = 8 };

/// A growable byte buffer with separate append (len) and read (pos)
/// cursors.  Stubs keep one request and one reply buffer per client/server
/// and reset them between invocations instead of reallocating.
///
/// Under scatter-gather marshaling (--gather-min-bytes) a buffer may also
/// carry up to FLICK_BUF_MAX_REFS *borrowed* segments: spans of caller
/// memory recorded by flick_buf_ref instead of being copied in.  The
/// logical message is the owned bytes with each borrowed span spliced in
/// at its own_off -- flick_buf_iovec materializes that order.  Borrowed
/// spans must outlive the send that consumes them (see DESIGN.md §11).
struct flick_buf {
  uint8_t *data = nullptr;
  size_t cap = 0;
  size_t len = 0; ///< owned bytes written (marshal cursor)
  size_t pos = 0; ///< bytes consumed (unmarshal cursor)
  size_t nrefs = 0;     ///< borrowed segments recorded
  size_t ref_bytes = 0; ///< total bytes across borrowed segments
  flick_buf_ref_ent refs[FLICK_BUF_MAX_REFS];
};

/// Initial capacity given to lazily grown buffers.
enum { FLICK_BUF_MIN_CAP = 512 };

inline void flick_buf_init(flick_buf *b) { *b = flick_buf{}; }

inline void flick_buf_destroy(flick_buf *b) {
  std::free(b->data);
  *b = flick_buf{};
}

/// Rewinds both cursors and drops borrowed segments, keeping the
/// allocation (buffer reuse).
inline void flick_buf_reset(flick_buf *b) {
  if (flick_metrics_active && b->cap)
    ++flick_metrics_active->buf_reuses;
  b->len = 0;
  b->pos = 0;
  b->nrefs = 0;
  b->ref_bytes = 0;
}

/// Grows so that at least \p need more bytes can be appended.  Out-of-line
/// slow path; the inline fast path in flick_buf_ensure avoids the call.
int flick_buf_grow(flick_buf *b, size_t need);

/// Ensures room to append \p need bytes; returns FLICK_OK or
/// FLICK_ERR_ALLOC.  Generated stubs call this once per fixed-size message
/// segment rather than per datum.
inline int flick_buf_ensure(flick_buf *b, size_t need) {
  if (b->cap - b->len >= need)
    return FLICK_OK;
  return flick_buf_grow(b, need);
}

/// Reserves \p n appended bytes and returns the chunk pointer for them.
/// Callers must have ensured capacity.  Counted as a copy: every grab is
/// immediately filled by stores or a memcpy from presented data.
inline uint8_t *flick_buf_grab(flick_buf *b, size_t n) {
  if (flick_metrics_active) {
    flick_metrics_active->bytes_copied += n;
    ++flick_metrics_active->copy_ops;
  }
  uint8_t *p = b->data + b->len;
  b->len += n;
  return p;
}

/// True when \p n more bytes can be consumed.
inline int flick_buf_check(const flick_buf *b, size_t n) {
  return b->len - b->pos >= n;
}

/// Consumes \p n bytes and returns the chunk pointer for them.  Callers
/// must have checked availability.  Counted as a copy: taken bytes are
/// loaded/memcpy'd into presented storage (unlike flick_buf_take_mut,
/// which aliases them in place at zero cost).
inline const uint8_t *flick_buf_take(flick_buf *b, size_t n) {
  if (flick_metrics_active) {
    flick_metrics_active->bytes_copied += n;
    ++flick_metrics_active->copy_ops;
  }
  const uint8_t *p = b->data + b->pos;
  b->pos += n;
  return p;
}

/// Mutable variant of flick_buf_take, for decode-in-place presentations
/// that alias unmarshaled data inside the request buffer (paper §3.1).
inline uint8_t *flick_buf_take_mut(flick_buf *b, size_t n) {
  uint8_t *p = b->data + b->pos;
  b->pos += n;
  return p;
}

/// Non-accounting cursor variants for marshalers that charge copy metrics
/// once per call instead of once per datum (the interpreter and the
/// runtime specializer): same cursor motion as grab/take, no counters, so
/// copies_per_rpc stays comparable with compiled stubs.
inline uint8_t *flick_buf_grab_raw(flick_buf *b, size_t n) {
  uint8_t *p = b->data + b->len;
  b->len += n;
  return p;
}

inline const uint8_t *flick_buf_take_raw(flick_buf *b, size_t n) {
  const uint8_t *p = b->data + b->pos;
  b->pos += n;
  return p;
}

/// Records a borrowed segment: the \p n bytes at \p p join the logical
/// message at the current append position without being copied.  When the
/// segment list is full, degrades to a plain copy so callers never need a
/// fallback path of their own.  Returns FLICK_OK or FLICK_ERR_ALLOC.
inline int flick_buf_ref(flick_buf *b, const void *p, size_t n) {
  if (b->nrefs == FLICK_BUF_MAX_REFS) {
    if (int err = flick_buf_ensure(b, n))
      return err;
    std::memcpy(flick_buf_grab(b, n), p, n);
    return FLICK_OK;
  }
  flick_buf_ref_ent &E = b->refs[b->nrefs++];
  E.base = static_cast<const uint8_t *>(p);
  E.len = n;
  E.own_off = b->len;
  b->ref_bytes += n;
  if (flick_metrics_active) {
    ++flick_metrics_active->gather_refs;
    flick_metrics_active->gather_bytes += n;
  }
  return FLICK_OK;
}

/// Logical message length: owned bytes plus borrowed segments.  Equals
/// b->len whenever no references were taken.
inline size_t flick_buf_total(const flick_buf *b) {
  return b->len + b->ref_bytes;
}

/// Flattens \p b into wire-order segments: owned-byte runs interleaved
/// with borrowed spans at their splice points.  \p iov must hold at least
/// 2 * FLICK_BUF_MAX_REFS + 1 entries; returns the count used.
size_t flick_buf_iovec(const flick_buf *b, flick_iov *iov);

/// Zero-pads the append cursor up to \p a alignment (a power of two).
/// Alignment is of the *logical* position (owned + borrowed bytes), so a
/// gathered message keeps the exact wire layout of its copied twin.
inline int flick_buf_align_write(flick_buf *b, size_t a) {
  size_t pad = (a - ((b->len + b->ref_bytes) & (a - 1))) & (a - 1);
  if (!pad)
    return FLICK_OK;
  if (int err = flick_buf_ensure(b, pad))
    return err;
  std::memset(b->data + b->len, 0, pad);
  b->len += pad;
  return FLICK_OK;
}

/// Advances the read cursor up to \p a alignment (a power of two).
inline int flick_buf_align_read(flick_buf *b, size_t a) {
  size_t pad = (a - (b->pos & (a - 1))) & (a - 1);
  if (!pad)
    return FLICK_OK;
  if (!flick_buf_check(b, pad))
    return FLICK_ERR_DECODE;
  b->pos += pad;
  return FLICK_OK;
}

//===----------------------------------------------------------------------===//
// Atomic encode/decode primitives
//===----------------------------------------------------------------------===//
//
// Generated marshal code addresses a chunk pointer plus constant offsets and
// calls these on raw pointers; the compiler lowers each to a single
// (possibly byte-swapped) load or store.

inline void flick_enc_u8(uint8_t *p, uint8_t v) { *p = v; }
inline uint8_t flick_dec_u8(const uint8_t *p) { return *p; }

inline void flick_enc_u16le(uint8_t *p, uint16_t v) { std::memcpy(p, &v, 2); }
inline void flick_enc_u32le(uint8_t *p, uint32_t v) { std::memcpy(p, &v, 4); }
inline void flick_enc_u64le(uint8_t *p, uint64_t v) { std::memcpy(p, &v, 8); }

inline uint16_t flick_dec_u16le(const uint8_t *p) {
  uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}
inline uint32_t flick_dec_u32le(const uint8_t *p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
inline uint64_t flick_dec_u64le(const uint8_t *p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

inline void flick_enc_u16be(uint8_t *p, uint16_t v) {
  v = __builtin_bswap16(v);
  std::memcpy(p, &v, 2);
}
inline void flick_enc_u32be(uint8_t *p, uint32_t v) {
  v = __builtin_bswap32(v);
  std::memcpy(p, &v, 4);
}
inline void flick_enc_u64be(uint8_t *p, uint64_t v) {
  v = __builtin_bswap64(v);
  std::memcpy(p, &v, 8);
}

inline uint16_t flick_dec_u16be(const uint8_t *p) {
  uint16_t v;
  std::memcpy(&v, p, 2);
  return __builtin_bswap16(v);
}
inline uint32_t flick_dec_u32be(const uint8_t *p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return __builtin_bswap32(v);
}
inline uint64_t flick_dec_u64be(const uint8_t *p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return __builtin_bswap64(v);
}

// Native (host-endian) variants; the Mach and Fluke formats use these.
inline void flick_enc_u16ne(uint8_t *p, uint16_t v) { std::memcpy(p, &v, 2); }
inline void flick_enc_u32ne(uint8_t *p, uint32_t v) { std::memcpy(p, &v, 4); }
inline void flick_enc_u64ne(uint8_t *p, uint64_t v) { std::memcpy(p, &v, 8); }
inline uint16_t flick_dec_u16ne(const uint8_t *p) {
  return flick_dec_u16le(p);
}
inline uint32_t flick_dec_u32ne(const uint8_t *p) {
  return flick_dec_u32le(p);
}
inline uint64_t flick_dec_u64ne(const uint8_t *p) {
  return flick_dec_u64le(p);
}

// Floats travel as their IEEE bit patterns.
inline uint32_t flick_f32_bits(float f) {
  uint32_t v;
  std::memcpy(&v, &f, 4);
  return v;
}
inline float flick_bits_f32(uint32_t v) {
  float f;
  std::memcpy(&f, &v, 4);
  return f;
}
inline uint64_t flick_f64_bits(double d) {
  uint64_t v;
  std::memcpy(&v, &d, 8);
  return v;
}
inline double flick_bits_f64(uint64_t v) {
  double d;
  std::memcpy(&d, &v, 8);
  return d;
}

/// Byte-swaps a whole array of 32-bit words while copying; the fallback for
/// arrays whose wire format differs from host format only by endianness.
void flick_swap_copy_u32(uint8_t *dst, const uint8_t *src, size_t words);
void flick_swap_copy_u16(uint8_t *dst, const uint8_t *src, size_t halves);
void flick_swap_copy_u64(uint8_t *dst, const uint8_t *src, size_t dwords);

//===----------------------------------------------------------------------===//
// Naive (rpcgen-style) marshal primitives
//===----------------------------------------------------------------------===//
//
// The baseline back end reproduces the codegen style of traditional IDL
// compilers: every datum goes through an out-of-line function call that
// performs its own buffer check and advances a read/write pointer (see
// paper §3.3, "Inline Code").  These live in Naive.cpp and are deliberately
// NOT inline.

int flick_naive_put_u8(flick_buf *b, uint8_t v);
int flick_naive_put_u16(flick_buf *b, uint16_t v, int bigendian);
int flick_naive_put_u32(flick_buf *b, uint32_t v, int bigendian);
int flick_naive_put_u64(flick_buf *b, uint64_t v, int bigendian);
int flick_naive_put_pad(flick_buf *b, size_t align);
int flick_naive_get_u8(flick_buf *b, uint8_t *v);
int flick_naive_get_u16(flick_buf *b, uint16_t *v, int bigendian);
int flick_naive_get_u32(flick_buf *b, uint32_t *v, int bigendian);
int flick_naive_get_u64(flick_buf *b, uint64_t *v, int bigendian);
int flick_naive_get_pad(flick_buf *b, size_t align);

//===----------------------------------------------------------------------===//
// Per-request scratch arena
//===----------------------------------------------------------------------===//

/// Bump allocator whose lifetime is one request: Flick's stand-in for
/// run-time-stack parameter storage (paper §3.1).  Reset after the work
/// function returns.  Growth allocates a fresh block and chains the old
/// one -- existing allocations never move.
struct flick_arena {
  uint8_t *base = nullptr; ///< current block
  size_t cap = 0;
  size_t used = 0;
  void *retired = nullptr; ///< older, still-live blocks (freed on reset)
};

void flick_arena_destroy(flick_arena *a);
void *flick_arena_grow_alloc(flick_arena *a, size_t n);

inline void *flick_arena_alloc(flick_arena *a, size_t n) {
  // Null arena means "no scratch storage available": fall back to malloc.
  if (!a)
    return std::malloc(n ? n : 1);
  size_t aligned = (a->used + 15) & ~static_cast<size_t>(15);
  if (aligned + n <= a->cap) {
    a->used = aligned + n;
    return a->base + aligned;
  }
  return flick_arena_grow_alloc(a, n);
}

/// Out-of-line: releases retired blocks, keeps the (largest) current one.
void flick_arena_reset(flick_arena *a);

//===----------------------------------------------------------------------===//
// Client and server objects
//===----------------------------------------------------------------------===//

/// Client-side state for one connection: the channel plus reused request
/// and reply buffers.  `endpoint` (flick_endpoint_intern) tags this
/// client's RPC spans so latency anatomy attributes per endpoint; 0 (the
/// default) groups everything under "default".
struct flick_client {
  flick_channel *chan = nullptr;
  flick_buf req;
  flick_buf rep;
  uint32_t next_xid = 1;
  uint32_t endpoint = 0;
};

void flick_client_init(flick_client *c, flick_channel *chan);
void flick_client_destroy(flick_client *c);

void flick_channel_release(flick_channel *ch, flick_buf *buf);

/// Resets and returns the reused request buffer.  The previous reply's
/// bytes are dead by now (the caller decoded them before starting a new
/// call), so the reply buffer's adopted wire storage is handed back to
/// the transport first -- the server's next reply refills the same hot
/// allocation instead of ping-ponging between two.
inline flick_buf *flick_client_begin(flick_client *c) {
  flick_channel_release(c->chan, &c->rep);
  flick_buf_reset(&c->req);
  return &c->req;
}

/// Sends the request buffer and blocks for the reply (into c->rep).
int flick_client_invoke(flick_client *c);

/// Sends the request buffer without expecting a reply.
int flick_client_send_oneway(flick_client *c);

//===----------------------------------------------------------------------===//
// Async pipelined client
//===----------------------------------------------------------------------===//
//
// Keeps up to `window` requests in flight on one connection.  Each submit
// stamps a fresh nonzero correlation id that rides *out of band* next to
// the trace context (transport Msg / SocketLink frame header -- DESIGN.md
// §15), so the CDR payload bytes are identical to the synchronous stubs'.
// The server end echoes the request's id onto its reply; the client-side
// demultiplexer (the pump inside wait/drain/blocking-submit) receives
// replies in whatever order they arrive and completes the matching call.
// Replies matching no pending call are dropped and counted (corr_drops).

struct flick_call;

/// Completion callback, run on the pumping thread the moment the call's
/// reply (or a transport failure) lands.  The call is already off the
/// pending list; releasing it from inside the callback is legal.
typedef void (*flick_call_fn)(flick_call *call, void *ctx);

/// One in-flight (or completed, not-yet-released) pipelined call.  Slots
/// have stable addresses and are recycled through a free list; the window
/// bounds calls *in flight*, so a completed-but-unreleased handle costs an
/// extra slot rather than wedging a blocking submit.
struct flick_call {
  uint64_t id = 0;        ///< correlation id (unique per client, nonzero)
  int status = FLICK_OK;  ///< completion status; valid once done
  int done = 0;           ///< reply landed or the call failed
  flick_buf rep;          ///< reply payload once done (adopted wire storage)
  uint64_t submit_ns = 0; ///< per-call submit stamp: rpc_latency stays
                          ///< correct under out-of-order completion
  flick_call_fn on_complete = nullptr;
  void *ctx = nullptr;
  flick_call *next = nullptr; ///< intrusive pending/free list
};

/// Tuning knobs for flick_async_client_init (null means all defaults).
struct flick_async_opts {
  uint32_t window = 16;  ///< max two-way calls in flight
  int fail_fast = 0;     ///< full window: FLICK_ERR_WOULD_BLOCK, don't pump
  uint32_t cork_max = 64;///< corked oneways per batch before auto-flush
                         ///< (bounded well under IOV_MAX)
};

/// Client-side state for one pipelined connection.  Single-threaded like
/// flick_client: submits and pumps happen on one thread (the channel's
/// thread contract); concurrency comes from many requests in flight, not
/// from many threads sharing a client.
struct flick_async_client {
  flick_channel *chan = nullptr;
  flick_buf req;         ///< staging buffer for the next submit/oneway
  uint32_t endpoint = 0; ///< trace/anatomy tag, as in flick_client
  uint32_t window = 0;
  int fail_fast = 0;
  uint32_t inflight = 0; ///< two-way calls currently pending
  uint64_t next_id = 0;  ///< last correlation id issued
  void *impl = nullptr;  ///< call slots, pending/free lists, cork state
};

/// Allocates the call-slot arena and cork state.  Returns FLICK_OK or
/// FLICK_ERR_ALLOC.
int flick_async_client_init(flick_async_client *c, flick_channel *chan,
                            const flick_async_opts *opts = nullptr);

/// Destroys all slots and buffers.  Safe with calls still in flight (their
/// replies, if any ever arrive, die with the connection); prefer
/// flick_async_drain first when the transport is still up.
void flick_async_client_destroy(flick_async_client *c);

/// Resets and returns the reused request staging buffer; marshal the next
/// request into it, then submit or oneway it.
flick_buf *flick_async_begin(flick_async_client *c);

/// Sends the staged request with a fresh correlation id and returns its
/// handle in *out.  When the window is full: pumps completions until a
/// slot frees (default), or fails with FLICK_ERR_WOULD_BLOCK (fail_fast) --
/// either way one window_stalls gauge event is recorded.  The staging
/// buffer is reusable as soon as this returns.
int flick_async_submit(flick_async_client *c, flick_call **out,
                       flick_call_fn on_complete = nullptr,
                       void *ctx = nullptr);

/// Pumps replies until \p call completes; other calls completing meanwhile
/// are demultiplexed to their own handles (and callbacks) as a side effect.
/// Returns the call's status.
int flick_async_wait(flick_async_client *c, flick_call *call);

/// Flushes corked oneways, then pumps until no two-way call is pending.
/// Returns the first error seen (pending calls are still all completed --
/// with FLICK_ERR_TRANSPORT -- when the transport dies mid-drain).
int flick_async_drain(flick_async_client *c);

/// Returns a completed call's slot (and its reply storage) to the client
/// for reuse.  Must not be called on a call still in flight.
void flick_async_release(flick_async_client *c, flick_call *call);

/// Corks the staged request as a oneway: the bytes are staged into the
/// batch arena and nothing is sent until flush (or until cork_max oneways
/// accumulate).  Cheap calls coalesce into one sendv/sendmsg on the wire.
int flick_async_oneway(flick_async_client *c);

/// Sends every corked oneway as ONE batch (a single sendmsg on
/// SocketLink).  No-op when nothing is corked.
int flick_async_flush(flick_async_client *c);

struct flick_server;

/// A generated dispatch function: consumes the request, fills the reply.
/// Returns FLICK_OK when a reply should be sent (including exceptional
/// replies), FLICK_ERR_NO_SUCH_OP / FLICK_ERR_DECODE on protocol errors.
typedef int (*flick_dispatch_fn)(flick_server *srv, flick_buf *req,
                                 flick_buf *rep);

/// Server-side state: channel, reused buffers, scratch arena, and the
/// dispatch function produced by the back end.
struct flick_server {
  flick_channel *chan = nullptr;
  flick_dispatch_fn dispatch = nullptr;
  void *impl = nullptr; ///< opaque hook for servant state
  flick_buf req;
  flick_buf rep;
  flick_arena arena;
};

void flick_server_init(flick_server *s, flick_channel *chan,
                       flick_dispatch_fn dispatch);
void flick_server_destroy(flick_server *s);

/// Receives one request, dispatches it, sends the reply (if any).
/// Returns FLICK_OK, or FLICK_ERR_TRANSPORT when the channel is drained.
int flick_server_handle_one(flick_server *s);

//===----------------------------------------------------------------------===//
// Worker-pool server dispatch (threaded runtime)
//===----------------------------------------------------------------------===//

/// A pool of N server worker threads draining one Transport (threaded,
/// sharded, or socket -- see runtime/transport/Transport.h): each worker
/// loops flick_server_handle_one over its own worker channel with its
/// own flick_server (request/reply buffers, scratch arena) and its own
/// wire-buffer pool, so the only shared state on the hot path is the
/// transport's request path.  When the thread calling
/// flick_server_pool_start has metrics (or tracing) enabled, every worker
/// collects into a private per-thread block (or span ring) and stop()
/// merges them back into the starting thread's block, so dumps show the
/// whole pool's traffic with exact counts.
struct flick_server_pool {
  void *impl = nullptr; ///< opaque pool state; null when not running
};

/// Starts \p workers dispatch threads on \p link.  \p impl_hook is stored
/// as each worker server's `impl`; servant state reached through it is
/// shared across workers and must be thread-safe.  Returns FLICK_OK, or
/// FLICK_ERR_ALLOC when the pool is already running or \p workers is 0.
int flick_server_pool_start(flick_server_pool *p, flick::Transport *link,
                            flick_dispatch_fn dispatch, unsigned workers,
                            void *impl_hook = nullptr);

/// Shuts the link down (workers finish every already-queued request
/// first), joins the worker threads, and merges per-worker telemetry into
/// the blocks that were active when start was called.  Call from the
/// starting thread, after client traffic has stopped; calling on a
/// stopped pool is a no-op.
void flick_server_pool_stop(flick_server_pool *p);

/// Worker-thread count of a running pool; 0 before start / after stop.
unsigned flick_server_pool_workers(const flick_server_pool *p);

//===----------------------------------------------------------------------===//
// Object references and the CORBA C-mapping environment
//===----------------------------------------------------------------------===//

/// A client-side object reference; CORBA-presentation object types are
/// `typedef flick_obj *<Interface>;`.
struct flick_obj {
  flick_client *client = nullptr;
};

#ifndef FLICK_CORBA_ENV_DEFINED
#define FLICK_CORBA_ENV_DEFINED
enum {
  CORBA_NO_EXCEPTION = 0,
  CORBA_USER_EXCEPTION = 1,
  CORBA_SYSTEM_EXCEPTION = 2,
};

/// The CORBA C mapping's environment parameter.  On a user exception the
/// stub stores the wire exception code and a heap-allocated copy of the
/// exception members (caller frees with free()).
typedef struct CORBA_Environment {
  uint32_t _major;
  uint32_t _exc_code;
  void *_exc_value;
} CORBA_Environment;

inline void CORBA_exception_free(CORBA_Environment *ev) {
  std::free(ev->_exc_value);
  ev->_exc_value = nullptr;
  ev->_major = CORBA_NO_EXCEPTION;
  ev->_exc_code = 0;
}
#endif // FLICK_CORBA_ENV_DEFINED

//===----------------------------------------------------------------------===//
// Channel C shims (implemented in Channel.cpp)
//===----------------------------------------------------------------------===//

int flick_channel_send(flick_channel *ch, const uint8_t *data, size_t len);
/// Sends one message given as \p count scatter-gather segments.  The
/// segments are only borrowed for the duration of the call.
int flick_channel_sendv(flick_channel *ch, const flick_iov *segs,
                        size_t count);
/// Receives one message into \p into (reset first).  Returns FLICK_OK or
/// FLICK_ERR_TRANSPORT.
int flick_channel_recv(flick_channel *ch, flick_buf *into);
/// Tells the transport \p buf's contents are dead so adopted wire storage
/// can return to the buffer pool early (see Channel::release).  Declared
/// above flick_client_begin, which uses it.
void flick_channel_release(flick_channel *ch, flick_buf *buf);

#endif // FLICK_RUNTIME_FLICK_RUNTIME_H
