//===- runtime/Naive.cpp - rpcgen-style per-datum primitives --------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Out-of-line per-datum marshal functions used by the baseline (naive)
/// back end.  Each call re-checks buffer space and bumps a cursor --
/// exactly the per-datum overhead Flick's chunked stubs eliminate.  The
/// noinline attribute keeps the comparison honest under LTO-ish inlining.
///
//===----------------------------------------------------------------------===//

#include "runtime/flick_runtime.h"

#define FLICK_NOINLINE __attribute__((noinline))

FLICK_NOINLINE int flick_naive_put_u8(flick_buf *b, uint8_t v) {
  if (int err = flick_buf_ensure(b, 1))
    return err;
  b->data[b->len++] = v;
  return FLICK_OK;
}

FLICK_NOINLINE int flick_naive_put_u16(flick_buf *b, uint16_t v,
                                       int bigendian) {
  if (int err = flick_buf_ensure(b, 2))
    return err;
  if (bigendian)
    flick_enc_u16be(b->data + b->len, v);
  else
    flick_enc_u16le(b->data + b->len, v);
  b->len += 2;
  return FLICK_OK;
}

FLICK_NOINLINE int flick_naive_put_u32(flick_buf *b, uint32_t v,
                                       int bigendian) {
  if (int err = flick_buf_ensure(b, 4))
    return err;
  if (bigendian)
    flick_enc_u32be(b->data + b->len, v);
  else
    flick_enc_u32le(b->data + b->len, v);
  b->len += 4;
  return FLICK_OK;
}

FLICK_NOINLINE int flick_naive_put_u64(flick_buf *b, uint64_t v,
                                       int bigendian) {
  if (int err = flick_buf_ensure(b, 8))
    return err;
  if (bigendian)
    flick_enc_u64be(b->data + b->len, v);
  else
    flick_enc_u64le(b->data + b->len, v);
  b->len += 8;
  return FLICK_OK;
}

FLICK_NOINLINE int flick_naive_put_pad(flick_buf *b, size_t align) {
  return flick_buf_align_write(b, align);
}

FLICK_NOINLINE int flick_naive_get_u8(flick_buf *b, uint8_t *v) {
  if (!flick_buf_check(b, 1))
    return FLICK_ERR_DECODE;
  *v = b->data[b->pos++];
  return FLICK_OK;
}

FLICK_NOINLINE int flick_naive_get_u16(flick_buf *b, uint16_t *v,
                                       int bigendian) {
  if (!flick_buf_check(b, 2))
    return FLICK_ERR_DECODE;
  *v = bigendian ? flick_dec_u16be(b->data + b->pos)
                 : flick_dec_u16le(b->data + b->pos);
  b->pos += 2;
  return FLICK_OK;
}

FLICK_NOINLINE int flick_naive_get_u32(flick_buf *b, uint32_t *v,
                                       int bigendian) {
  if (!flick_buf_check(b, 4))
    return FLICK_ERR_DECODE;
  *v = bigendian ? flick_dec_u32be(b->data + b->pos)
                 : flick_dec_u32le(b->data + b->pos);
  b->pos += 4;
  return FLICK_OK;
}

FLICK_NOINLINE int flick_naive_get_u64(flick_buf *b, uint64_t *v,
                                       int bigendian) {
  if (!flick_buf_check(b, 8))
    return FLICK_ERR_DECODE;
  *v = bigendian ? flick_dec_u64be(b->data + b->pos)
                 : flick_dec_u64le(b->data + b->pos);
  b->pos += 8;
  return FLICK_OK;
}

FLICK_NOINLINE int flick_naive_get_pad(flick_buf *b, size_t align) {
  return flick_buf_align_read(b, align);
}
