//===- runtime/Interp.cpp - Interpretive marshaler baseline ---------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "runtime/Interp.h"
#include "runtime/Specialize.h"
#include <cstring>

using namespace flick;

InterpType InterpType::scalar(size_t Off, unsigned Width, bool IsFloat) {
  InterpType T;
  T.K = Kind::Scalar;
  T.Offset = Off;
  T.Width = Width;
  T.IsFloat = IsFloat;
  return T;
}

InterpType InterpType::bytes(size_t Off, size_t Count) {
  InterpType T;
  T.K = Kind::Bytes;
  T.Offset = Off;
  T.Count = Count;
  return T;
}

InterpType InterpType::cstring(size_t Off) {
  InterpType T;
  T.K = Kind::CString;
  T.Offset = Off;
  return T;
}

InterpType InterpType::structOf(std::vector<InterpType> Fields) {
  InterpType T;
  T.K = Kind::Struct;
  T.Fields = std::move(Fields);
  return T;
}

InterpType InterpType::fixedArray(size_t Off, const InterpType *Elem,
                                  size_t Count, size_t HostStride) {
  InterpType T;
  T.K = Kind::FixedArray;
  T.Offset = Off;
  T.Elem = Elem;
  T.Count = Count;
  T.HostStride = HostStride;
  return T;
}

InterpType InterpType::counted(size_t LenOff, size_t BufOff,
                               const InterpType *Elem, size_t HostStride) {
  InterpType T;
  T.K = Kind::Counted;
  T.LenOffset = LenOff;
  T.BufOffset = BufOff;
  T.Elem = Elem;
  T.HostStride = HostStride;
  return T;
}

namespace {

unsigned wireWidth(const InterpWire &W, unsigned Width) {
  return W.XdrWidening && Width < 4 ? 4 : Width;
}

int putScalar(flick_buf *B, const InterpWire &W, unsigned Width,
              const uint8_t *Src) {
  unsigned WW = wireWidth(W, Width);
  if (int Err = flick_buf_ensure(B, WW))
    return Err;
  uint8_t *P = flick_buf_grab_raw(B, WW);
  uint64_t V = 0;
  std::memcpy(&V, Src, Width);
  // Sign extension is unnecessary: decode truncates back to Width.
  switch (WW) {
  case 1:
    flick_enc_u8(P, static_cast<uint8_t>(V));
    break;
  case 2:
    if (W.BigEndian)
      flick_enc_u16be(P, static_cast<uint16_t>(V));
    else
      flick_enc_u16le(P, static_cast<uint16_t>(V));
    break;
  case 4:
    if (W.BigEndian)
      flick_enc_u32be(P, static_cast<uint32_t>(V));
    else
      flick_enc_u32le(P, static_cast<uint32_t>(V));
    break;
  default:
    if (W.BigEndian)
      flick_enc_u64be(P, V);
    else
      flick_enc_u64le(P, V);
    break;
  }
  return FLICK_OK;
}

int getScalar(flick_buf *B, const InterpWire &W, unsigned Width,
              uint8_t *Dst) {
  unsigned WW = wireWidth(W, Width);
  if (!flick_buf_check(B, WW))
    return FLICK_ERR_DECODE;
  const uint8_t *P = flick_buf_take_raw(B, WW);
  uint64_t V = 0;
  switch (WW) {
  case 1:
    V = flick_dec_u8(P);
    break;
  case 2:
    V = W.BigEndian ? flick_dec_u16be(P) : flick_dec_u16le(P);
    break;
  case 4:
    V = W.BigEndian ? flick_dec_u32be(P) : flick_dec_u32le(P);
    break;
  default:
    V = W.BigEndian ? flick_dec_u64be(P) : flick_dec_u64le(P);
    break;
  }
  std::memcpy(Dst, &V, Width);
  return FLICK_OK;
}

int putU32(flick_buf *B, const InterpWire &W, uint32_t V) {
  return putScalar(B, W, 4, reinterpret_cast<const uint8_t *>(&V));
}

int getU32(flick_buf *B, const InterpWire &W, uint32_t *V) {
  return getScalar(B, W, 4, reinterpret_cast<uint8_t *>(V));
}

int pad4(flick_buf *B, const InterpWire &W, bool Encode) {
  if (!W.XdrWidening)
    return FLICK_OK;
  return Encode ? flick_buf_align_write(B, 4) : flick_buf_align_read(B, 4);
}

// The recursive cores use the raw (non-accounting) cursor ops; the public
// entry points charge bytes_copied/copy_ops once per call so
// copies_per_rpc is on the same basis as compiled stubs and the
// specializer.

int encodeNode(flick_buf *Buf, const InterpType &T, const void *Val,
               const InterpWire &W) {
  flick_metric_add(&flick_metrics::interp_encodes, 1);
  flick_metric_add(&flick_metrics::interp_dispatches, 1);
  const uint8_t *V = static_cast<const uint8_t *>(Val);
  switch (T.K) {
  case InterpType::Kind::Scalar:
    return putScalar(Buf, W, T.Width, V + T.Offset);
  case InterpType::Kind::Bytes: {
    if (int Err = flick_buf_ensure(Buf, T.Count))
      return Err;
    std::memcpy(flick_buf_grab_raw(Buf, T.Count), V + T.Offset, T.Count);
    return pad4(Buf, W, true);
  }
  case InterpType::Kind::CString: {
    const char *S = *reinterpret_cast<const char *const *>(V + T.Offset);
    if (!S)
      S = "";
    size_t Len = std::strlen(S);
    size_t WireLen = Len + (W.XdrWidening ? 0 : 1); // CDR counts the NUL
    if (int Err = putU32(Buf, W, static_cast<uint32_t>(WireLen)))
      return Err;
    if (int Err = flick_buf_ensure(Buf, WireLen))
      return Err;
    std::memcpy(flick_buf_grab_raw(Buf, WireLen), S, WireLen);
    return pad4(Buf, W, true);
  }
  case InterpType::Kind::Struct:
    for (const InterpType &F : T.Fields)
      if (int Err = encodeNode(Buf, F, V, W))
        return Err;
    return FLICK_OK;
  case InterpType::Kind::FixedArray: {
    const uint8_t *Base = V + T.Offset;
    for (size_t I = 0; I != T.Count; ++I)
      if (int Err = encodeNode(Buf, *T.Elem, Base + I * T.HostStride, W))
        return Err;
    return FLICK_OK;
  }
  case InterpType::Kind::Counted: {
    uint32_t Len;
    std::memcpy(&Len, V + T.LenOffset, 4);
    const uint8_t *Base =
        *reinterpret_cast<const uint8_t *const *>(V + T.BufOffset);
    if (int Err = putU32(Buf, W, Len))
      return Err;
    for (uint32_t I = 0; I != Len; ++I)
      if (int Err = encodeNode(Buf, *T.Elem, Base + I * T.HostStride, W))
        return Err;
    return FLICK_OK;
  }
  }
  return FLICK_ERR_DECODE;
}

int decodeNode(flick_buf *Buf, const InterpType &T, void *Val,
               const InterpWire &W, flick_arena *Ar) {
  flick_metric_add(&flick_metrics::interp_decodes, 1);
  flick_metric_add(&flick_metrics::interp_dispatches, 1);
  uint8_t *V = static_cast<uint8_t *>(Val);
  switch (T.K) {
  case InterpType::Kind::Scalar:
    return getScalar(Buf, W, T.Width, V + T.Offset);
  case InterpType::Kind::Bytes: {
    if (!flick_buf_check(Buf, T.Count))
      return FLICK_ERR_DECODE;
    std::memcpy(V + T.Offset, flick_buf_take_raw(Buf, T.Count), T.Count);
    return pad4(Buf, W, false);
  }
  case InterpType::Kind::CString: {
    uint32_t WireLen;
    if (int Err = getU32(Buf, W, &WireLen))
      return Err;
    if (!flick_buf_check(Buf, WireLen))
      return FLICK_ERR_DECODE;
    char *S = static_cast<char *>(flick_arena_alloc(Ar, WireLen + 1));
    if (!S)
      return FLICK_ERR_ALLOC;
    std::memcpy(S, flick_buf_take_raw(Buf, WireLen), WireLen);
    S[WireLen] = '\0';
    *reinterpret_cast<char **>(V + T.Offset) = S;
    return pad4(Buf, W, false);
  }
  case InterpType::Kind::Struct:
    for (const InterpType &F : T.Fields)
      if (int Err = decodeNode(Buf, F, V, W, Ar))
        return Err;
    return FLICK_OK;
  case InterpType::Kind::FixedArray: {
    uint8_t *Base = V + T.Offset;
    for (size_t I = 0; I != T.Count; ++I)
      if (int Err = decodeNode(Buf, *T.Elem, Base + I * T.HostStride, W, Ar))
        return Err;
    return FLICK_OK;
  }
  case InterpType::Kind::Counted: {
    uint32_t Len;
    if (int Err = getU32(Buf, W, &Len))
      return Err;
    if (Len > (1u << 28))
      return FLICK_ERR_DECODE;
    uint8_t *Base = static_cast<uint8_t *>(
        flick_arena_alloc(Ar, (size_t(Len) + 1) * T.HostStride));
    if (!Base)
      return FLICK_ERR_ALLOC;
    for (uint32_t I = 0; I != Len; ++I)
      if (int Err = decodeNode(Buf, *T.Elem, Base + I * T.HostStride, W, Ar))
        return Err;
    std::memcpy(V + T.LenOffset, &Len, 4);
    *reinterpret_cast<uint8_t **>(V + T.BufOffset) = Base;
    return FLICK_OK;
  }
  }
  return FLICK_ERR_DECODE;
}

} // namespace

int flick::flick_interp_encode(flick_buf *Buf, const InterpType &T,
                               const void *Val, const InterpWire &W,
                               bool Specialize) {
  if (Specialize)
    if (const flick_spec_program *P = flick_specialize(T, W))
      return flick_spec_encode(Buf, P, Val);
  size_t Len0 = Buf->len;
  int Err = encodeNode(Buf, T, Val, W);
  if (flick_metrics_active) {
    flick_metrics_active->bytes_copied += Buf->len - Len0;
    ++flick_metrics_active->copy_ops;
  }
  return Err;
}

int flick::flick_interp_decode(flick_buf *Buf, const InterpType &T,
                               void *Val, const InterpWire &W,
                               flick_arena *Ar, bool Specialize) {
  if (Specialize)
    if (const flick_spec_program *P = flick_specialize(T, W))
      return flick_spec_decode(Buf, P, Val, Ar);
  size_t Pos0 = Buf->pos;
  int Err = decodeNode(Buf, T, Val, W, Ar);
  if (flick_metrics_active) {
    flick_metrics_active->bytes_copied += Buf->pos - Pos0;
    ++flick_metrics_active->copy_ops;
  }
  return Err;
}
