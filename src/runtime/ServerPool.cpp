//===- runtime/ServerPool.cpp - Worker-pool server dispatch ---------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// flick_server_pool: N dispatch threads draining one Transport (mutex
/// queue, lock-free rings, or Unix sockets -- the pool is agnostic).
/// Each worker owns a full flick_server (reused request/reply buffers,
/// scratch arena) on its own worker channel, plus private telemetry
/// blocks that the stopping thread merges after join() -- the join
/// provides the happens-before edge, so no merge lock exists anywhere.
///
//===----------------------------------------------------------------------===//

#include "runtime/transport/Transport.h"
#include "runtime/Sampler.h"
#include "runtime/flick_runtime.h"
#include <memory>
#include <thread>
#include <vector>

namespace {

/// One worker slot: server state, the thread, and its telemetry.
struct PoolWorker {
  flick_server Srv;
  flick_metrics Metrics;
  flick_tracer Tracer;
  std::vector<flick_span> Spans;
  std::thread Thread;
};

struct PoolImpl {
  flick::Transport *Link = nullptr;
  /// Telemetry blocks that were active on the starting thread; per-worker
  /// blocks merge into these on stop.  Null means "collection off" and the
  /// workers run with telemetry disabled too.
  flick_metrics *MergeInto = nullptr;
  flick_tracer *AbsorbInto = nullptr;
  std::vector<std::unique_ptr<PoolWorker>> Workers;
};

void workerMain(PoolImpl *P, PoolWorker *W) {
  if (P->MergeInto)
    flick_metrics_enable(&W->Metrics);
  if (P->AbsorbInto)
    flick_trace_enable_thread(&W->Tracer, W->Spans.data(),
                              static_cast<uint32_t>(W->Spans.size()));
  flick_gauge_add(&flick_gauges::workers_running, 1);
  for (;;) {
    int Err = flick_server_handle_one(&W->Srv);
    // Transport failure means the link is shut down and drained; anything
    // else (decode/demux errors) is per-request and already counted.
    if (Err == FLICK_ERR_TRANSPORT)
      break;
  }
  // The loop always ends with exactly one failed receive -- the link going
  // down is clean shutdown, not a transport fault -- so take that count
  // back out to keep merged error totals exact.
  if (P->MergeInto && W->Metrics.transport_errors)
    --W->Metrics.transport_errors;
  flick_gauge_sub(&flick_gauges::workers_running, 1);
  flick_trace_disable();
  flick_metrics_disable();
}

} // namespace

int flick_server_pool_start(flick_server_pool *p, flick::Transport *link,
                            flick_dispatch_fn dispatch, unsigned workers,
                            void *impl_hook) {
  if (p->impl || !link || !dispatch || workers == 0)
    return FLICK_ERR_ALLOC;
  auto *P = new PoolImpl;
  P->Link = link;
  P->MergeInto = flick_metrics_active;
  P->AbsorbInto = flick_trace_active;
  for (unsigned I = 0; I != workers; ++I) {
    auto W = std::unique_ptr<PoolWorker>(new PoolWorker);
    flick_server_init(&W->Srv, &link->workerEnd(), dispatch);
    W->Srv.impl = impl_hook;
    // Mirror the starting thread's ring capacity so a pool's worth of
    // spans survives absorption at the same retention the caller chose.
    if (P->AbsorbInto)
      W->Spans.resize(P->AbsorbInto->cap ? P->AbsorbInto->cap : 1);
    P->Workers.push_back(std::move(W));
  }
  for (auto &W : P->Workers)
    W->Thread = std::thread(workerMain, P, W.get());
  p->impl = P;
  return FLICK_OK;
}

void flick_server_pool_stop(flick_server_pool *p) {
  auto *P = static_cast<PoolImpl *>(p->impl);
  if (!P)
    return;
  P->Link->shutdown();
  for (auto &W : P->Workers)
    W->Thread.join();
  // Joined workers are quiescent: their blocks can be read without locks.
  for (auto &W : P->Workers) {
    if (P->MergeInto)
      flick_metrics_merge(P->MergeInto, &W->Metrics);
    if (P->AbsorbInto)
      flick_trace_absorb(P->AbsorbInto, &W->Tracer);
    flick_server_destroy(&W->Srv);
  }
  delete P;
  p->impl = nullptr;
}

unsigned flick_server_pool_workers(const flick_server_pool *p) {
  auto *P = static_cast<const PoolImpl *>(p->impl);
  return P ? static_cast<unsigned>(P->Workers.size()) : 0;
}
