//===- runtime/Interp.h - Interpretive marshaler baseline -------*- C++ -*-===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A type-program interpreter in the style of ILU and the SunSoft IIOP
/// engine (paper §5): instead of compiled stubs, a runtime walks a
/// description of the C type -- one dynamic dispatch per field -- and
/// converts to/from wire format.  This is the "interpreted stubs" point in
/// the design space that Figure 3's ORBeline/ILU rows represent.
///
//===----------------------------------------------------------------------===//

#ifndef FLICK_RUNTIME_INTERP_H
#define FLICK_RUNTIME_INTERP_H

#include "runtime/flick_runtime.h"
#include <cstddef>
#include <vector>

namespace flick {

/// A node in the type program.  Offsets are into the presented C value.
struct InterpType {
  enum class Kind {
    Scalar,     ///< integer/float of Width bytes at Offset
    Bytes,      ///< Count raw bytes at Offset (char/octet arrays)
    Struct,     ///< fields at offsets
    FixedArray, ///< Count elements of Elem, HostStride apart
    Counted,    ///< {u32 len at LenOffset; T *buf at BufOffset}
    CString,    ///< NUL-terminated char* at Offset
  };

  Kind K = Kind::Scalar;
  size_t Offset = 0;

  // Scalar
  unsigned Width = 4;      ///< 1/2/4/8
  bool IsFloat = false;

  // Bytes / FixedArray / Counted
  size_t Count = 0;
  size_t HostStride = 0;
  const InterpType *Elem = nullptr;

  // Struct
  std::vector<InterpType> Fields;

  // Counted
  size_t LenOffset = 0;
  size_t BufOffset = 0;

  // --- convenience constructors ---
  static InterpType scalar(size_t Off, unsigned Width, bool IsFloat = false);
  static InterpType bytes(size_t Off, size_t Count);
  static InterpType cstring(size_t Off);
  static InterpType structOf(std::vector<InterpType> Fields);
  static InterpType fixedArray(size_t Off, const InterpType *Elem,
                               size_t Count, size_t HostStride);
  static InterpType counted(size_t LenOff, size_t BufOff,
                            const InterpType *Elem, size_t HostStride);
};

/// Wire conventions for the interpreter.
struct InterpWire {
  bool BigEndian = true;   ///< XDR; false = CDR-LE
  bool XdrWidening = true; ///< pad every item to 4 bytes (XDR)
};

/// Encodes the C value \p Val described by \p T into \p Buf.  With
/// \p Specialize set, routes through the runtime specializer
/// (runtime/Specialize.h): the type program is compiled to threaded code
/// on first use and cached; unspecializable trees fall back to the
/// interpreter transparently.  Wire output is byte-identical either way.
int flick_interp_encode(flick_buf *Buf, const InterpType &T,
                        const void *Val, const InterpWire &W,
                        bool Specialize = false);

/// Decodes from \p Buf into the C value \p Val (pointer members are heap
/// allocated, or arena-allocated when \p Ar is non-null).  \p Specialize
/// as for flick_interp_encode.
int flick_interp_decode(flick_buf *Buf, const InterpType &T, void *Val,
                        const InterpWire &W, flick_arena *Ar,
                        bool Specialize = false);

} // namespace flick

#endif // FLICK_RUNTIME_INTERP_H
