//===- driver/flickc.cpp - The Flick IDL compiler driver ------------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flickc command line: choose a front end, a presentation generator,
/// and a back end (the paper's "mix and match components at IDL
/// compilation time"), then write the generated header and client/server
/// sources.
///
//===----------------------------------------------------------------------===//

#include "backends/Backend.h"
#include "frontends/corba/CorbaFrontEnd.h"
#include "frontends/mig/MigFrontEnd.h"
#include "frontends/oncrpc/OncFrontEnd.h"
#include "presgen/PresGen.h"
#include "support/Diagnostics.h"
#include "support/Stats.h"
#include "support/StringExtras.h"
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace flick;

namespace {

/// When --stats is on: the instant collection started, so the root region
/// can report total wall time.
std::chrono::steady_clock::time_point StatsStart;

struct DriverOptions {
  std::string Input;
  std::string Idl;        // corba | oncrpc (default from extension)
  std::string Pres;       // corba | rpcgen | fluke
  std::string BackendTag; // xdr | iiop | naive | mach | fluke | mig
  std::string OutputBase; // directory/basename
  std::string Prefix;
  std::string SrcExt = "cc";
  bool PresStringLen = false;
  BackendOptions BOpts;
  bool EmitAoi = false;
  bool EmitPresC = false;
  bool PrintPasses = false;
  /// Where --stats JSON goes: empty = stats off, "-" = stderr.
  std::string StatsPath;
  /// Where --trace Chrome trace-event JSON goes: empty = off, "-" =
  /// stderr.  Implies stats collection (it re-emits the region tree).
  std::string TracePath;
};

void usage() {
  std::fprintf(
      stderr,
      "usage: flickc [options] <input.idl|input.x>\n"
      "  -i, --idl <corba|oncrpc>      front end (default: by extension)\n"
      "  -p, --pres <corba|rpcgen|fluke>  presentation generator\n"
      "  -b, --backend <xdr|iiop|naive|mach|fluke|mig>  back end\n"
      "  -o, --output <dir/base>       output basename\n"
      "      --prefix <p>              prefix for generated identifiers\n"
      "      --src-ext <cc|c>          source-file extension (default cc)\n"
      "      --emit-aoi                dump the AOI and stop\n"
      "      --emit-presc              dump the PRES_C and stop\n"
      "      --dump-marshal-plan       dump per-operation marshal plans\n"
      "                                (before/after passes) and stop\n"
      "      --passes <list>           select optimization passes: comma-\n"
      "                                separated all, none, <name>, +<name>,\n"
      "                                -<name> applied left to right\n"
      "      --print-passes            list the registered passes and stop\n"
      "      --no-inline --no-memcpy --no-chunk --no-scratch --no-alias\n"
      "                                disable individual optimizations\n"
      "                                (aliases for --passes=-<name>)\n"
      "      --threshold <bytes>       bounded-segment threshold\n"
      "      --gather-min-bytes <n>    enable the gather pass: bulk encode\n"
      "                                copies of >= n bytes become\n"
      "                                by-reference scatter-gather segments\n"
      "                                (default: off, stubs unchanged)\n"
      "      --stats[=out.json]        record per-phase wall time and IR\n"
      "                                counters; write JSON to the given\n"
      "                                file (stderr when omitted)\n"
      "      --trace[=out.json]        write the phase timeline as Chrome\n"
      "                                trace-event JSON (chrome://tracing,\n"
      "                                Perfetto); stderr when omitted\n"
      "      --trace-hooks             bracket generated stubs with\n"
      "                                flick_span_begin/end tracing hooks\n"
      "                                (default: off, stubs unchanged)\n");
}

bool parseArgs(int Argc, char **Argv, DriverOptions &O) {
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "flickc: missing value for %s\n", A.c_str());
        return nullptr;
      }
      return Argv[++I];
    };
    if (A == "-i" || A == "--idl") {
      const char *V = Next();
      if (!V)
        return false;
      O.Idl = V;
    } else if (A == "-p" || A == "--pres") {
      const char *V = Next();
      if (!V)
        return false;
      O.Pres = V;
    } else if (A == "-b" || A == "--backend") {
      const char *V = Next();
      if (!V)
        return false;
      O.BackendTag = V;
    } else if (A == "-o" || A == "--output") {
      const char *V = Next();
      if (!V)
        return false;
      O.OutputBase = V;
    } else if (A == "--prefix") {
      const char *V = Next();
      if (!V)
        return false;
      O.Prefix = V;
    } else if (A == "--src-ext") {
      const char *V = Next();
      if (!V)
        return false;
      O.SrcExt = V;
    } else if (A == "--emit-aoi") {
      O.EmitAoi = true;
    } else if (A == "--emit-presc") {
      O.EmitPresC = true;
    } else if (A == "--stats") {
      O.StatsPath = "-";
    } else if (A.rfind("--stats=", 0) == 0) {
      O.StatsPath = A.substr(std::strlen("--stats="));
      if (O.StatsPath.empty()) {
        std::fprintf(stderr, "flickc: missing value for --stats=\n");
        return false;
      }
    } else if (A == "--trace") {
      O.TracePath = "-";
    } else if (A.rfind("--trace=", 0) == 0) {
      O.TracePath = A.substr(std::strlen("--trace="));
      if (O.TracePath.empty()) {
        std::fprintf(stderr, "flickc: missing value for --trace=\n");
        return false;
      }
    } else if (A == "--trace-hooks") {
      O.BOpts.TraceHooks = true;
    } else if (A == "--string-len-params") {
      O.PresStringLen = true;
    } else if (A == "--passes" || A.rfind("--passes=", 0) == 0) {
      std::string Spec;
      if (A == "--passes") {
        const char *V = Next();
        if (!V)
          return false;
        Spec = V;
      } else {
        Spec = A.substr(std::strlen("--passes="));
      }
      if (Spec.empty()) {
        std::fprintf(stderr, "flickc: missing value for --passes\n");
        return false;
      }
      std::string Err;
      if (!parsePassList(Spec, O.BOpts, Err)) {
        std::fprintf(stderr, "flickc: %s\n", Err.c_str());
        return false;
      }
    } else if (A == "--print-passes") {
      O.PrintPasses = true;
    } else if (A == "--dump-marshal-plan") {
      O.BOpts.DumpPlans = true;
    } else if (A == "--no-inline" || A == "--no-memcpy" ||
               A == "--no-chunk" || A == "--no-scratch" ||
               A == "--no-alias") {
      // Legacy spellings; aliases for --passes=-<name>.
      std::string Err;
      parsePassList("-" + A.substr(std::strlen("--no-")), O.BOpts, Err);
    } else if (A == "--threshold") {
      const char *V = Next();
      if (!V)
        return false;
      O.BOpts.BoundedThreshold = std::strtoull(V, nullptr, 10);
    } else if (A == "--gather-min-bytes") {
      const char *V = Next();
      if (!V)
        return false;
      O.BOpts.GatherMinBytes = std::strtoull(V, nullptr, 10);
    } else if (A.rfind("--gather-min-bytes=", 0) == 0) {
      std::string V = A.substr(std::strlen("--gather-min-bytes="));
      if (V.empty()) {
        std::fprintf(stderr, "flickc: missing value for --gather-min-bytes=\n");
        return false;
      }
      O.BOpts.GatherMinBytes = std::strtoull(V.c_str(), nullptr, 10);
    } else if (A == "-h" || A == "--help") {
      usage();
      return false;
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "flickc: unknown option '%s'\n", A.c_str());
      usage();
      return false;
    } else {
      if (!O.Input.empty()) {
        std::fprintf(stderr, "flickc: multiple inputs not supported\n");
        return false;
      }
      O.Input = A;
    }
  }
  if (O.Input.empty() && !O.PrintPasses) {
    usage();
    return false;
  }
  // Defaults inferred from the input and each other.
  if (O.Idl.empty())
    O.Idl = endsWith(O.Input, ".x")      ? "oncrpc"
            : endsWith(O.Input, ".defs") ? "mig"
                                         : "corba";
  if (O.Pres.empty())
    O.Pres = O.Idl == "oncrpc" ? "rpcgen"
             : O.Idl == "mig"  ? "mig"
                               : "corba";
  if (O.BackendTag.empty())
    O.BackendTag = O.Pres == "corba"  ? "iiop"
                   : O.Pres == "mig"  ? "mach"
                                      : "xdr";
  if (O.OutputBase.empty()) {
    std::string Base = O.Input;
    size_t Slash = Base.find_last_of('/');
    if (Slash != std::string::npos)
      Base = Base.substr(Slash + 1);
    size_t Dot = Base.find_last_of('.');
    if (Dot != std::string::npos)
      Base = Base.substr(0, Dot);
    O.OutputBase = Base;
  }
  return true;
}

bool writeFile(const std::string &Path, const std::string &Contents) {
  std::ofstream Out(Path, std::ios::binary);
  if (!Out) {
    std::fprintf(stderr, "flickc: cannot write '%s'\n", Path.c_str());
    return false;
  }
  Out << Contents;
  return true;
}

/// Emits the collected --stats JSON when requested; returns false only
/// when the output file cannot be written.
bool dumpStats(const DriverOptions &O) {
  if ((O.StatsPath.empty() && O.TracePath.empty()) ||
      !Stats::get().enabled())
    return true;
  Stats::get().setTotalWallUs(
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - StatsStart)
          .count());
  bool OK = true;
  if (!O.StatsPath.empty()) {
    std::string Json = Stats::get().toJson();
    if (O.StatsPath == "-")
      std::fputs(Json.c_str(), stderr);
    else
      OK = writeFile(O.StatsPath, Json) && OK;
  }
  if (!O.TracePath.empty()) {
    std::string Json = Stats::get().toChromeTrace();
    if (O.TracePath == "-")
      std::fputs(Json.c_str(), stderr);
    else
      OK = writeFile(O.TracePath, Json) && OK;
  }
  return OK;
}

} // namespace

int main(int Argc, char **Argv) {
  DriverOptions O;
  if (!parseArgs(Argc, Argv, O))
    return 1;

  if (O.PrintPasses) {
    std::fputs(passCatalog().c_str(), stdout);
    return 0;
  }

  std::ifstream In(O.Input, std::ios::binary);
  if (!In) {
    std::fprintf(stderr, "flickc: cannot read '%s'\n", O.Input.c_str());
    return 1;
  }
  std::stringstream Ss;
  Ss << In.rdbuf();
  std::string Source = Ss.str();

  DiagnosticEngine Diags;

  if (!O.StatsPath.empty() || !O.TracePath.empty()) {
    StatsStart = std::chrono::steady_clock::now();
    Stats::get().setEnabled(true);
    Stats::get().reset();
    Stats::get().note("input", O.Input);
    Stats::get().note("idl", O.Idl);
    Stats::get().note("pres", O.Pres);
    Stats::get().note("backend", O.BackendTag);
    FLICK_STAT_COUNT("input.bytes", Source.size());
  }

  // Front end.
  std::unique_ptr<AoiModule> Module;
  {
    FLICK_STAT_PHASE("parse");
    if (O.Idl == "corba") {
      Module = parseCorbaIdl(Source, O.Input, Diags);
    } else if (O.Idl == "oncrpc") {
      Module = parseOncIdl(Source, O.Input, Diags);
    } else if (O.Idl == "mig") {
      Module = parseMigDefs(Source, O.Input, Diags);
    } else {
      std::fprintf(stderr, "flickc: unknown IDL '%s'\n", O.Idl.c_str());
      return 1;
    }
    if (Module) {
      size_t NumOps = 0;
      for (const auto &If : Module->interfaces())
        NumOps += If->Operations.size() + If->Attributes.size();
      FLICK_STAT_COUNT("aoi.defs", Module->interfaces().size() +
                                       Module->namedTypes().size() +
                                       Module->exceptions().size());
      FLICK_STAT_COUNT("aoi.interfaces", Module->interfaces().size());
      FLICK_STAT_COUNT("aoi.operations", NumOps);
      FLICK_STAT_COUNT("aoi.type_nodes", Module->numTypeNodes());
    }
  }
  if (!Module) {
    std::fputs(Diags.renderAll().c_str(), stderr);
    dumpStats(O);
    return 1;
  }
  {
    FLICK_STAT_PHASE("verify");
    if (!Module->verify(Diags)) {
      std::fputs(Diags.renderAll().c_str(), stderr);
      dumpStats(O);
      return 1;
    }
  }
  if (O.EmitAoi) {
    std::fputs(Module->dump().c_str(), stdout);
    return dumpStats(O) ? 0 : 1;
  }

  // Presentation generation.
  PresGenOptions PO;
  PO.NamePrefix = O.Prefix;
  PO.StringLenParams = O.PresStringLen;
  std::unique_ptr<PresGen> PG;
  if (O.Pres == "corba")
    PG = std::make_unique<CorbaPresGen>(PO);
  else if (O.Pres == "rpcgen")
    PG = std::make_unique<RpcgenPresGen>(PO);
  else if (O.Pres == "fluke")
    PG = std::make_unique<FlukePresGen>(PO);
  else if (O.Pres == "mig")
    PG = std::make_unique<MigPresGen>(PO);
  else {
    std::fprintf(stderr, "flickc: unknown presentation '%s'\n",
                 O.Pres.c_str());
    return 1;
  }
  // generate() opens the "mint" and "presgen" phases itself, so the five
  // top-level stats phases mirror Figure 1's pipeline layering.
  std::unique_ptr<PresC> Pres = PG->generate(*Module, Diags);
  if (!Pres) {
    std::fputs(Diags.renderAll().c_str(), stderr);
    dumpStats(O);
    return 1;
  }
  if (O.EmitPresC) {
    std::fputs(Pres->dump().c_str(), stdout);
    return dumpStats(O) ? 0 : 1;
  }

  // Back end.
  std::unique_ptr<Backend> BE = createBackend(O.BackendTag, O.BOpts);
  if (!BE) {
    std::fprintf(stderr, "flickc: unknown backend '%s'\n",
                 O.BackendTag.c_str());
    return 1;
  }
  std::string Base = O.OutputBase;
  size_t Slash = Base.find_last_of('/');
  std::string LeafBase =
      Slash == std::string::npos ? Base : Base.substr(Slash + 1);
  BackendOutput Out = BE->generate(*Pres, LeafBase);

  if (O.BOpts.DumpPlans) {
    std::fputs(Out.PlanDump.c_str(), stdout);
    return dumpStats(O) ? 0 : 1;
  }

  if (!writeFile(Base + ".h", Out.Header) ||
      !writeFile(Base + "_client." + O.SrcExt, Out.ClientSrc) ||
      !writeFile(Base + "_server." + O.SrcExt, Out.ServerSrc))
    return 1;
  if (!Out.CommonSrc.empty() &&
      !writeFile(Base + "_xdr." + O.SrcExt, Out.CommonSrc))
    return 1;

  if (Diags.errorCount() == 0 && !Diags.diagnostics().empty())
    std::fputs(Diags.renderAll().c_str(), stderr);
  return dumpStats(O) ? 0 : 1;
}
