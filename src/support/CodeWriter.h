//===- support/CodeWriter.h - Indented text emission ------------*- C++ -*-===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CodeWriter accumulates generated source text with indentation tracking.
/// The CAST pretty printer and the back ends emit all stub code through it.
///
//===----------------------------------------------------------------------===//

#ifndef FLICK_SUPPORT_CODEWRITER_H
#define FLICK_SUPPORT_CODEWRITER_H

#include <string>

namespace flick {

/// An append-only text buffer that understands indentation levels.
class CodeWriter {
public:
  explicit CodeWriter(unsigned IndentWidth = 2) : IndentWidth(IndentWidth) {}

  /// Appends raw text (no newline, no indentation applied mid-line).
  CodeWriter &print(const std::string &Text);

  /// Appends one full line at the current indentation.
  CodeWriter &line(const std::string &Text);

  /// Appends an empty line.
  CodeWriter &blank();

  /// Increases the indentation level by one step.
  CodeWriter &indent() {
    ++Level;
    return *this;
  }

  /// Decreases the indentation level by one step.
  CodeWriter &outdent();

  /// Convenience: `line(Head + " {")` then indent.
  CodeWriter &open(const std::string &Head);

  /// Convenience: outdent then `line("}" + Tail)`.
  CodeWriter &close(const std::string &Tail = "");

  const std::string &str() const { return Out; }
  std::string take() { return std::move(Out); }
  bool atLineStart() const { return AtLineStart; }

private:
  void beginLineIfNeeded();

  std::string Out;
  unsigned IndentWidth;
  unsigned Level = 0;
  bool AtLineStart = true;
};

} // namespace flick

#endif // FLICK_SUPPORT_CODEWRITER_H
