//===- support/StringExtras.h - Small string helpers ------------*- C++ -*-===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String utilities shared by the front ends and code generators: identifier
/// checks, case conversion, joining, and C string-literal escaping.
///
//===----------------------------------------------------------------------===//

#ifndef FLICK_SUPPORT_STRINGEXTRAS_H
#define FLICK_SUPPORT_STRINGEXTRAS_H

#include <string>
#include <vector>

namespace flick {

/// Returns true if \p S is a valid C identifier.
bool isCIdentifier(const std::string &S);

/// ASCII-uppercases \p S.
std::string toUpper(const std::string &S);

/// ASCII-lowercases \p S.
std::string toLower(const std::string &S);

/// Joins \p Parts with \p Sep between elements.
std::string join(const std::vector<std::string> &Parts,
                 const std::string &Sep);

/// Escapes \p S for inclusion inside a C string literal (no quotes added).
std::string escapeCString(const std::string &S);

/// Replaces every character that cannot appear in a C identifier with '_'.
std::string sanitizeIdentifier(const std::string &S);

/// Splits \p S on \p Sep; empty fields are preserved.
std::vector<std::string> split(const std::string &S, char Sep);

/// Returns true if \p S starts with \p Prefix.
bool startsWith(const std::string &S, const std::string &Prefix);

/// Returns true if \p S ends with \p Suffix.
bool endsWith(const std::string &S, const std::string &Suffix);

} // namespace flick

#endif // FLICK_SUPPORT_STRINGEXTRAS_H
