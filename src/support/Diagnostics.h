//===- support/Diagnostics.h - Error reporting for flickc -------*- C++ -*-===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// DiagnosticEngine collects compiler diagnostics (errors, warnings, notes)
/// with source locations.  Front ends report into an engine owned by the
/// driver; tests inspect the collected diagnostics directly.  Message style
/// follows the LLVM convention: lowercase first letter, no trailing period.
///
//===----------------------------------------------------------------------===//

#ifndef FLICK_SUPPORT_DIAGNOSTICS_H
#define FLICK_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"
#include <string>
#include <vector>

namespace flick {

/// Severity of a diagnostic.
enum class DiagLevel { Note, Warning, Error };

/// One reported diagnostic.
struct Diagnostic {
  DiagLevel Level;
  SourceLoc Loc;
  std::string Message;
};

/// Collects diagnostics and renders them in "file:line:col: level: msg"
/// form.  Not thread-safe; one engine per compilation.
class DiagnosticEngine {
public:
  /// Interns \p Filename and returns its id for use in SourceLocs.
  int addFile(const std::string &Filename);

  /// Returns the interned name for \p FileId, or "<unknown>".
  const std::string &fileName(int FileId) const;

  void error(SourceLoc Loc, const std::string &Message);
  void warning(SourceLoc Loc, const std::string &Message);
  void note(SourceLoc Loc, const std::string &Message);

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders one diagnostic as "file:line:col: error: message".
  std::string render(const Diagnostic &D) const;

  /// Renders every collected diagnostic, one per line.
  std::string renderAll() const;

  /// Drops all collected diagnostics (used by tests between cases).
  void clear();

private:
  void report(DiagLevel Level, SourceLoc Loc, const std::string &Message);

  std::vector<std::string> Files;
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace flick

#endif // FLICK_SUPPORT_DIAGNOSTICS_H
