//===- support/Stats.cpp - Compiler phase timing and counters -------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"
#include "support/BuildInfo.h"
#include <cstdio>

using namespace flick;

StatsRegion &StatsRegion::child(const std::string &ChildName) {
  for (auto &C : Children)
    if (C->Name == ChildName)
      return *C;
  Children.push_back(std::make_unique<StatsRegion>(ChildName));
  return *Children.back();
}

uint64_t &StatsRegion::counter(const std::string &CounterName) {
  for (auto &C : Counters)
    if (C.first == CounterName)
      return C.second;
  Counters.emplace_back(CounterName, 0);
  return Counters.back().second;
}

uint64_t StatsRegion::counterValue(const std::string &CounterName) const {
  for (const auto &C : Counters)
    if (C.first == CounterName)
      return C.second;
  return 0;
}

const StatsRegion *StatsRegion::findChild(const std::string &ChildName) const {
  for (const auto &C : Children)
    if (C->Name == ChildName)
      return C.get();
  return nullptr;
}

Stats &Stats::get() {
  static Stats Instance;
  return Instance;
}

void Stats::reset() {
  Root.WallUs = 0;
  Root.StartUs = 0;
  Root.Counters.clear();
  Root.Children.clear();
  Stack.clear();
  Notes.clear();
  Epoch = std::chrono::steady_clock::now();
}

void Stats::push(const std::string &Name) {
  StatsRegion &Parent = Stack.empty() ? Root : *Stack.back();
  StatsRegion &R = Parent.child(Name);
  if (R.StartUs < 0)
    R.StartUs = std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - Epoch)
                    .count();
  Stack.push_back(&R);
}

void Stats::pop(double WallUs) {
  if (Stack.empty())
    return;
  Stack.back()->WallUs += WallUs;
  Stack.pop_back();
}

void Stats::count(const std::string &Name, uint64_t Delta) {
  StatsRegion &R = Stack.empty() ? Root : *Stack.back();
  R.counter(Name) += Delta;
}

void Stats::note(const std::string &Key, const std::string &Value) {
  for (auto &N : Notes)
    if (N.first == Key) {
      N.second = Value;
      return;
    }
  Notes.emplace_back(Key, Value);
}

std::string flick::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

namespace {

void indentTo(std::string &Out, unsigned Depth) {
  Out.append(Depth * 2, ' ');
}

std::string fmtUs(double Us) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.3f", Us);
  return Buf;
}

void renderCounters(
    std::string &Out,
    const std::vector<std::pair<std::string, uint64_t>> &Counters,
    unsigned Depth) {
  indentTo(Out, Depth);
  Out += "\"counters\": {";
  for (size_t I = 0; I != Counters.size(); ++I) {
    if (I)
      Out += ",";
    Out += "\n";
    indentTo(Out, Depth + 1);
    Out += "\"" + jsonEscape(Counters[I].first) +
           "\": " + std::to_string(Counters[I].second);
  }
  if (!Counters.empty()) {
    Out += "\n";
    indentTo(Out, Depth);
  }
  Out += "}";
}

void renderRegion(std::string &Out, const StatsRegion &R, unsigned Depth) {
  indentTo(Out, Depth);
  Out += "{\n";
  indentTo(Out, Depth + 1);
  Out += "\"name\": \"" + jsonEscape(R.Name) + "\",\n";
  indentTo(Out, Depth + 1);
  Out += "\"wall_us\": " + fmtUs(R.WallUs) + ",\n";
  renderCounters(Out, R.Counters, Depth + 1);
  Out += ",\n";
  indentTo(Out, Depth + 1);
  Out += "\"phases\": [";
  for (size_t I = 0; I != R.Children.size(); ++I) {
    if (I)
      Out += ",";
    Out += "\n";
    renderRegion(Out, *R.Children[I], Depth + 2);
  }
  if (!R.Children.empty()) {
    Out += "\n";
    indentTo(Out, Depth + 1);
  }
  Out += "]\n";
  indentTo(Out, Depth);
  Out += "}";
}

} // namespace

std::string Stats::toJson() const {
  std::string Out = "{\n";
  indentTo(Out, 1);
  Out += "\"tool\": \"flickc\",\n";
  indentTo(Out, 1);
  Out += "\"build\": " + flick_build_info_json() + ",\n";
  for (const auto &N : Notes) {
    indentTo(Out, 1);
    Out += "\"" + jsonEscape(N.first) + "\": \"" + jsonEscape(N.second) +
           "\",\n";
  }
  indentTo(Out, 1);
  Out += "\"wall_us\": " + fmtUs(Root.WallUs) + ",\n";
  renderCounters(Out, Root.Counters, 1);
  Out += ",\n";
  indentTo(Out, 1);
  Out += "\"phases\": [";
  for (size_t I = 0; I != Root.Children.size(); ++I) {
    if (I)
      Out += ",";
    Out += "\n";
    renderRegion(Out, *Root.Children[I], 2);
  }
  if (!Root.Children.empty()) {
    Out += "\n";
    indentTo(Out, 1);
  }
  Out += "]\n}\n";
  return Out;
}

namespace {

void renderChromeRegion(std::string &Out, const StatsRegion &R,
                        bool &First) {
  if (!First)
    Out += ",\n";
  First = false;
  double Ts = R.StartUs < 0 ? 0 : R.StartUs;
  Out += "    {\"name\": \"" + jsonEscape(R.Name) +
         "\", \"cat\": \"flickc\", \"ph\": \"X\", \"ts\": " + fmtUs(Ts) +
         ", \"dur\": " + fmtUs(R.WallUs) + ", \"pid\": 1, \"tid\": 1";
  if (!R.Counters.empty()) {
    Out += ", \"args\": {";
    for (size_t I = 0; I != R.Counters.size(); ++I) {
      if (I)
        Out += ", ";
      Out += "\"" + jsonEscape(R.Counters[I].first) +
             "\": " + std::to_string(R.Counters[I].second);
    }
    Out += "}";
  }
  Out += "}";
  for (const auto &C : R.Children)
    renderChromeRegion(Out, *C, First);
}

} // namespace

std::string Stats::toChromeTrace() const {
  std::string Out = "{\n  \"displayTimeUnit\": \"ms\",\n";
  for (const auto &N : Notes)
    Out += "  \"" + jsonEscape(N.first) + "\": \"" + jsonEscape(N.second) +
           "\",\n";
  Out += "  \"traceEvents\": [\n";
  bool First = true;
  renderChromeRegion(Out, Root, First);
  Out += "\n  ]\n}\n";
  return Out;
}

StatsPhase::StatsPhase(const char *Name) {
  Stats &S = Stats::get();
  if (!S.enabled())
    return;
  Active = true;
  S.push(Name);
  Start = std::chrono::steady_clock::now();
}

StatsPhase::~StatsPhase() {
  if (!Active)
    return;
  double Us = std::chrono::duration<double, std::micro>(
                  std::chrono::steady_clock::now() - Start)
                  .count();
  Stats::get().pop(Us);
}
