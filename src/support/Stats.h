//===- support/Stats.h - Compiler phase timing and counters -----*- C++ -*-===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lightweight statistics registry for flickc: scoped wall-clock phase
/// timers, named counters, and hierarchical regions, exported as JSON via
/// `flickc --stats[=out.json]`.  The pipeline stages (parse, verify, mint,
/// presgen, backend) each open a StatsPhase and bump counters for the IR
/// they build, so a compile can be inspected the way the paper inspects
/// generated stubs.  Everything is compiled out when FLICK_STATS_ENABLED
/// is 0, and is a single flag test per event when built in but not
/// requested on the command line.
///
//===----------------------------------------------------------------------===//

#ifndef FLICK_SUPPORT_STATS_H
#define FLICK_SUPPORT_STATS_H

#ifndef FLICK_STATS_ENABLED
#define FLICK_STATS_ENABLED 1
#endif

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace flick {

/// One node of the region tree: a named span of the compilation with its
/// wall time, counters, and nested sub-regions.
struct StatsRegion {
  explicit StatsRegion(std::string Name) : Name(std::move(Name)) {}

  std::string Name;
  double WallUs = 0;
  /// First time this region was entered, in microseconds since the Stats
  /// epoch (reset); -1 until pushed.  Lets --trace re-emit the region tree
  /// as Chrome trace events with real positions on the timeline.
  double StartUs = -1;
  /// Counters in first-touch order (stable JSON output).
  std::vector<std::pair<std::string, uint64_t>> Counters;
  std::vector<std::unique_ptr<StatsRegion>> Children;

  /// Finds or creates the child region \p ChildName.
  StatsRegion &child(const std::string &ChildName);

  /// Finds or creates the counter \p CounterName.
  uint64_t &counter(const std::string &CounterName);

  /// Returns the counter value, or 0 when absent.
  uint64_t counterValue(const std::string &CounterName) const;

  /// Returns the child with \p ChildName, or null.
  const StatsRegion *findChild(const std::string &ChildName) const;
};

/// Process-wide statistics registry.  Disabled by default; the driver
/// enables it when --stats is passed, and every hook below is a no-op
/// while it is off.  Not thread-safe: one compilation per process.
class Stats {
public:
  static Stats &get();

  void setEnabled(bool E) { Enabled = E; }
  bool enabled() const { return Enabled; }

  /// Drops all regions, counters, and notes (tests reuse the singleton).
  void reset();

  /// Opens a region named \p Name under the innermost open region.
  void push(const std::string &Name);

  /// Closes the innermost open region, crediting it \p WallUs.
  void pop(double WallUs);

  /// Adds \p Delta to counter \p Name on the innermost open region (the
  /// root when no phase is open).
  void count(const std::string &Name, uint64_t Delta = 1);

  /// Attaches a top-level string attribute (input file, backend tag, ...).
  void note(const std::string &Key, const std::string &Value);

  /// Credits total elapsed wall time to the root region (the driver calls
  /// this right before rendering).
  void setTotalWallUs(double WallUs) { Root.WallUs = WallUs; }

  /// Renders the whole tree as a JSON document.
  std::string toJson() const;

  /// Renders the region tree as Chrome trace-event JSON ("X" complete
  /// events positioned by StartUs) for `flickc --trace=out.json`.
  std::string toChromeTrace() const;

  const StatsRegion &root() const { return Root; }

private:
  Stats() = default;

  bool Enabled = false;
  StatsRegion Root{"flickc"};
  std::vector<StatsRegion *> Stack;
  std::vector<std::pair<std::string, std::string>> Notes;
  std::chrono::steady_clock::time_point Epoch;
};

/// RAII scoped phase timer; records wall time into Stats on destruction.
class StatsPhase {
public:
  explicit StatsPhase(const char *Name);
  ~StatsPhase();

  StatsPhase(const StatsPhase &) = delete;
  StatsPhase &operator=(const StatsPhase &) = delete;

private:
  bool Active = false;
  std::chrono::steady_clock::time_point Start;
};

/// Escapes \p S for inclusion in a JSON string literal.
std::string jsonEscape(const std::string &S);

} // namespace flick

#if FLICK_STATS_ENABLED
#define FLICK_STAT_CONCAT_IMPL(A, B) A##B
#define FLICK_STAT_CONCAT(A, B) FLICK_STAT_CONCAT_IMPL(A, B)
/// Times the enclosing scope as phase \p NAME.
#define FLICK_STAT_PHASE(NAME)                                               \
  ::flick::StatsPhase FLICK_STAT_CONCAT(FlickStatPhase, __LINE__)(NAME)
/// Adds \p N to counter \p NAME in the current phase.
#define FLICK_STAT_COUNT(NAME, N)                                            \
  do {                                                                       \
    if (::flick::Stats::get().enabled())                                     \
      ::flick::Stats::get().count((NAME), (N));                              \
  } while (0)
#else
#define FLICK_STAT_PHASE(NAME) ((void)0)
#define FLICK_STAT_COUNT(NAME, N) ((void)0)
#endif

#endif // FLICK_SUPPORT_STATS_H
