//===- support/Diagnostics.cpp - Error reporting for flickc ---------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

using namespace flick;

int DiagnosticEngine::addFile(const std::string &Filename) {
  for (size_t I = 0, E = Files.size(); I != E; ++I)
    if (Files[I] == Filename)
      return static_cast<int>(I);
  Files.push_back(Filename);
  return static_cast<int>(Files.size() - 1);
}

const std::string &DiagnosticEngine::fileName(int FileId) const {
  static const std::string Unknown = "<unknown>";
  if (FileId < 0 || static_cast<size_t>(FileId) >= Files.size())
    return Unknown;
  return Files[static_cast<size_t>(FileId)];
}

void DiagnosticEngine::error(SourceLoc Loc, const std::string &Message) {
  report(DiagLevel::Error, Loc, Message);
}

void DiagnosticEngine::warning(SourceLoc Loc, const std::string &Message) {
  report(DiagLevel::Warning, Loc, Message);
}

void DiagnosticEngine::note(SourceLoc Loc, const std::string &Message) {
  report(DiagLevel::Note, Loc, Message);
}

void DiagnosticEngine::report(DiagLevel Level, SourceLoc Loc,
                              const std::string &Message) {
  Diags.push_back(Diagnostic{Level, Loc, Message});
  if (Level == DiagLevel::Error)
    ++NumErrors;
}

std::string DiagnosticEngine::render(const Diagnostic &D) const {
  std::string Out;
  if (D.Loc.isValid()) {
    Out += fileName(D.Loc.FileId);
    Out += ':';
    Out += std::to_string(D.Loc.Line);
    Out += ':';
    Out += std::to_string(D.Loc.Col);
    Out += ": ";
  }
  switch (D.Level) {
  case DiagLevel::Note:
    Out += "note: ";
    break;
  case DiagLevel::Warning:
    Out += "warning: ";
    break;
  case DiagLevel::Error:
    Out += "error: ";
    break;
  }
  Out += D.Message;
  return Out;
}

std::string DiagnosticEngine::renderAll() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += render(D);
    Out += '\n';
  }
  return Out;
}

void DiagnosticEngine::clear() {
  Diags.clear();
  NumErrors = 0;
}
