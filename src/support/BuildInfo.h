//===- support/BuildInfo.h - Build attribution for JSON exports -*- C++ -*-===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One build-info block stamped into every machine-readable export
/// (`flickc --stats`, metrics JSON, bench JSON, Chrome traces, Prometheus
/// exposition, flight-recorder dumps), so results from different runs can
/// be attributed to the exact build that produced them: git hash,
/// compiler, build type, and the compiler flag set.
///
/// Header-only on purpose: both the compiler libraries and the (otherwise
/// compiler-independent) stub runtime emit JSON, and neither should grow a
/// link dependency for four strings.  The values arrive as compile
/// definitions from the top-level CMakeLists; missing definitions degrade
/// to "unknown" so out-of-tree builds of the runtime still compile.
///
//===----------------------------------------------------------------------===//

#ifndef FLICK_SUPPORT_BUILDINFO_H
#define FLICK_SUPPORT_BUILDINFO_H

#include <string>

#ifndef FLICK_BUILD_GIT_HASH
#define FLICK_BUILD_GIT_HASH "unknown"
#endif
#ifndef FLICK_BUILD_TYPE
#define FLICK_BUILD_TYPE "unknown"
#endif
#ifndef FLICK_BUILD_FLAGS
#define FLICK_BUILD_FLAGS ""
#endif

/// The host compiler's own identification string (e.g. "13.2.0" under
/// GCC, "Clang 17.0.1 ..." under Clang).
#ifndef FLICK_BUILD_COMPILER
#ifdef __VERSION__
#define FLICK_BUILD_COMPILER __VERSION__
#else
#define FLICK_BUILD_COMPILER "unknown"
#endif
#endif

inline const char *flick_build_git_hash() { return FLICK_BUILD_GIT_HASH; }
inline const char *flick_build_compiler() { return FLICK_BUILD_COMPILER; }
inline const char *flick_build_type() { return FLICK_BUILD_TYPE; }
inline const char *flick_build_flags() { return FLICK_BUILD_FLAGS; }

/// Renders the build block as a JSON object on one line:
/// {"git": "...", "compiler": "...", "build_type": "...", "flags": "..."}.
/// Self-contained escaping (quotes/backslashes/control chars) so this
/// header depends on nothing but <string>.
inline std::string flick_build_info_json() {
  auto Esc = [](const char *S) {
    std::string Out;
    for (; *S; ++S) {
      char C = *S;
      if (C == '"' || C == '\\') {
        Out += '\\';
        Out += C;
      } else if (static_cast<unsigned char>(C) < 0x20) {
        Out += ' ';
      } else {
        Out += C;
      }
    }
    return Out;
  };
  return "{\"git\": \"" + Esc(flick_build_git_hash()) +
         "\", \"compiler\": \"" + Esc(flick_build_compiler()) +
         "\", \"build_type\": \"" + Esc(flick_build_type()) +
         "\", \"flags\": \"" + Esc(flick_build_flags()) + "\"}";
}

#endif // FLICK_SUPPORT_BUILDINFO_H
