//===- support/Casting.h - LLVM-style isa/cast/dyn_cast ---------*- C++ -*-===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal reimplementation of LLVM's checked-cast templates.  Classes opt in
/// by providing `static bool classof(const Base *)`, typically by testing a
/// kind discriminator stored in the base class.  This lets the compiler IRs
/// (AOI, MINT, CAST, PRES) use kind-based dispatch without C++ RTTI.
///
//===----------------------------------------------------------------------===//

#ifndef FLICK_SUPPORT_CASTING_H
#define FLICK_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace flick {

/// Returns true if \p Val is an instance of \p To (or a subclass of it).
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Checked downcast: asserts that \p Val really is a \p To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

/// Checked downcast, const variant.
template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast: returns null when \p Val is not a \p To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

/// Checking downcast, const variant.
template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Like dyn_cast, but tolerates a null input (propagates the null).
template <typename To, typename From> To *dyn_cast_or_null(From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

/// Like dyn_cast_or_null, const variant.
template <typename To, typename From>
const To *dyn_cast_or_null(const From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

} // namespace flick

#endif // FLICK_SUPPORT_CASTING_H
