//===- support/CodeWriter.cpp - Indented text emission --------------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/CodeWriter.h"
#include <cassert>

using namespace flick;

void CodeWriter::beginLineIfNeeded() {
  if (!AtLineStart)
    return;
  Out.append(static_cast<size_t>(Level) * IndentWidth, ' ');
  AtLineStart = false;
}

CodeWriter &CodeWriter::print(const std::string &Text) {
  if (Text.empty())
    return *this;
  beginLineIfNeeded();
  Out += Text;
  return *this;
}

CodeWriter &CodeWriter::line(const std::string &Text) {
  if (!Text.empty())
    print(Text);
  Out += '\n';
  AtLineStart = true;
  return *this;
}

CodeWriter &CodeWriter::blank() {
  Out += '\n';
  AtLineStart = true;
  return *this;
}

CodeWriter &CodeWriter::outdent() {
  assert(Level > 0 && "outdent below level zero");
  --Level;
  return *this;
}

CodeWriter &CodeWriter::open(const std::string &Head) {
  line(Head.empty() ? "{" : Head + " {");
  return indent();
}

CodeWriter &CodeWriter::close(const std::string &Tail) {
  outdent();
  return line("}" + Tail);
}
