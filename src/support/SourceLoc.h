//===- support/SourceLoc.h - Source positions for diagnostics ---*- C++ -*-===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lightweight (file, line, column) triple used by the IDL front ends to
/// attribute diagnostics.  The file name is interned by the owning
/// DiagnosticEngine so a SourceLoc is cheap to copy.
///
//===----------------------------------------------------------------------===//

#ifndef FLICK_SUPPORT_SOURCELOC_H
#define FLICK_SUPPORT_SOURCELOC_H

#include <string>

namespace flick {

/// A position in an IDL source file.  Line and column are 1-based; a
/// default-constructed SourceLoc (line 0) means "no location".
struct SourceLoc {
  /// Index into DiagnosticEngine's file-name table; -1 means unknown.
  int FileId = -1;
  unsigned Line = 0;
  unsigned Col = 0;

  SourceLoc() = default;
  SourceLoc(int FileId, unsigned Line, unsigned Col)
      : FileId(FileId), Line(Line), Col(Col) {}

  bool isValid() const { return Line != 0; }

  friend bool operator==(const SourceLoc &A, const SourceLoc &B) {
    return A.FileId == B.FileId && A.Line == B.Line && A.Col == B.Col;
  }
};

} // namespace flick

#endif // FLICK_SUPPORT_SOURCELOC_H
