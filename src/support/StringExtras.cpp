//===- support/StringExtras.cpp - Small string helpers --------------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/StringExtras.h"
#include <cctype>

using namespace flick;

static bool isIdentStart(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) || C == '_';
}

static bool isIdentBody(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_';
}

bool flick::isCIdentifier(const std::string &S) {
  if (S.empty() || !isIdentStart(S[0]))
    return false;
  for (char C : S)
    if (!isIdentBody(C))
      return false;
  return true;
}

std::string flick::toUpper(const std::string &S) {
  std::string Out = S;
  for (char &C : Out)
    C = static_cast<char>(std::toupper(static_cast<unsigned char>(C)));
  return Out;
}

std::string flick::toLower(const std::string &S) {
  std::string Out = S;
  for (char &C : Out)
    C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
  return Out;
}

std::string flick::join(const std::vector<std::string> &Parts,
                        const std::string &Sep) {
  std::string Out;
  for (size_t I = 0, E = Parts.size(); I != E; ++I) {
    if (I != 0)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

std::string flick::escapeCString(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (std::isprint(static_cast<unsigned char>(C))) {
        Out += C;
      } else {
        static const char Hex[] = "0123456789abcdef";
        unsigned char U = static_cast<unsigned char>(C);
        Out += "\\x";
        Out += Hex[U >> 4];
        Out += Hex[U & 0xF];
      }
    }
  }
  return Out;
}

std::string flick::sanitizeIdentifier(const std::string &S) {
  std::string Out = S;
  for (char &C : Out)
    if (!isIdentBody(C))
      C = '_';
  if (Out.empty() || !isIdentStart(Out[0]))
    Out.insert(Out.begin(), '_');
  return Out;
}

std::vector<std::string> flick::split(const std::string &S, char Sep) {
  std::vector<std::string> Out;
  size_t Start = 0;
  while (true) {
    size_t Pos = S.find(Sep, Start);
    if (Pos == std::string::npos) {
      Out.push_back(S.substr(Start));
      return Out;
    }
    Out.push_back(S.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

bool flick::startsWith(const std::string &S, const std::string &Prefix) {
  return S.size() >= Prefix.size() &&
         S.compare(0, Prefix.size(), Prefix) == 0;
}

bool flick::endsWith(const std::string &S, const std::string &Suffix) {
  return S.size() >= Suffix.size() &&
         S.compare(S.size() - Suffix.size(), Suffix.size(), Suffix) == 0;
}
