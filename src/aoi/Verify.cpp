//===- aoi/Verify.cpp - Structural checks for AOI modules -----------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Well-formedness checks run after a front end builds an AOI module and
/// before presentation generation: unique names, legal union discriminators,
/// no infinitely-sized recursion (recursion is only legal through an
/// optional pointer or sequence, which can terminate), and sane operation
/// signatures.
///
//===----------------------------------------------------------------------===//

#include "aoi/Aoi.h"
#include "support/Diagnostics.h"
#include "support/Stats.h"
#include <set>
#include <string>

using namespace flick;

namespace {

class Verifier {
public:
  Verifier(const AoiModule &M, DiagnosticEngine &Diags)
      : M(M), Diags(Diags) {}

  bool run() {
    checkUniqueTypeNames();
    for (const AoiType *T : M.namedTypes())
      checkType(T);
    for (const auto &If : M.interfaces())
      checkInterface(*If);
    FLICK_STAT_COUNT("verify.types_checked", M.namedTypes().size());
    FLICK_STAT_COUNT("verify.interfaces_checked", M.interfaces().size());
    FLICK_STAT_COUNT("verify.failures", Failed ? 1 : 0);
    return !Failed;
  }

private:
  void error(SourceLoc Loc, const std::string &Msg) {
    Diags.error(Loc, Msg);
    Failed = true;
  }

  static std::string typeName(const AoiType *T) {
    if (const auto *S = dyn_cast<AoiStruct>(T))
      return S->name();
    if (const auto *U = dyn_cast<AoiUnion>(T))
      return U->name();
    if (const auto *E = dyn_cast<AoiEnum>(T))
      return E->name();
    if (const auto *TD = dyn_cast<AoiTypedef>(T))
      return TD->name();
    return std::string();
  }

  void checkUniqueTypeNames() {
    std::set<std::string> Seen;
    for (const AoiType *T : M.namedTypes()) {
      std::string Name = typeName(T);
      if (Name.empty())
        continue;
      if (!Seen.insert(Name).second)
        error(T->loc(), "redefinition of type '" + Name + "'");
    }
  }

  /// Walks \p T checking union legality and rejecting recursion that does
  /// not pass through an optional pointer (which would imply infinite size).
  void checkType(const AoiType *T) {
    if (!T) {
      Failed = true;
      return;
    }
    if (!InProgress.insert(T).second) {
      error(T->loc(), "type '" + typeName(T) +
                          "' contains itself without an intervening "
                          "optional pointer or sequence");
      return;
    }
    switch (T->kind()) {
    case AoiType::Kind::Primitive:
    case AoiType::Kind::String:
    case AoiType::Kind::Enum:
    case AoiType::Kind::Sequence:
    case AoiType::Kind::Optional:
      // Sequence/optional elements may legally recurse (bounded by the
      // runtime length), so do not walk into them for the size check; still
      // sanity-check the element exists.
      break;
    case AoiType::Kind::Array:
      checkType(cast<AoiArray>(T)->elem());
      break;
    case AoiType::Kind::Struct: {
      const auto *S = cast<AoiStruct>(T);
      std::set<std::string> Names;
      for (const AoiField &F : S->fields()) {
        if (!Names.insert(F.Name).second)
          error(F.Loc, "duplicate field '" + F.Name + "' in struct '" +
                           S->name() + "'");
        checkType(F.Type);
      }
      break;
    }
    case AoiType::Kind::Union:
      checkUnion(cast<AoiUnion>(T));
      break;
    case AoiType::Kind::Typedef:
      checkType(cast<AoiTypedef>(T)->aliased());
      break;
    }
    InProgress.erase(T);
  }

  void checkUnion(const AoiUnion *U) {
    const AoiType *Disc = U->disc() ? U->disc()->resolved() : nullptr;
    bool DiscOk = false;
    if (const auto *P = dyn_cast_or_null<AoiPrimitive>(Disc))
      DiscOk = isIntegerPrim(P->prim()) ||
               P->prim() == AoiPrimKind::Boolean ||
               P->prim() == AoiPrimKind::Char;
    if (Disc && isa<AoiEnum>(Disc))
      DiscOk = true;
    if (!DiscOk)
      error(U->loc(), "union '" + U->name() +
                          "' discriminator must be an integer, char, "
                          "boolean, or enum type");

    std::set<int64_t> SeenLabels;
    unsigned DefaultCount = 0;
    for (const AoiUnionCase &C : U->cases()) {
      for (const AoiCaseLabel &L : C.Labels) {
        if (L.IsDefault) {
          ++DefaultCount;
          continue;
        }
        if (!SeenLabels.insert(L.Value).second)
          error(C.Loc, "duplicate case label " + std::to_string(L.Value) +
                           " in union '" + U->name() + "'");
      }
      if (C.Type)
        checkType(C.Type);
    }
    if (DefaultCount > 1)
      error(U->loc(),
            "union '" + U->name() + "' has more than one default case");
  }

  void checkInterface(const AoiInterface &If) {
    std::set<std::string> OpNames;
    std::set<uint32_t> OpCodes;
    for (const AoiOperation &Op : If.Operations) {
      if (!OpNames.insert(Op.Name).second)
        error(Op.Loc, "duplicate operation '" + Op.Name +
                          "' in interface '" + If.ScopedName + "'");
      if (!OpCodes.insert(Op.RequestCode).second)
        error(Op.Loc, "duplicate request code " +
                          std::to_string(Op.RequestCode) +
                          " for operation '" + Op.Name + "'");
      if (!Op.ReturnType) {
        error(Op.Loc, "operation '" + Op.Name + "' has no return type");
        continue;
      }
      checkType(Op.ReturnType);
      std::set<std::string> ParamNames;
      for (const AoiParam &P : Op.Params) {
        if (!ParamNames.insert(P.Name).second)
          error(P.Loc, "duplicate parameter '" + P.Name +
                           "' in operation '" + Op.Name + "'");
        checkType(P.Type);
        if (const auto *Prim =
                dyn_cast_or_null<AoiPrimitive>(P.Type->resolved()))
          if (Prim->prim() == AoiPrimKind::Void)
            error(P.Loc, "parameter '" + P.Name + "' has void type");
      }
      if (Op.Oneway) {
        if (!Op.Raises.empty())
          error(Op.Loc,
                "oneway operation '" + Op.Name + "' cannot raise exceptions");
        for (const AoiParam &P : Op.Params)
          if (P.Dir != AoiParamDir::In)
            error(P.Loc, "oneway operation '" + Op.Name +
                             "' cannot have out or inout parameters");
        if (const auto *Prim =
                dyn_cast_or_null<AoiPrimitive>(Op.ReturnType->resolved()))
          if (Prim->prim() != AoiPrimKind::Void)
            error(Op.Loc,
                  "oneway operation '" + Op.Name + "' must return void");
      }
    }
  }

  const AoiModule &M;
  DiagnosticEngine &Diags;
  std::set<const AoiType *> InProgress;
  bool Failed = false;
};

} // namespace

bool AoiModule::verify(DiagnosticEngine &Diags) const {
  return Verifier(*this, Diags).run();
}
