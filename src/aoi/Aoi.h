//===- aoi/Aoi.h - Abstract Object Interface IR -----------------*- C++ -*-===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AOI is Flick's front-end intermediate representation (paper §2.1.1): a
/// high-level, IDL-independent description of interfaces -- the data types,
/// operations, attributes, and exceptions an IDL file declares.  Both the
/// CORBA and ONC RPC front ends produce AOI; every presentation generator
/// consumes it.  AOI deliberately says nothing about target-language mapping
/// or message encoding.
///
//===----------------------------------------------------------------------===//

#ifndef FLICK_AOI_AOI_H
#define FLICK_AOI_AOI_H

#include "support/Casting.h"
#include "support/SourceLoc.h"
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace flick {

class DiagnosticEngine;

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

/// Base class of all AOI types.  Types are owned by an AoiModule and referred
/// to by raw pointer everywhere else.
class AoiType {
public:
  enum class Kind {
    Primitive,
    String,
    Sequence,
    Array,
    Struct,
    Union,
    Enum,
    Typedef,
    Optional,
  };

  Kind kind() const { return K; }
  SourceLoc loc() const { return Loc; }

  /// Strips typedef layers and returns the underlying type.
  const AoiType *resolved() const;
  AoiType *resolved() {
    return const_cast<AoiType *>(
        static_cast<const AoiType *>(this)->resolved());
  }

  virtual ~AoiType() = default;

protected:
  AoiType(Kind K, SourceLoc Loc) : K(K), Loc(Loc) {}

private:
  const Kind K;
  SourceLoc Loc;
};

/// The IDL built-in scalar types.  `Void` only appears as a return type.
enum class AoiPrimKind {
  Void,
  Boolean,
  Char,
  Octet,
  Short,
  UShort,
  Long,
  ULong,
  LongLong,
  ULongLong,
  Float,
  Double,
};

/// Returns a stable lowercase spelling ("long", "octet", ...) for dumps.
const char *primKindName(AoiPrimKind K);

/// Returns true for the integer kinds (not float/char/bool/void).
bool isIntegerPrim(AoiPrimKind K);

/// A built-in scalar type.
class AoiPrimitive : public AoiType {
public:
  AoiPrimitive(AoiPrimKind Prim, SourceLoc Loc = SourceLoc())
      : AoiType(Kind::Primitive, Loc), Prim(Prim) {}

  AoiPrimKind prim() const { return Prim; }

  static bool classof(const AoiType *T) {
    return T->kind() == Kind::Primitive;
  }

private:
  AoiPrimKind Prim;
};

/// `string` / `string<N>`.  Bound 0 means unbounded.
class AoiString : public AoiType {
public:
  explicit AoiString(uint64_t Bound, SourceLoc Loc = SourceLoc())
      : AoiType(Kind::String, Loc), Bound(Bound) {}

  uint64_t bound() const { return Bound; }

  static bool classof(const AoiType *T) { return T->kind() == Kind::String; }

private:
  uint64_t Bound;
};

/// `sequence<T>` / `sequence<T, N>` (CORBA) or `T name<N>` (XDR variable
/// array).  Bound 0 means unbounded.
class AoiSequence : public AoiType {
public:
  AoiSequence(AoiType *Elem, uint64_t Bound, SourceLoc Loc = SourceLoc())
      : AoiType(Kind::Sequence, Loc), Elem(Elem), Bound(Bound) {}

  AoiType *elem() const { return Elem; }
  uint64_t bound() const { return Bound; }

  static bool classof(const AoiType *T) {
    return T->kind() == Kind::Sequence;
  }

private:
  AoiType *Elem;
  uint64_t Bound;
};

/// Fixed-size array `T name[N]...`; multidimensional via Dims.
class AoiArray : public AoiType {
public:
  AoiArray(AoiType *Elem, std::vector<uint64_t> Dims,
           SourceLoc Loc = SourceLoc())
      : AoiType(Kind::Array, Loc), Elem(Elem), Dims(std::move(Dims)) {}

  AoiType *elem() const { return Elem; }
  const std::vector<uint64_t> &dims() const { return Dims; }

  /// Product of all dimensions.
  uint64_t totalElems() const;

  static bool classof(const AoiType *T) { return T->kind() == Kind::Array; }

private:
  AoiType *Elem;
  std::vector<uint64_t> Dims;
};

/// One named, typed member of a struct or exception.
struct AoiField {
  std::string Name;
  AoiType *Type = nullptr;
  SourceLoc Loc;
};

/// A struct type.  Exceptions reuse this shape via AoiExceptionDecl.
class AoiStruct : public AoiType {
public:
  AoiStruct(std::string Name, std::vector<AoiField> Fields,
            SourceLoc Loc = SourceLoc())
      : AoiType(Kind::Struct, Loc), Name(std::move(Name)),
        Fields(std::move(Fields)) {}

  const std::string &name() const { return Name; }
  const std::vector<AoiField> &fields() const { return Fields; }

  /// Fills the fields after construction; parsers declare the struct first
  /// so members can reference it through sequences/optionals.
  void setFields(std::vector<AoiField> F) { Fields = std::move(F); }

  static bool classof(const AoiType *T) { return T->kind() == Kind::Struct; }

private:
  std::string Name;
  std::vector<AoiField> Fields;
};

/// One case label of a discriminated union.  `IsDefault` cases ignore Value.
struct AoiCaseLabel {
  bool IsDefault = false;
  int64_t Value = 0;
};

/// One arm of a discriminated union.
struct AoiUnionCase {
  std::vector<AoiCaseLabel> Labels;
  std::string FieldName;
  /// Null for XDR `void` arms (no data for this case).
  AoiType *Type = nullptr;
  SourceLoc Loc;
};

/// A discriminated union (CORBA `union` / XDR `union ... switch`).
class AoiUnion : public AoiType {
public:
  AoiUnion(std::string Name, AoiType *Disc, std::vector<AoiUnionCase> Cases,
           SourceLoc Loc = SourceLoc())
      : AoiType(Kind::Union, Loc), Name(std::move(Name)), Disc(Disc),
        Cases(std::move(Cases)) {}

  const std::string &name() const { return Name; }
  AoiType *disc() const { return Disc; }
  const std::vector<AoiUnionCase> &cases() const { return Cases; }

  /// Returns the default case or null.
  const AoiUnionCase *defaultCase() const;

  static bool classof(const AoiType *T) { return T->kind() == Kind::Union; }

private:
  std::string Name;
  AoiType *Disc;
  std::vector<AoiUnionCase> Cases;
};

/// One enumerator of an enum type.
struct AoiEnumerator {
  std::string Name;
  int64_t Value = 0;
};

/// An enum type.
class AoiEnum : public AoiType {
public:
  AoiEnum(std::string Name, std::vector<AoiEnumerator> Enumerators,
          SourceLoc Loc = SourceLoc())
      : AoiType(Kind::Enum, Loc), Name(std::move(Name)),
        Enumerators(std::move(Enumerators)) {}

  const std::string &name() const { return Name; }
  const std::vector<AoiEnumerator> &enumerators() const {
    return Enumerators;
  }

  static bool classof(const AoiType *T) { return T->kind() == Kind::Enum; }

private:
  std::string Name;
  std::vector<AoiEnumerator> Enumerators;
};

/// A named alias (`typedef`).
class AoiTypedef : public AoiType {
public:
  AoiTypedef(std::string Name, AoiType *Aliased, SourceLoc Loc = SourceLoc())
      : AoiType(Kind::Typedef, Loc), Name(std::move(Name)), Aliased(Aliased) {
  }

  const std::string &name() const { return Name; }
  AoiType *aliased() const { return Aliased; }

  static bool classof(const AoiType *T) {
    return T->kind() == Kind::Typedef;
  }

private:
  std::string Name;
  AoiType *Aliased;
};

/// XDR "optional" pointer `T *x` -- zero or one element.  This is how XDR
/// expresses self-referential types (linked lists), which matter to the back
/// end's recursive-type handling (paper §3.3).
class AoiOptional : public AoiType {
public:
  explicit AoiOptional(AoiType *Elem, SourceLoc Loc = SourceLoc())
      : AoiType(Kind::Optional, Loc), Elem(Elem) {}

  AoiType *elem() const { return Elem; }

  /// Allows the parser to patch the element after construction; XDR
  /// self-referential types need a forward placeholder.
  void setElem(AoiType *T) { Elem = T; }

  static bool classof(const AoiType *T) {
    return T->kind() == Kind::Optional;
  }

private:
  AoiType *Elem;
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

/// Parameter direction (`in` / `out` / `inout`).
enum class AoiParamDir { In, Out, InOut };

/// One parameter of an operation.
struct AoiParam {
  AoiParamDir Dir = AoiParamDir::In;
  std::string Name;
  AoiType *Type = nullptr;
  SourceLoc Loc;
};

/// A user exception declaration (CORBA `exception`).
struct AoiExceptionDecl {
  std::string Name;
  std::vector<AoiField> Members;
  /// Identifier assigned by the front end, unique within the module; used as
  /// the wire discriminator for exceptional replies.
  uint32_t ExceptionCode = 0;
  SourceLoc Loc;
};

/// One operation (method / RPC procedure) of an interface.
struct AoiOperation {
  std::string Name;
  AoiType *ReturnType = nullptr; // AoiPrimitive Void when none
  std::vector<AoiParam> Params;
  std::vector<AoiExceptionDecl *> Raises;
  bool Oneway = false;
  /// The request discriminator (procedure number).  For ONC RPC this is the
  /// declared procedure number; for CORBA the front end numbers operations
  /// sequentially (IIOP also matches on the operation name string).
  uint32_t RequestCode = 0;
  SourceLoc Loc;
};

/// An interface attribute; presentation generators lower these to get/set
/// operation pairs.
struct AoiAttribute {
  std::string Name;
  AoiType *Type = nullptr;
  bool ReadOnly = false;
  SourceLoc Loc;
};

/// The value of an IDL constant.
struct AoiConstValue {
  enum class Kind { Int, String } K = Kind::Int;
  int64_t IntValue = 0;
  std::string StrValue;
};

/// A named constant.
struct AoiConst {
  std::string Name;
  AoiType *Type = nullptr;
  AoiConstValue Value;
  SourceLoc Loc;
};

/// An interface: a named set of operations and attributes.
struct AoiInterface {
  /// Unqualified name (`Mail`).
  std::string Name;
  /// Fully scoped name with `::` separators (`Mod::Mail`).
  std::string ScopedName;
  /// Base interfaces (inherited operations are *not* flattened; presgen
  /// walks the bases).
  std::vector<AoiInterface *> Bases;
  std::vector<AoiOperation> Operations;
  std::vector<AoiAttribute> Attributes;
  /// ONC RPC program/version numbers; zero for CORBA interfaces.
  uint32_t ProgramNumber = 0;
  uint32_t VersionNumber = 0;
  SourceLoc Loc;
};

/// A whole parsed IDL file: the root of AOI.  Owns every type node.
class AoiModule {
public:
  /// Creates and owns a type node.
  template <typename T, typename... Args> T *make(Args &&...As) {
    auto Owned = std::make_unique<T>(std::forward<Args>(As)...);
    T *Raw = Owned.get();
    Types.push_back(std::move(Owned));
    return Raw;
  }

  /// Creates and owns an interface.
  AoiInterface *makeInterface() {
    Interfaces.push_back(std::make_unique<AoiInterface>());
    return Interfaces.back().get();
  }

  /// Creates and owns an exception declaration.
  AoiExceptionDecl *makeException() {
    Exceptions.push_back(std::make_unique<AoiExceptionDecl>());
    Exceptions.back()->ExceptionCode =
        static_cast<uint32_t>(Exceptions.size());
    return Exceptions.back().get();
  }

  /// Registers a type that needs a C declaration emitted (structs, unions,
  /// enums, typedefs), in declaration order.
  void addNamedType(AoiType *T) { NamedTypes.push_back(T); }

  void addConst(AoiConst C) { Consts.push_back(std::move(C)); }

  const std::vector<std::unique_ptr<AoiInterface>> &interfaces() const {
    return Interfaces;
  }
  const std::vector<std::unique_ptr<AoiExceptionDecl>> &exceptions() const {
    return Exceptions;
  }
  const std::vector<AoiType *> &namedTypes() const { return NamedTypes; }
  const std::vector<AoiConst> &consts() const { return Consts; }

  /// Total type nodes owned by the module (--stats IR-size counter).
  size_t numTypeNodes() const { return Types.size(); }

  /// Finds an interface by unqualified or scoped name; null if absent.
  AoiInterface *findInterface(const std::string &Name) const;

  /// Checks structural invariants (see Verify.cpp); reports via \p Diags and
  /// returns true when the module is well-formed.
  bool verify(DiagnosticEngine &Diags) const;

  /// Renders a stable textual dump of the whole module (for tests and
  /// `flickc --emit-aoi`).
  std::string dump() const;

private:
  std::vector<std::unique_ptr<AoiType>> Types;
  std::vector<std::unique_ptr<AoiInterface>> Interfaces;
  std::vector<std::unique_ptr<AoiExceptionDecl>> Exceptions;
  std::vector<AoiType *> NamedTypes;
  std::vector<AoiConst> Consts;
};

} // namespace flick

#endif // FLICK_AOI_AOI_H
