//===- aoi/Aoi.cpp - Abstract Object Interface IR -------------------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "aoi/Aoi.h"
#include "support/CodeWriter.h"

using namespace flick;

const AoiType *AoiType::resolved() const {
  const AoiType *T = this;
  while (const auto *TD = dyn_cast<AoiTypedef>(T))
    T = TD->aliased();
  return T;
}

const char *flick::primKindName(AoiPrimKind K) {
  switch (K) {
  case AoiPrimKind::Void:
    return "void";
  case AoiPrimKind::Boolean:
    return "boolean";
  case AoiPrimKind::Char:
    return "char";
  case AoiPrimKind::Octet:
    return "octet";
  case AoiPrimKind::Short:
    return "short";
  case AoiPrimKind::UShort:
    return "unsigned short";
  case AoiPrimKind::Long:
    return "long";
  case AoiPrimKind::ULong:
    return "unsigned long";
  case AoiPrimKind::LongLong:
    return "long long";
  case AoiPrimKind::ULongLong:
    return "unsigned long long";
  case AoiPrimKind::Float:
    return "float";
  case AoiPrimKind::Double:
    return "double";
  }
  return "<bad-prim>";
}

bool flick::isIntegerPrim(AoiPrimKind K) {
  switch (K) {
  case AoiPrimKind::Short:
  case AoiPrimKind::UShort:
  case AoiPrimKind::Long:
  case AoiPrimKind::ULong:
  case AoiPrimKind::LongLong:
  case AoiPrimKind::ULongLong:
    return true;
  default:
    return false;
  }
}

uint64_t AoiArray::totalElems() const {
  uint64_t N = 1;
  for (uint64_t D : Dims)
    N *= D;
  return N;
}

const AoiUnionCase *AoiUnion::defaultCase() const {
  for (const AoiUnionCase &C : Cases)
    for (const AoiCaseLabel &L : C.Labels)
      if (L.IsDefault)
        return &C;
  return nullptr;
}

AoiInterface *AoiModule::findInterface(const std::string &Name) const {
  for (const auto &If : Interfaces)
    if (If->Name == Name || If->ScopedName == Name)
      return If.get();
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Dumping
//===----------------------------------------------------------------------===//

namespace {

/// Prints AOI types.  Named aggregates print as their name at use sites and
/// in full where declared, so dumps stay readable and recursion terminates.
class AoiDumper {
public:
  explicit AoiDumper(CodeWriter &W) : W(W) {}

  std::string typeRef(const AoiType *T) {
    if (!T)
      return "<null>";
    switch (T->kind()) {
    case AoiType::Kind::Primitive:
      return primKindName(cast<AoiPrimitive>(T)->prim());
    case AoiType::Kind::String: {
      uint64_t B = cast<AoiString>(T)->bound();
      return B ? "string<" + std::to_string(B) + ">" : "string";
    }
    case AoiType::Kind::Sequence: {
      const auto *S = cast<AoiSequence>(T);
      std::string Out = "sequence<" + typeRef(S->elem());
      if (S->bound())
        Out += ", " + std::to_string(S->bound());
      return Out + ">";
    }
    case AoiType::Kind::Array: {
      const auto *A = cast<AoiArray>(T);
      std::string Out = typeRef(A->elem());
      for (uint64_t D : A->dims())
        Out += "[" + std::to_string(D) + "]";
      return Out;
    }
    case AoiType::Kind::Struct:
      return "struct " + cast<AoiStruct>(T)->name();
    case AoiType::Kind::Union:
      return "union " + cast<AoiUnion>(T)->name();
    case AoiType::Kind::Enum:
      return "enum " + cast<AoiEnum>(T)->name();
    case AoiType::Kind::Typedef:
      return cast<AoiTypedef>(T)->name();
    case AoiType::Kind::Optional:
      return "optional<" + typeRef(cast<AoiOptional>(T)->elem()) + ">";
    }
    return "<bad-type>";
  }

  void declareType(const AoiType *T) {
    switch (T->kind()) {
    case AoiType::Kind::Struct: {
      const auto *S = cast<AoiStruct>(T);
      W.open("struct " + S->name());
      for (const AoiField &F : S->fields())
        W.line(F.Name + ": " + typeRef(F.Type) + ";");
      W.close(";");
      return;
    }
    case AoiType::Kind::Union: {
      const auto *U = cast<AoiUnion>(T);
      W.open("union " + U->name() + " switch (" + typeRef(U->disc()) + ")");
      for (const AoiUnionCase &C : U->cases()) {
        std::string Labels;
        for (const AoiCaseLabel &L : C.Labels) {
          if (!Labels.empty())
            Labels += ", ";
          Labels += L.IsDefault ? "default" : std::to_string(L.Value);
        }
        std::string Body = C.Type
                               ? C.FieldName + ": " + typeRef(C.Type) + ";"
                               : "void;";
        W.line("case " + Labels + ": " + Body);
      }
      W.close(";");
      return;
    }
    case AoiType::Kind::Enum: {
      const auto *E = cast<AoiEnum>(T);
      W.open("enum " + E->name());
      for (const AoiEnumerator &En : E->enumerators())
        W.line(En.Name + " = " + std::to_string(En.Value) + ";");
      W.close(";");
      return;
    }
    case AoiType::Kind::Typedef: {
      const auto *TD = cast<AoiTypedef>(T);
      W.line("typedef " + TD->name() + " = " + typeRef(TD->aliased()) + ";");
      return;
    }
    default:
      W.line("type " + typeRef(T) + ";");
      return;
    }
  }

private:
  CodeWriter &W;
};

const char *dirName(AoiParamDir D) {
  switch (D) {
  case AoiParamDir::In:
    return "in";
  case AoiParamDir::Out:
    return "out";
  case AoiParamDir::InOut:
    return "inout";
  }
  return "<bad-dir>";
}

} // namespace

std::string AoiModule::dump() const {
  CodeWriter W;
  AoiDumper D(W);
  for (const AoiType *T : NamedTypes)
    D.declareType(T);
  for (const AoiConst &C : Consts) {
    std::string Val = C.Value.K == AoiConstValue::Kind::Int
                          ? std::to_string(C.Value.IntValue)
                          : "\"" + C.Value.StrValue + "\"";
    W.line("const " + C.Name + " = " + Val + ";");
  }
  for (const auto &Ex : Exceptions) {
    W.open("exception " + Ex->Name);
    for (const AoiField &F : Ex->Members)
      W.line(F.Name + ": " + D.typeRef(F.Type) + ";");
    W.close(";");
  }
  for (const auto &If : Interfaces) {
    std::string Head = "interface " + If->ScopedName;
    if (If->ProgramNumber)
      Head += " /* prog " + std::to_string(If->ProgramNumber) + " vers " +
              std::to_string(If->VersionNumber) + " */";
    if (!If->Bases.empty()) {
      Head += " : ";
      for (size_t I = 0; I != If->Bases.size(); ++I) {
        if (I)
          Head += ", ";
        Head += If->Bases[I]->ScopedName;
      }
    }
    W.open(Head);
    for (const AoiAttribute &A : If->Attributes)
      W.line(std::string(A.ReadOnly ? "readonly " : "") + "attribute " +
             A.Name + ": " + D.typeRef(A.Type) + ";");
    for (const AoiOperation &Op : If->Operations) {
      std::string Line;
      if (Op.Oneway)
        Line += "oneway ";
      Line += D.typeRef(Op.ReturnType) + " " + Op.Name + "(";
      for (size_t I = 0; I != Op.Params.size(); ++I) {
        if (I)
          Line += ", ";
        const AoiParam &P = Op.Params[I];
        Line += std::string(dirName(P.Dir)) + " " + P.Name + ": " +
                D.typeRef(P.Type);
      }
      Line += ")";
      if (!Op.Raises.empty()) {
        Line += " raises(";
        for (size_t I = 0; I != Op.Raises.size(); ++I) {
          if (I)
            Line += ", ";
          Line += Op.Raises[I]->Name;
        }
        Line += ")";
      }
      Line += " = " + std::to_string(Op.RequestCode) + ";";
      W.line(Line);
    }
    W.close(";");
  }
  return W.take();
}
