//===- examples/directory_service.cpp - the paper's directory workload ----===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The evaluation interface from paper §4 as a working service: an ONC RPC
/// program (idl/bench.x) compiled through the rpcgen presentation and the
/// XDR back end, serving directory listings -- variable-length names plus
/// 136-byte stat blocks -- over a simulated 100 Mbit Ethernet.  The client
/// ships listings of growing size and reports effective throughput,
/// miniature Figure 5.
///
//===----------------------------------------------------------------------===//

#include "ex_dir.h" // generated from idl/bench.x
#include "runtime/Calibrate.h"
#include "runtime/transport/LocalLink.h"
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

// --- Servant: tally what arrives. ---

static uint64_t BytesSeen, EntriesSeen;

int send_ints_1_svc(const intseq *) { return 0; }
int send_rects_1_svc(const rectseq *) { return 0; }

int send_dirents_1_svc(const direntseq *listing) {
  for (uint32_t I = 0; I != listing->direntseq_len; ++I) {
    const dirent &E = listing->direntseq_val[I];
    BytesSeen += std::strlen(E.name) + sizeof(stat_info);
    ++EntriesSeen;
  }
  return 0;
}

int main() {
  // Simulated 100 Mbit Ethernet, scaled to this host (see DESIGN.md §3).
  double HostBw = flick::measureCopyBandwidth();
  flick::NetworkModel Net = flick::scaleModelToHost(
      flick::NetworkModel::ethernet100(), HostBw);
  flick::LocalLink Link;
  flick::SimClock Clock;
  Link.setModel(Net, &Clock);

  flick_server Server;
  flick_server_init(&Server, &Link.serverEnd(), BENCHPROG_dispatch);
  Link.setPump([&] { return flick_server_handle_one(&Server) == FLICK_OK; });
  flick_client Client;
  flick_client_init(&Client, &Link.clientEnd());

  std::printf("directory service over simulated %s\n", Net.Name.c_str());
  std::printf("%10s %10s %14s\n", "entries", "payload", "eff. Mbit/s");

  for (uint32_t Count : {4u, 64u, 512u, 2048u}) {
    // Build a listing: plausible file names + stat blocks.
    std::vector<std::string> Names;
    std::vector<dirent> Entries(Count);
    for (uint32_t I = 0; I != Count; ++I) {
      Names.push_back("src/module" + std::to_string(I % 37) + "/file-" +
                      std::to_string(I) + ".cpp");
      for (int W = 0; W != 30; ++W)
        Entries[I].info.words[W] = I * 131 + W;
      std::memcpy(Entries[I].info.tag, "flick-demo-tag!!", 16);
    }
    for (uint32_t I = 0; I != Count; ++I)
      Entries[I].name = Names[I].data();
    direntseq Listing{Count, Entries.data()};

    size_t Payload = 0;
    for (uint32_t I = 0; I != Count; ++I)
      Payload += Names[I].size() + sizeof(stat_info);

    Clock.reset();
    auto T0 = std::chrono::steady_clock::now();
    int Err = send_dirents_1(&Listing, &Client);
    double Cpu = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - T0)
                     .count();
    if (Err != FLICK_OK) {
      std::printf("RPC failed: %d\n", Err);
      return 1;
    }
    double Total = Cpu + Clock.totalUs() * 1e-6;
    std::printf("%10u %9zuB %14.1f\n", Count, Payload,
                double(Payload) * 8 / Total / 1e6);
  }

  std::printf("server observed %llu entries, %llu payload bytes\n",
              static_cast<unsigned long long>(EntriesSeen),
              static_cast<unsigned long long>(BytesSeen));
  flick_client_destroy(&Client);
  flick_server_destroy(&Server);
  return 0;
}
