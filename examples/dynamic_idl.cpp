//===- examples/dynamic_idl.cpp - runtime specialization demo -------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Marshaling for types that do not exist until run time.  A dynamic-IDL
/// host (an interface repository, a bridge, a scripting binding) cannot
/// link generated stubs, so it describes each type as an InterpType
/// program and hands it to the runtime.  This demo builds the paper's
/// directory-listing type that way, then marshals it three ways:
///
///   interp     : the tree-walking interpreter, one dispatch per field
///   specialize : flick_specialize() compiles the same program into a
///                threaded array of pre-compiled stencil kernels with
///                the analyses the static compiler runs at build time
///                (run fusion, bounds hoisting) re-run at run time
///
/// The wire bytes are identical by construction -- the demo checks --
/// and the specialized program is within reach of generated stubs while
/// keeping the interpreter's deploy-a-type-at-runtime flexibility.
///
//===----------------------------------------------------------------------===//

#include "runtime/Interp.h"
#include "runtime/Specialize.h"
#include <chrono>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

using flick::InterpType;
using flick::InterpWire;

// The presentation structs a binding would hand us.  Nothing about them
// is known to the compiler: the type program below is built at run time.
struct StatInfo {
  uint32_t Words[30];
  uint8_t Tag[16];
};
struct Dirent {
  char *Name;
  StatInfo Info;
};
struct Listing {
  uint32_t Len;
  Dirent *Val;
};

static double secsPerCall(const std::function<void()> &Fn) {
  using Clock = std::chrono::steady_clock;
  Fn(); // warm up
  size_t Iters = 2000;
  auto T0 = Clock::now();
  for (size_t I = 0; I != Iters; ++I)
    Fn();
  return std::chrono::duration<double>(Clock::now() - T0).count() /
         static_cast<double>(Iters);
}

int main() {
  // -- 1. Describe the type at run time (what a dynamic host does). --
  const InterpType Word = InterpType::scalar(0, 4);
  const InterpType DirentTy = InterpType::structOf({
      InterpType::cstring(offsetof(Dirent, Name)),
      InterpType::fixedArray(offsetof(Dirent, Info.Words), &Word, 30, 4),
      InterpType::bytes(offsetof(Dirent, Info.Tag), 16),
  });
  const InterpType ListingTy = InterpType::counted(
      offsetof(Listing, Len), offsetof(Listing, Val), &DirentTy,
      sizeof(Dirent));
  constexpr InterpWire Xdr{true, true};

  // -- 2. Build a listing worth marshaling. --
  const uint32_t N = 256;
  std::vector<std::string> Names(N);
  std::vector<Dirent> Entries(N);
  for (uint32_t I = 0; I != N; ++I) {
    Names[I] = "entry-" + std::to_string(I) + ".dat";
    Entries[I].Name = Names[I].data();
    for (int W = 0; W != 30; ++W)
      Entries[I].Info.Words[W] = I * 31 + W;
    std::memset(Entries[I].Info.Tag, 0x42, 16);
  }
  Listing L{N, Entries.data()};

  // -- 3. Specialize: one compile, cached by structural hash. --
  auto C0 = std::chrono::steady_clock::now();
  const flick::flick_spec_program *P = flick::flick_specialize(ListingTy, Xdr);
  double CompileUs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - C0)
          .count() *
      1e6;
  if (!P) {
    std::fprintf(stderr, "type program did not specialize\n");
    return 1;
  }

  // -- 4. Same bytes either way (the contract the tests pin). --
  flick_buf BI, BS;
  flick_buf_init(&BI);
  flick_buf_init(&BS);
  flick_interp_encode(&BI, ListingTy, &L, Xdr);
  flick_spec_encode(&BS, P, &L);
  if (BI.len != BS.len || std::memcmp(BI.data, BS.data, BI.len) != 0) {
    std::fprintf(stderr, "wire mismatch between interp and specialized\n");
    return 1;
  }

  // -- 5. Decode through the specialized program, spot-check. --
  flick_arena Arena;
  Listing Out{};
  if (flick_spec_decode(&BS, P, &Out, &Arena) != FLICK_OK || Out.Len != N ||
      std::strcmp(Out.Val[7].Name, Entries[7].Name) != 0) {
    std::fprintf(stderr, "specialized decode failed\n");
    return 1;
  }

  // -- 6. The payoff. --
  double InterpSecs = secsPerCall([&] {
    flick_buf_reset(&BI);
    flick_interp_encode(&BI, ListingTy, &L, Xdr);
  });
  double SpecSecs = secsPerCall([&] {
    flick_buf_reset(&BS);
    flick_spec_encode(&BS, P, &L);
  });

  std::printf("dynamic IDL: %u dirents, %zu wire bytes, XDR\n", N, BI.len);
  std::printf("  specialize (once)  %8.1f us  (%zu enc ops, %llu steps "
              "fused)\n",
              CompileUs, P->Enc.size(),
              static_cast<unsigned long long>(P->StepsFused));
  std::printf("  interp encode      %8.1f us/call\n", InterpSecs * 1e6);
  std::printf("  specialized encode %8.1f us/call  (%.1fx, identical "
              "bytes)\n",
              SpecSecs * 1e6, InterpSecs / SpecSecs);
  double BreakEven = CompileUs / (InterpSecs * 1e6 - SpecSecs * 1e6);
  if (BreakEven > 0)
    std::printf("  break-even after   %8.1f calls\n", BreakEven);

  flick_arena_destroy(&Arena);
  flick_buf_destroy(&BI);
  flick_buf_destroy(&BS);
  return 0;
}
