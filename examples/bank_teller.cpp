//===- examples/bank_teller.cpp - exceptions, attributes, inheritance -----===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A richer CORBA service (idl/bank.idl over IIOP) showing the parts of
/// the presentation beyond plain calls: user exceptions travel through the
/// CORBA_Environment, attributes become _get_/_set_ accessor pairs, unions
/// carry an event log, and the derived Savings interface inherits every
/// Account operation.
///
//===----------------------------------------------------------------------===//

#include "ex_bank.h" // generated from idl/bank.idl
#include "runtime/transport/LocalLink.h"
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

//===----------------------------------------------------------------------===//
// Servant
//===----------------------------------------------------------------------===//

namespace {
int64_t TheBalance = 100;
std::string TheOwner = "ada";
std::vector<Event> TheLog;
} // namespace

int32_t Account__get_id_server(CORBA_Environment *) { return 7; }

char *Account__get_owner_server(CORBA_Environment *) {
  return strdup(TheOwner.c_str());
}

void Account__set_owner_server(const char *value, CORBA_Environment *) {
  TheOwner = value;
}

Money *Account_balance_server(CORBA_Environment *) {
  auto *M = static_cast<Money *>(malloc(sizeof(Money)));
  *M = Money{USD, TheBalance};
  return M;
}

void Account_deposit_server(const Money *m, CORBA_Environment *) {
  TheBalance += m->amount;
  Event E{};
  E._d = 1;
  E._u.deposit = *m;
  TheLog.push_back(E);
}

void Account_withdraw_server(const Money *m, CORBA_Environment *ev) {
  if (m->amount > TheBalance) {
    auto *Ex = static_cast<InsufficientFunds *>(
        malloc(sizeof(InsufficientFunds)));
    Ex->balance = Money{USD, TheBalance};
    Ex->requested = *m;
    ev->_major = CORBA_USER_EXCEPTION;
    ev->_exc_code = InsufficientFunds_CODE;
    ev->_exc_value = Ex;
    return;
  }
  TheBalance -= m->amount;
  Event E{};
  E._d = 2;
  E._u.withdrawal = *m;
  TheLog.push_back(E);
}

void Account_history_server(EventLog **log, CORBA_Environment *) {
  auto *L = static_cast<EventLog *>(malloc(sizeof(EventLog)));
  L->_maximum = L->_length = static_cast<uint32_t>(TheLog.size());
  L->_buffer =
      static_cast<Event *>(malloc(sizeof(Event) * (TheLog.size() + 1)));
  std::memcpy(L->_buffer, TheLog.data(), sizeof(Event) * TheLog.size());
  *log = L;
}

void Account_rename_server(char **name, CORBA_Environment *) {
  std::string Renamed = "acct-" + std::string(*name);
  *name = strdup(Renamed.c_str());
}

// The Savings dispatcher calls Savings-prefixed work functions; forward
// the inherited ones to the Account servant.
int32_t Savings__get_id_server(CORBA_Environment *E) {
  return Account__get_id_server(E);
}
char *Savings__get_owner_server(CORBA_Environment *E) {
  return Account__get_owner_server(E);
}
void Savings__set_owner_server(const char *v, CORBA_Environment *E) {
  Account__set_owner_server(v, E);
}
Money *Savings_balance_server(CORBA_Environment *E) {
  return Account_balance_server(E);
}
void Savings_deposit_server(const Money *m, CORBA_Environment *E) {
  Account_deposit_server(m, E);
}
void Savings_withdraw_server(const Money *m, CORBA_Environment *E) {
  Account_withdraw_server(m, E);
}
void Savings_history_server(EventLog **l, CORBA_Environment *E) {
  Account_history_server(l, E);
}
void Savings_rename_server(char **n, CORBA_Environment *E) {
  Account_rename_server(n, E);
}
static double TheRate = 0.031;
double Savings_rate_server(CORBA_Environment *) { return TheRate; }
void Savings_set_rate_server(double r, CORBA_Environment *) {
  TheRate = r;
}

//===----------------------------------------------------------------------===//
// Client
//===----------------------------------------------------------------------===//

int main() {
  flick::LocalLink Link;
  flick_server Server;
  flick_server_init(&Server, &Link.serverEnd(), Savings_dispatch);
  Link.setPump([&] { return flick_server_handle_one(&Server) == FLICK_OK; });
  flick_client Client;
  flick_client_init(&Client, &Link.clientEnd());
  flick_obj Ref{&Client};
  Savings Acct = &Ref;
  CORBA_Environment Ev;

  std::printf("teller connected to account #%d (owner %s)\n",
              Savings__get_id(Acct, &Ev), TheOwner.c_str());

  Money Pay{USD, 1250};
  Savings_deposit(Acct, &Pay, &Ev);
  Money *Bal = Savings_balance(Acct, &Ev);
  std::printf("after payday deposit: balance = %lld\n",
              static_cast<long long>(Bal->amount));
  free(Bal);

  // An overdraft: the servant raises InsufficientFunds, the stub fills
  // the environment, and the client inspects the typed exception value.
  Money TooMuch{USD, 99999};
  Savings_withdraw(Acct, &TooMuch, &Ev);
  if (Ev._major == CORBA_USER_EXCEPTION &&
      Ev._exc_code == InsufficientFunds_CODE) {
    auto *Ex = static_cast<InsufficientFunds *>(Ev._exc_value);
    std::printf("overdraft refused: wanted %lld, only %lld available\n",
                static_cast<long long>(Ex->requested.amount),
                static_cast<long long>(Ex->balance.amount));
    CORBA_exception_free(&Ev);
  }

  Money Rent{USD, 800};
  Savings_withdraw(Acct, &Rent, &Ev);

  // Attributes and the derived-interface operation.
  Savings__set_owner(Acct, "ada lovelace", &Ev);
  Savings_set_rate(Acct, 0.05, &Ev);
  char *Owner = Savings__get_owner(Acct, &Ev);
  std::printf("owner now %s, rate %.2f%%\n", Owner,
              Savings_rate(Acct, &Ev) * 100);
  free(Owner);

  // The union-bearing event log.
  EventLog *Log = nullptr;
  Savings_history(Acct, &Log, &Ev);
  std::printf("history (%u events):\n", Log->_length);
  for (uint32_t I = 0; I != Log->_length; ++I) {
    const Event &E = Log->_buffer[I];
    if (E._d == 1)
      std::printf("  deposit   %lld\n",
                  static_cast<long long>(E._u.deposit.amount));
    else if (E._d == 2)
      std::printf("  withdraw  %lld\n",
                  static_cast<long long>(E._u.withdrawal.amount));
  }
  free(Log->_buffer);
  free(Log);

  flick_client_destroy(&Client);
  flick_server_destroy(&Server);
  return 0;
}
