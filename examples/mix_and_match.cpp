//===- examples/mix_and_match.cpp - one IDL, three transports -------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's kit idea in one program: the SAME CORBA interface
/// (idl/mail.idl) compiled through three different back ends -- IIOP/CDR,
/// Mach 3 typed messages, and Fluke register IPC -- each running over a
/// matching simulated transport.  The client code is identical except for
/// the name prefix; only the messages differ, and the program prints each
/// wire format's first bytes to show it.
///
//===----------------------------------------------------------------------===//

#include "ex_mail_iiop.h"
#include "ex_mail_mach.h"
#include "ex_mail_fluke.h"
#include "runtime/transport/LocalLink.h"
#include <cstdio>

static const char *LastTransport = "?";
void IIOP_Mail_send_server(const char *msg, CORBA_Environment *) {
  std::printf("  [%s server] got \"%s\"\n", LastTransport, msg);
}
void MACH_Mail_send_server(const char *msg, CORBA_Environment *) {
  std::printf("  [%s server] got \"%s\"\n", LastTransport, msg);
}
void FLK_Mail_send_server(const char *msg, CORBA_Environment *) {
  std::printf("  [%s server] got \"%s\"\n", LastTransport, msg);
}

namespace {

template <typename SendFn>
void runOne(const char *Name, flick_dispatch_fn Dispatch,
            flick::NetworkModel Model, SendFn Send) {
  LastTransport = Name;
  flick::LocalLink Link;
  flick::SimClock Clock;
  Link.setModel(Model, &Clock);
  flick_server Srv;
  flick_server_init(&Srv, &Link.serverEnd(), Dispatch);
  Link.setPump([&] { return flick_server_handle_one(&Srv) == FLICK_OK; });
  flick_client Cli;
  flick_client_init(&Cli, &Link.clientEnd());

  std::printf("[%s over %s]\n", Name, Model.Name.c_str());
  Send(&Cli);
  // Show the wire format of the last request.
  std::printf("  request bytes:");
  for (size_t I = 0; I < 16 && I < Cli.req.len; ++I)
    std::printf(" %02x", Cli.req.data[I]);
  std::printf("  (%zu total, %.1f simulated us)\n\n", Cli.req.len,
              Clock.totalUs());
  flick_client_destroy(&Cli);
  flick_server_destroy(&Srv);
}

} // namespace

int main() {
  std::printf("one interface, three transports (paper Figure 1):\n\n");
  CORBA_Environment Ev;
  runOne("iiop", IIOP_Mail_dispatch, flick::NetworkModel::ethernet100(),
         [&](flick_client *C) {
           flick_obj O{C};
           IIOP_Mail_send(&O, "over TCP/IIOP", &Ev);
         });
  runOne("mach", MACH_Mail_dispatch, flick::NetworkModel::machIpc(),
         [&](flick_client *C) {
           flick_obj O{C};
           MACH_Mail_send(&O, "over Mach 3 messages", &Ev);
         });
  runOne("fluke", FLK_Mail_dispatch, flick::NetworkModel::flukeIpc(),
         [&](flick_client *C) {
           flick_obj O{C};
           FLK_Mail_send(&O, "over Fluke kernel IPC", &Ev);
         });
  return 0;
}
